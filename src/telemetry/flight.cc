#include "telemetry/flight.h"

#include <algorithm>

#include "support/stats.h"

namespace msv::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(ch >> 4) & 0xf];
          out += kHex[ch & 0xf];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string quoted(const std::string& s) { return "\"" + json_escape(s) + "\""; }

}  // namespace

const char* flight_event_kind_name(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kLifecycle:
      return "lifecycle";
    case FlightEventKind::kBridge:
      return "bridge";
    case FlightEventKind::kFault:
      return "fault";
    case FlightEventKind::kSched:
      return "sched";
    case FlightEventKind::kMetric:
      return "metric";
  }
  return "unknown";
}

void FlightRecorder::record(FlightEventKind kind, const std::string& name,
                            std::int64_t a, std::int64_t b) {
  ++recorded_;
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++evicted_;
  }
  FlightEvent ev;
  ev.at = clock_->now();
  ev.kind = kind;
  ev.name = name;
  ev.a = a;
  ev.b = b;
  events_.push_back(std::move(ev));
}

FlightBus::FlightBus(Telemetry& telemetry, std::size_t ring_capacity,
                     std::size_t span_tail)
    : telemetry_(&telemetry),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      span_tail_(span_tail) {}

FlightRecorder& FlightBus::recorder(const std::string& enclave) {
  auto it = recorders_.find(enclave);
  if (it == recorders_.end()) {
    it = recorders_
             .emplace(enclave,
                      FlightRecorder(telemetry_->clock(), ring_capacity_))
             .first;
  }
  return it->second;
}

const FlightRecorder* FlightBus::find(const std::string& enclave) const {
  const auto it = recorders_.find(enclave);
  return it == recorders_.end() ? nullptr : &it->second;
}

const PostMortem& FlightBus::snapshot(
    const std::string& enclave, const std::string& reason,
    std::vector<std::pair<std::string, std::string>> extra) {
  const FlightRecorder& rec = recorder(enclave);
  PostMortem pm;
  pm.seq = next_seq_++;
  pm.enclave = enclave;
  pm.reason = reason;
  pm.at = telemetry_->clock().now();
  pm.ring_recorded = rec.recorded();
  pm.ring_evicted = rec.evicted();
  pm.extra = std::move(extra);
  pm.events.assign(rec.events().begin(), rec.events().end());

  // Tracer tail: the most recent spans (stored order is allocation order,
  // so the back of the deque is the freshest history).
  const Tracer& tr = telemetry_->tracer();
  const auto& spans = tr.spans();
  const std::size_t n = std::min(span_tail_, spans.size());
  for (std::size_t i = spans.size() - n; i < spans.size(); ++i) {
    const SpanRecord& r = spans[i];
    PostMortem::SpanTail t;
    t.name = tr.name(r.name);
    t.category = category_name(r.category);
    t.tenant = r.tenant;
    t.tid = r.tid;
    t.start = r.start;
    t.end = r.end;
    t.open = r.open;
    pm.recent_spans.push_back(std::move(t));
  }

  // Registry snapshot: whatever is live mid-run (per-shard latency
  // histograms, resolved hot-path counters). Canonical-key order.
  for (const auto& [key, entry] : telemetry_->metrics().sorted_entries()) {
    std::string value;
    switch (entry->kind) {
      case MetricsRegistry::Kind::kCounter:
        value = std::to_string(entry->counter.value);
        break;
      case MetricsRegistry::Kind::kGauge:
        value = format_fixed(entry->gauge.value, 3);
        break;
      case MetricsRegistry::Kind::kHistogram:
        value = "count=" + std::to_string(entry->histogram.count()) +
                ",sum=" + std::to_string(entry->histogram.sum()) +
                ",p99=" + std::to_string(entry->histogram.quantile(0.99));
        break;
    }
    pm.metrics.emplace_back(key, std::move(value));
  }

  archive_.push_back(std::move(pm));
  return archive_.back();
}

std::string FlightBus::bundle_json(double hz) const {
  std::string out;
  out += "{\n";
  out += "  \"format\": \"msv-postmortem-v1\",\n";
  out += "  \"clock_hz\": " +
         std::to_string(static_cast<std::uint64_t>(hz)) + ",\n";
  out += "  \"ring_capacity\": " + std::to_string(ring_capacity_) + ",\n";
  out += "  \"postmortems\": [";
  for (std::size_t p = 0; p < archive_.size(); ++p) {
    const PostMortem& pm = archive_[p];
    out += p == 0 ? "\n" : ",\n";
    out += "    {\"seq\": " + std::to_string(pm.seq);
    out += ", \"enclave\": " + quoted(pm.enclave);
    out += ", \"reason\": " + quoted(pm.reason);
    out += ", \"at_cycles\": " + std::to_string(pm.at);
    out += ", \"ring_recorded\": " + std::to_string(pm.ring_recorded);
    out += ", \"ring_evicted\": " + std::to_string(pm.ring_evicted);
    out += ",\n     \"extra\": {";
    for (std::size_t i = 0; i < pm.extra.size(); ++i) {
      if (i > 0) out += ", ";
      out += quoted(pm.extra[i].first) + ": " + quoted(pm.extra[i].second);
    }
    out += "},\n     \"events\": [";
    for (std::size_t i = 0; i < pm.events.size(); ++i) {
      const FlightEvent& ev = pm.events[i];
      if (i > 0) out += ", ";
      out += "{\"at\": " + std::to_string(ev.at);
      out += ", \"kind\": " +
             quoted(flight_event_kind_name(ev.kind));
      out += ", \"name\": " + quoted(ev.name);
      out += ", \"a\": " + std::to_string(ev.a);
      out += ", \"b\": " + std::to_string(ev.b) + "}";
    }
    out += "],\n     \"recent_spans\": [";
    for (std::size_t i = 0; i < pm.recent_spans.size(); ++i) {
      const PostMortem::SpanTail& t = pm.recent_spans[i];
      if (i > 0) out += ", ";
      out += "{\"name\": " + quoted(t.name);
      out += ", \"category\": " + quoted(t.category);
      out += ", \"tenant\": " + std::to_string(t.tenant);
      out += ", \"tid\": " + std::to_string(t.tid);
      out += ", \"start\": " + std::to_string(t.start);
      out += ", \"end\": " + std::to_string(t.end);
      out += std::string(", \"open\": ") + (t.open ? "true" : "false") + "}";
    }
    out += "],\n     \"metrics\": {";
    for (std::size_t i = 0; i < pm.metrics.size(); ++i) {
      if (i > 0) out += ", ";
      out += quoted(pm.metrics[i].first) + ": " + quoted(pm.metrics[i].second);
    }
    out += "}}";
  }
  out += archive_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void FlightBus::publish(MetricsRegistry& m) const {
  for (const auto& [name, rec] : recorders_) {
    const LabelSet labels = {{"enclave", name}};
    m.counter("msv_flight_events_total", labels).value = rec.recorded();
    m.counter("msv_flight_evicted_total", labels).value = rec.evicted();
  }
  m.counter("msv_flight_postmortems").value = archive_.size();
}

}  // namespace msv::telemetry
