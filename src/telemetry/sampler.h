// Deterministic sampling profiler over the virtual clock (DESIGN.md §16).
//
// Full tracing records every span; on a long fleet run that ring wraps
// and the tail of history disappears (the flight recorder covers the
// forensics side). For *attribution* — "where did the simulated cycles
// go?" — a sampling profiler is the right tool: bounded memory, bounded
// output, and overhead independent of run length.
//
// A wall-clock profiler interrupts the process with a timer signal. This
// one exploits the simulation's structure instead: the scheduler already
// owns every point where simulated time is charged (task suspension
// points and the run loop's idle advance), so it *polls* the profiler
// there. The profiler divides the virtual timeline into fixed sample
// ticks (every `interval` cycles); each poll attributes all whole ticks
// since the previous poll to the sampled stack — the running task's name
// plus the tracer's current span path (span *stacks* survive record-ring
// wrap, so attribution keeps working after full tracing gives up).
// Output is the standard folded-stacks format
// (`task;span;span count`), ready for flamegraph.pl or tools/msvmon.
//
// Determinism: ticks are positions on the virtual timeline, polls happen
// at deterministic points, and folded() renders from a sorted map — two
// runs at a seed emit byte-identical profiles. A detached profiler is a
// single pointer test in the scheduler and never advances the clock.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/clock.h"
#include "telemetry/telemetry.h"

namespace msv::telemetry {

class SampleProfiler {
 public:
  SampleProfiler(const VirtualClock& clock, const Tracer& tracer,
                 Cycles interval_cycles)
      : clock_(&clock),
        tracer_(&tracer),
        interval_(interval_cycles == 0 ? 1 : interval_cycles),
        next_sample_(interval_) {}

  SampleProfiler(const SampleProfiler&) = delete;
  SampleProfiler& operator=(const SampleProfiler&) = delete;

  // True when at least one sample tick elapsed since the last poll —
  // the cheap pre-check hot paths use before building a stack string.
  bool due() const { return next_sample_ <= clock_->now(); }

  // Attributes every elapsed tick to a fixed label ("(idle)" for the run
  // loop's dead-time advance, "(main)" for main-context work).
  void poll_label(const char* label);

  // Attributes every elapsed tick to `task_name` + the tracer's open
  // span path for `tid` (folded with ';').
  void poll_task(std::uint64_t tid, const std::string& task_name);

  std::uint64_t samples() const { return samples_; }
  Cycles interval() const { return interval_; }

  // Folded-stacks text: one "stack count" line per distinct stack,
  // sorted lexicographically (deterministic).
  std::string folded() const;

  // Counters msv_profile_samples / msv_profile_stacks into `m`.
  void publish(MetricsRegistry& m) const;

 private:
  void take(const std::string& stack);

  const VirtualClock* clock_;
  const Tracer* tracer_;
  Cycles interval_;
  Cycles next_sample_;  // absolute deadline of the next tick
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t samples_ = 0;
};

}  // namespace msv::telemetry
