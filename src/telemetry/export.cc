#include "telemetry/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

namespace msv::telemetry {

namespace {

// Fixed-precision microseconds from integer cycles: same input, same
// bytes, on every run and platform.
std::string format_us(Cycles cycles, double hz) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(cycles) / hz * 1e6);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Prometheus exposition escaping for label values: backslash, double
// quote and newline (exposition-format spec §"Escaping").
std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// HELP text only escapes backslash and newline (no quote).
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Exposition-format rendering of name + labels. Unlike the registry's
// canonical render_metric_key (which is a *map key* and must stay
// byte-stable against old BENCH baselines), this escapes label values.
std::string exposition_key(const std::string& name, const LabelSet& labels) {
  if (labels.empty()) return name;
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    key += escape_label_value(sorted[i].second);
    key += '"';
  }
  key += '}';
  return key;
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer, double hz) {
  std::string out;
  out += "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"montsalvat-sim\"}}");
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
       "\"args\":{\"name\":\"main\"}}");
  for (const auto& [tid, name] : tracer.thread_names()) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }

  for (const SpanRecord& span : tracer.spans()) {
    if (span.open) continue;  // unbalanced at export time: skip
    std::string e = "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    e += std::to_string(span.tid);
    e += ",\"cat\":\"";
    e += category_name(span.category);
    e += "\",\"name\":\"";
    e += json_escape(tracer.name(span.name));
    e += "\",\"ts\":";
    e += format_us(span.start, hz);
    e += ",\"dur\":";
    e += format_us(span.end - span.start, hz);
    e += ",\"args\":{\"trace\":";
    e += std::to_string(span.trace_id);
    e += ",\"span\":";
    e += std::to_string(span.span_id);
    e += ",\"parent\":";
    e += std::to_string(span.parent_id);
    e += ",\"start_cycles\":";
    e += std::to_string(span.start);
    e += ",\"dur_cycles\":";
    e += std::to_string(span.end - span.start);
    if (span.tenant >= 0) {
      e += ",\"tenant\":";
      e += std::to_string(span.tenant);
    }
    e += "}}";
    emit(e);
  }

  out += "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  out += "\"clock_hz\":" + format_value(hz);
  out += ",\"span_count\":" + std::to_string(tracer.spans().size());
  out += ",\"dropped_spans\":" + std::to_string(tracer.dropped());
  out += ",\"dropped_by_category\":{";
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    if (c > 0) out += ',';
    out += '"';
    out += category_name(static_cast<Category>(c));
    out += "\":";
    out += std::to_string(tracer.dropped_in(static_cast<Category>(c)));
  }
  out += "}}}\n";
  return out;
}

std::string folded_stacks(const Tracer& tracer) {
  const std::deque<SpanRecord>& spans = tracer.spans();

  std::unordered_map<std::uint64_t, std::size_t> by_id;
  std::unordered_map<std::uint64_t, Cycles> child_cycles;
  by_id.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].open) continue;
    by_id.emplace(spans[i].span_id, i);
    child_cycles[spans[i].parent_id] += spans[i].end - spans[i].start;
  }

  std::map<std::string, std::uint64_t> folded;  // sorted output for free
  for (const SpanRecord& span : spans) {
    if (span.open) continue;
    const Cycles dur = span.end - span.start;
    const Cycles children = child_cycles.count(span.span_id)
                                ? child_cycles[span.span_id]
                                : 0;
    // Exclusive time; adopted children can outlive the parent, so clamp.
    const Cycles exclusive = dur > children ? dur - children : 0;

    std::vector<const std::string*> path;
    path.push_back(&tracer.name(span.name));
    std::uint64_t parent = span.parent_id;
    while (parent != 0) {
      const auto it = by_id.find(parent);
      if (it == by_id.end()) break;  // parent record dropped: partial path
      path.push_back(&tracer.name(spans[it->second].name));
      parent = spans[it->second].parent_id;
    }
    std::string key;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (!key.empty()) key += ';';
      key += **it;
    }
    folded[key] += exclusive;
  }

  std::string out;
  for (const auto& [path, cycles] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(cycles);
    out += '\n';
  }
  return out;
}

std::string metric_help(const std::string& name) {
  // Curated help for the families the repo exports; the fallback keeps
  // the exposition conformant (every family gets a # HELP line) and
  // deterministic for families added by tests or future subsystems.
  static const std::map<std::string, std::string> kHelp = {
      {"msv_bridge_calls", "Bridge transitions per registered call"},
      {"msv_bridge_cycles", "Simulated cycles spent in bridge transitions"},
      {"msv_fleet_request_latency_cycles",
       "Per-shard request latency (simulated cycles)"},
      {"msv_flight_events_total",
       "Flight-recorder events recorded per enclave ring"},
      {"msv_flight_evicted_total",
       "Flight-recorder events evicted by ring wrap"},
      {"msv_flight_postmortems", "Post-mortem snapshots taken this run"},
      {"msv_profile_samples", "Virtual-clock profiler samples taken"},
      {"msv_profile_stacks", "Distinct folded stacks seen by the profiler"},
      {"msv_slo_health",
       "SLO health state per key (0=healthy 1=degraded 2=critical)"},
      {"msv_slo_degraded_total", "Transitions into the degraded state"},
      {"msv_slo_critical_total", "Transitions into the critical state"},
      {"msv_telemetry_spans_recorded", "Spans stored in the trace ring"},
      {"msv_telemetry_spans_started", "Spans started (stored + dropped)"},
      {"msv_telemetry_spans_dropped", "Spans dropped by trace-ring wrap"},
      {"msv_trace_dropped",
       "Spans dropped by trace-ring wrap, by span category"},
  };
  const auto it = kHelp.find(name);
  if (it != kHelp.end()) return it->second;
  return "Simulated metric from the montsalvat telemetry registry";
}

std::string prometheus_text(const MetricsRegistry& metrics) {
  static const std::pair<const char*, double> kQuantiles[] = {
      {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}};

  std::string out;
  std::string last_name;
  for (const auto& [key, entry] : metrics.sorted_entries()) {
    if (entry->name != last_name) {
      last_name = entry->name;
      out += "# HELP ";
      out += entry->name;
      out += ' ';
      out += escape_help(metric_help(entry->name));
      out += '\n';
      out += "# TYPE ";
      out += entry->name;
      switch (entry->kind) {
        case MetricsRegistry::Kind::kCounter:
          out += " counter\n";
          break;
        case MetricsRegistry::Kind::kGauge:
          out += " gauge\n";
          break;
        case MetricsRegistry::Kind::kHistogram:
          out += " summary\n";
          break;
      }
    }
    switch (entry->kind) {
      case MetricsRegistry::Kind::kCounter:
        out += exposition_key(entry->name, entry->labels);
        out += ' ';
        out += std::to_string(entry->counter.value);
        out += '\n';
        break;
      case MetricsRegistry::Kind::kGauge:
        out += exposition_key(entry->name, entry->labels);
        out += ' ';
        out += format_value(entry->gauge.value);
        out += '\n';
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram& h = entry->histogram;
        for (const auto& [label, q] : kQuantiles) {
          LabelSet labels = entry->labels;
          labels.emplace_back("quantile", label);
          out += exposition_key(entry->name, labels);
          out += ' ';
          out += std::to_string(h.quantile(q));
          out += '\n';
        }
        out += exposition_key(entry->name + "_count", entry->labels);
        out += ' ';
        out += std::to_string(h.count());
        out += '\n';
        out += exposition_key(entry->name + "_sum", entry->labels);
        out += ' ';
        out += std::to_string(h.sum());
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string ascii_trace(const Tracer& tracer, double hz,
                        std::uint64_t trace_id, std::size_t max_lines) {
  constexpr std::size_t kBarWidth = 32;
  const std::deque<SpanRecord>& spans = tracer.spans();

  // Selected spans, in record (begin) order, with child lists.
  std::vector<std::size_t> selected;
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  Cycles lo = ~0ull, hi = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (s.open) continue;
    if (trace_id != 0 && s.trace_id != trace_id) continue;
    selected.push_back(i);
    by_id.emplace(s.span_id, i);
    lo = std::min(lo, s.start);
    hi = std::max(hi, s.end);
  }
  if (selected.empty()) return "(no spans)\n";
  const Cycles window = hi > lo ? hi - lo : 1;

  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children;
  std::vector<std::size_t> roots;
  for (const std::size_t i : selected) {
    const SpanRecord& s = spans[i];
    if (s.parent_id != 0 && by_id.count(s.parent_id)) {
      children[s.parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }

  std::string out;
  std::size_t lines = 0;
  std::size_t omitted = 0;
  const std::function<void(std::size_t, std::size_t)> render =
      [&](std::size_t index, std::size_t depth) {
        const SpanRecord& s = spans[index];
        if (lines >= max_lines) {
          ++omitted;
        } else {
          ++lines;
          const auto left = static_cast<std::size_t>(
              static_cast<double>(s.start - lo) / window * kBarWidth);
          auto right = static_cast<std::size_t>(
              static_cast<double>(s.end - lo) / window * kBarWidth);
          if (right <= left) right = left + 1;
          std::string bar(kBarWidth, ' ');
          for (std::size_t b = left; b < right && b < kBarWidth; ++b) {
            bar[b] = '#';
          }
          out += '[';
          out += bar;
          out += "] ";
          char head[64];
          std::snprintf(head, sizeof(head), "%10s +%-9s ",
                        format_us(s.start - lo, hz).c_str(),
                        format_us(s.end - s.start, hz).c_str());
          out += head;
          out.append(depth * 2, ' ');
          out += tracer.name(s.name);
          out += " (";
          out += category_name(s.category);
          if (s.tenant >= 0) {
            out += ", tenant ";
            out += std::to_string(s.tenant);
          }
          out += ")\n";
        }
        const auto it = children.find(s.span_id);
        if (it != children.end()) {
          for (const std::size_t child : it->second) render(child, depth + 1);
        }
      };
  for (const std::size_t root : roots) render(root, 0);
  if (omitted > 0) {
    out += "... (" + std::to_string(omitted) + " more spans)\n";
  }
  return out;
}

}  // namespace msv::telemetry
