#include "telemetry/adapters.h"

#include "fleet/router.h"
#include "rmi/proxy_runtime.h"
#include "runtime/heap.h"
#include "sched/scheduler.h"
#include "server/server.h"
#include "sgx/bridge.h"
#include "sgx/epc.h"
#include "sgx/tcs.h"

namespace msv::telemetry {

namespace {

void set(MetricsRegistry& m, const std::string& name, std::uint64_t value,
         const LabelSet& labels = {}) {
  m.counter(name, labels).value = value;
}

}  // namespace

void publish_bridge(MetricsRegistry& m, const sgx::BridgeStats& s) {
  set(m, "msv_bridge_ecalls", s.ecalls);
  set(m, "msv_bridge_ocalls", s.ocalls);
  set(m, "msv_bridge_switchless_calls", s.switchless_calls);
  set(m, "msv_bridge_bytes_in", s.bytes_in);
  set(m, "msv_bridge_bytes_out", s.bytes_out);
  set(m, "msv_bridge_tcs_waits", s.tcs_waits);
  set(m, "msv_bridge_tcs_wait_cycles", s.tcs_wait_cycles);
  set(m, "msv_bridge_out_of_tcs_errors", s.out_of_tcs_errors);
  set(m, "msv_bridge_switchless_enqueued", s.switchless_enqueued);
  set(m, "msv_bridge_switchless_queue_wait_cycles",
      s.switchless_queue_wait_cycles);
  set(m, "msv_bridge_switchless_worker_wakeups", s.switchless_worker_wakeups);
  set(m, "msv_bridge_switchless_idle_spin_cycles",
      s.switchless_idle_spin_cycles);
  set(m, "msv_bridge_switchless_wake_charge_cycles",
      s.switchless_wake_charge_cycles);
  for (const auto& [name, call] : s.per_call) {
    const LabelSet labels = {{"call", name}};
    set(m, "msv_bridge_call_count", call.calls, labels);
    set(m, "msv_bridge_call_bytes_in", call.bytes_in, labels);
    set(m, "msv_bridge_call_bytes_out", call.bytes_out, labels);
    set(m, "msv_bridge_call_transition_cycles", call.transition_cycles,
        labels);
  }
}

void publish_epc(MetricsRegistry& m, const sgx::EpcStats& s) {
  set(m, "msv_epc_accesses", s.accesses);
  set(m, "msv_epc_faults", s.faults);
  set(m, "msv_epc_evictions", s.evictions);
}

void publish_tcs(MetricsRegistry& m, const sgx::TcsStats& s) {
  set(m, "msv_tcs_acquisitions", s.acquisitions);
  set(m, "msv_tcs_waits", s.waits);
  set(m, "msv_tcs_wait_cycles", s.wait_cycles);
  set(m, "msv_tcs_out_of_tcs_failures", s.out_of_tcs_failures);
  set(m, "msv_tcs_max_in_use", s.max_in_use);
  set(m, "msv_tcs_max_waiters", s.max_waiters);
}

void publish_scheduler(MetricsRegistry& m, const sched::SchedulerStats& s) {
  set(m, "msv_sched_spawned", s.spawned);
  set(m, "msv_sched_completed", s.completed);
  set(m, "msv_sched_context_switches", s.context_switches);
  set(m, "msv_sched_sleeps", s.sleeps);
  set(m, "msv_sched_wakes", s.wakes);
  set(m, "msv_sched_idle_advanced_cycles", s.idle_advanced_cycles);
}

void publish_heap(MetricsRegistry& m, const rt::HeapStats& s,
                  const std::string& heap_label) {
  const LabelSet labels = {{"heap", heap_label}};
  set(m, "msv_heap_allocations", s.allocations, labels);
  set(m, "msv_heap_allocated_bytes", s.allocated_bytes, labels);
  set(m, "msv_heap_gc_count", s.gc_count, labels);
  set(m, "msv_heap_copied_bytes_total", s.copied_bytes_total, labels);
  set(m, "msv_heap_gc_cycles_total", s.gc_cycles_total, labels);
  set(m, "msv_heap_last_live_bytes", s.last_live_bytes, labels);
}

void publish_rmi(MetricsRegistry& m, const rmi::RmiStats& s) {
  set(m, "msv_rmi_proxies_created", s.proxies_created);
  set(m, "msv_rmi_proxies_materialized", s.proxies_materialized);
  set(m, "msv_rmi_mirrors_registered", s.mirrors_registered);
  set(m, "msv_rmi_remote_invocations", s.remote_invocations);
  set(m, "msv_rmi_fast_path_calls", s.fast_path_calls);
  // Batching (DESIGN.md §13): remote_invocations counts logical calls;
  // transitions counts bridge round trips. Their ratio is the realized
  // amortization.
  set(m, "msv_rmi_transitions", s.transitions);
  set(m, "msv_rmi_batched_calls", s.batched_calls);
  set(m, "msv_rmi_batch_flushes", s.batch_flushes);
}

void publish_gc_helper(MetricsRegistry& m, const rmi::GcHelperStats& s,
                       const std::string& side) {
  const LabelSet labels = {{"side", side}};
  set(m, "msv_gc_helper_scans", s.scans, labels);
  set(m, "msv_gc_helper_proxies_collected", s.proxies_collected, labels);
  set(m, "msv_gc_helper_eviction_calls", s.eviction_calls, labels);
}

void publish_server(MetricsRegistry& m, const server::ServerStats& s) {
  set(m, "msv_server_accepted", s.accepted);
  set(m, "msv_server_shed", s.shed);
  set(m, "msv_server_completed", s.completed);
}

void publish_tenant(MetricsRegistry& m, const server::TenantStats& s,
                    std::uint32_t tenant) {
  const LabelSet labels = {{"tenant", std::to_string(tenant)}};
  set(m, "msv_server_tenant_accepted", s.accepted, labels);
  set(m, "msv_server_tenant_shed", s.shed, labels);
  set(m, "msv_server_tenant_completed", s.completed, labels);
  set(m, "msv_server_tenant_gc_runs", s.gc_runs, labels);
  set(m, "msv_server_tenant_gc_pause_cycles", s.gc_pause_cycles, labels);
  set(m, "msv_server_tenant_gc_gate_wait_cycles", s.gc_gate_wait_cycles,
      labels);
  set(m, "msv_server_tenant_max_queue_depth", s.max_queue_depth, labels);
}

void publish_fleet(MetricsRegistry& m, const fleet::FleetStats& s) {
  set(m, "msv_fleet_accepted", s.accepted);
  set(m, "msv_fleet_shed", s.shed);
  set(m, "msv_fleet_shed_admission", s.shed_admission);
  set(m, "msv_fleet_shed_slo", s.shed_slo);
  set(m, "msv_fleet_shed_recovery", s.shed_recovery);
  set(m, "msv_fleet_shed_migrating", s.shed_migrating);
  set(m, "msv_fleet_completed", s.completed);
  set(m, "msv_fleet_failed", s.failed);
  set(m, "msv_fleet_retries", s.retries);
  set(m, "msv_fleet_checkpoints", s.checkpoints);
  set(m, "msv_fleet_replicated_blobs", s.replicated_blobs);
  set(m, "msv_fleet_replicated_bytes", s.replicated_bytes);
  set(m, "msv_fleet_restored", s.restored);
  set(m, "msv_fleet_promotions", s.promotions);
  set(m, "msv_fleet_restarts", s.restarts);
  set(m, "msv_fleet_standby_rebuilds", s.standby_rebuilds);
  set(m, "msv_fleet_migrations", s.migrations);
  set(m, "msv_fleet_recovery_cycles", s.recovery_cycles);
}

void publish_fleet_shard(MetricsRegistry& m, const fleet::ShardStats& s,
                         std::uint32_t shard) {
  const LabelSet labels = {{"shard", std::to_string(shard)}};
  set(m, "msv_fleet_shard_accepted", s.accepted, labels);
  set(m, "msv_fleet_shard_shed", s.shed, labels);
  set(m, "msv_fleet_shard_completed", s.completed, labels);
  set(m, "msv_fleet_shard_failed", s.failed, labels);
  set(m, "msv_fleet_shard_retries", s.retries, labels);
  set(m, "msv_fleet_shard_checkpoints", s.checkpoints, labels);
  set(m, "msv_fleet_shard_replicated_bytes", s.replicated_bytes, labels);
  set(m, "msv_fleet_shard_restored", s.restored, labels);
  set(m, "msv_fleet_shard_promotions", s.promotions, labels);
  set(m, "msv_fleet_shard_restarts", s.restarts, labels);
  set(m, "msv_fleet_shard_recovery_cycles", s.recovery_cycles, labels);
  set(m, "msv_fleet_shard_max_queue_depth", s.max_queue_depth, labels);
}

void publish_tracer_self(MetricsRegistry& m, const Tracer& tracer) {
  set(m, "msv_telemetry_spans_recorded", tracer.spans().size());
  set(m, "msv_telemetry_spans_started", tracer.started());
  set(m, "msv_telemetry_spans_dropped", tracer.dropped());
  // Ring-wrap accounting per subsystem: every category is exported (zeros
  // included) so a scrape can always tell "nothing dropped" from "metric
  // missing", and check_trace.py can assert the sum matches.
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    const auto cat = static_cast<Category>(c);
    set(m, "msv_trace_dropped", tracer.dropped_in(cat),
        {{"category", category_name(cat)}});
  }
}

}  // namespace msv::telemetry
