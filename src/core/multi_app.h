// Multi-isolate partitioned application (future work §7, second item).
//
// Like PartitionedApp, but the enclave hosts N trusted isolates — separate
// heaps running the same trusted image, independently garbage collected
// (§2.2) — behind one measured enclave and one bridge. The untrusted
// runtime addresses a specific isolate when creating proxies
// (construct_in), and each proxy stays bound to the isolate that owns its
// mirror. Typical use: one isolate per tenant of an enclave service.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/app.h"
#include "rmi/multi_isolate.h"

namespace msv::core {

class MultiIsolateApp {
 public:
  MultiIsolateApp(const model::AppModel& app, std::uint32_t trusted_isolates,
                  AppConfig config = {},
                  interp::IntrinsicTable intrinsics =
                      interp::IntrinsicTable::defaults());

  // Shared-environment variant for multi-enclave topologies (the fleet,
  // DESIGN.md §14): every enclave of the fleet lives on ONE machine — one
  // virtual clock, one cost model, one telemetry spine — so `env` is
  // borrowed, not owned. config.cost / config.fs / config.trace are
  // ignored; the caller configured the shared Env once. `name_suffix`
  // disambiguates the enclaves ("shard0-a", ...) in traces and errors.
  MultiIsolateApp(Env& env, const model::AppModel& app,
                  std::uint32_t trusted_isolates, AppConfig config = {},
                  const std::string& name_suffix = "",
                  interp::IntrinsicTable intrinsics =
                      interp::IntrinsicTable::defaults());
  ~MultiIsolateApp();

  MultiIsolateApp(const MultiIsolateApp&) = delete;
  MultiIsolateApp& operator=(const MultiIsolateApp&) = delete;

  Env& env() { return env_; }
  double now_seconds() const { return env_.clock.seconds(); }
  std::uint32_t isolate_count() const { return rmi_->isolate_count(); }

  interp::ExecContext& untrusted_context() { return *untrusted_ctx_; }
  interp::ExecContext& trusted_context(std::uint32_t index);
  rmi::MultiIsolateRuntime& rmi() { return *rmi_; }
  sgx::TransitionBridge& bridge() { return *bridge_; }
  sgx::Enclave& enclave() { return *enclave_; }

  // Creates a proxy whose mirror lives in trusted isolate `index`.
  rt::Value construct_in(std::uint32_t index, const std::string& cls,
                         std::vector<rt::Value> args);

  // Collects one trusted isolate's heap — the others keep running
  // untouched (the GraalVM isolate property the design builds on, §2.2).
  void collect_isolate(std::uint32_t index);

  // Recovery path for a lost enclave (DESIGN.md §12): re-create and
  // re-measure against the trusted image (charging the full build cost),
  // then fence the RMI layer so stale proxies fault instead of routing to
  // dead mirrors. Callers rebuild session state afterwards — typically by
  // unsealing a checkpoint (server/server.h). Throws unless the enclave is
  // currently lost.
  void restart_enclave();

 private:
  // Common tail of both constructors: everything after the Env exists.
  void build(const model::AppModel& app, std::uint32_t trusted_isolates,
             const std::string& name_suffix,
             interp::IntrinsicTable intrinsics);

  std::unique_ptr<Env> owned_env_;  // null in the shared-Env variant
  Env& env_;
  AppConfig config_;
  xform::NativeImage trusted_image_;
  xform::NativeImage untrusted_image_;
  std::unique_ptr<sgx::Enclave> enclave_;
  std::unique_ptr<UntrustedDomain> untrusted_domain_;
  std::unique_ptr<sgx::EnclaveDomain> trusted_domain_;
  std::vector<std::unique_ptr<rt::Isolate>> trusted_isos_;
  std::unique_ptr<rt::Isolate> untrusted_iso_;
  std::unique_ptr<sgx::TransitionBridge> bridge_;
  std::unique_ptr<shim::HostIo> host_io_;
  std::unique_ptr<shim::EnclaveShim> enclave_shim_;
  std::vector<std::unique_ptr<interp::ExecContext>> trusted_ctxs_;
  std::unique_ptr<interp::ExecContext> untrusted_ctx_;
  std::unique_ptr<rmi::MultiIsolateRuntime> rmi_;
};

}  // namespace msv::core
