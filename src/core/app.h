// Montsalvat's application runners — the end of the workflow in Fig. 1.
//
// Three deployment modes cover every configuration the evaluation uses:
//
//   * PartitionedApp    — the full Montsalvat pipeline: annotate ->
//     bytecode transformation -> two native images -> EDL + Edger8r ->
//     measured enclave; trusted classes execute inside, untrusted outside,
//     proxies and the GC helpers in between. (Part / RTWU / RUWT series.)
//   * UnpartitionedApp  — §5.6: the whole application built into a single
//     native image linked into the enclave; main enters via one ecall and
//     all I/O relays through the shim. (NoPart-NI series.)
//   * NativeApp         — the same native image run without SGX.
//     (NoSGX-NI series.)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/optimize.h"
#include "interp/exec_context.h"
#include "model/app_model.h"
#include "rmi/proxy_runtime.h"
#include "sgx/bridge.h"
#include "sgx/edl.h"
#include "sgx/enclave.h"
#include "shim/enclave_shim.h"
#include "shim/host_io.h"
#include "sim/domain.h"
#include "sim/env.h"
#include "transform/image_builder.h"
#include "transform/transformer.h"

namespace msv::core {

struct AppConfig {
  CostModel cost = CostModel::paper();
  std::shared_ptr<vfs::FileSystem> fs;  // defaults to a fresh MemFs
  std::uint64_t trusted_heap_bytes = 512ull << 20;
  std::uint64_t untrusted_heap_bytes = 512ull << 20;
  std::uint64_t enclave_heap_max_bytes = 4ull << 30;  // §6.1
  std::uint64_t enclave_stack_bytes = 8ull << 20;     // §6.1
  rmi::HashScheme hash_scheme = rmi::HashScheme::kMd5;
  double gc_scan_period_seconds = 1.0;
  // TCS pool of the enclave (TCSNum + exhaustion policy; DESIGN.md §8).
  sgx::TcsConfig tcs;
  // Future work (§7): serve relay transitions switchlessly.
  bool switchless_relays = false;
  // RMI hot path (interned-ID dispatch, buffer arena, primitive encoder).
  // Simulated results are identical either way; false selects the legacy
  // string-dispatch path for before/after benchmarking.
  bool fast_rmi = true;
  xform::ImageBuildConfig image;
  // Additional reachability roots, the analog of GraalVM's reflection
  // configuration (§2.2): methods the host process may invoke directly
  // even though no bytecode path reaches them. Each entry is applied to
  // every image that contains the class.
  std::vector<xform::MethodRef> extra_entry_points;
  // Agent mode: root every public method, disabling pruning — the open
  // world a JVM-based dry run would see. Use with ExecContext tracing to
  // generate the reflection configuration for the real (closed-world)
  // build.
  bool root_everything = false;
  // Static-analysis gates (DESIGN.md §9). verify_bytecode arms the
  // analysis::verify gate on every execution context: a kIr body that
  // fails verification raises TrapError at first dispatch instead of
  // executing. lint_partition runs the msvlint rule suite over the
  // annotated input model before any transformation and throws
  // ConfigError when a rule reports an error-severity finding.
  bool verify_bytecode = false;
  bool lint_partition = false;
  // Partition-optimizer plumbing (DESIGN.md §15): when set, the plan is
  // applied to the annotated input model (xform::apply_partition_plan)
  // before lint and transformation, so the partitioned build weaves the
  // re-partitioned images. Produced by `msvlint --propose-partition` /
  // analysis::optimize_partition.
  std::shared_ptr<const analysis::PartitionPlan> partition_plan;
  // Telemetry (DESIGN.md §10): off by default — the zero-overhead-when-off
  // contract means simulated cycle totals are identical either way.
  telemetry::TraceConfig trace;
};

// TCB accounting backing the paper's small-TCB argument (§1, §5.4).
struct TcbReport {
  std::uint64_t app_code_bytes = 0;      // compiled trusted application code
  std::uint64_t runtime_code_bytes = 0;  // embedded GC/thread/runtime
  std::uint64_t shim_bytes = 0;          // Montsalvat's libc shim
  std::uint64_t image_heap_bytes = 0;
  std::size_t trusted_classes = 0;
  std::size_t trusted_methods = 0;
  std::size_t edl_functions = 0;

  std::uint64_t total_bytes() const {
    return app_code_bytes + runtime_code_bytes + shim_bytes + image_heap_bytes;
  }
};

class PartitionedApp {
 public:
  // Runs the whole build pipeline (transform, analyze, build images,
  // generate EDL/bridges, measure + initialize the enclave, wire the RMI
  // layer). Build-time work is not charged to the virtual clock — it
  // happens offline in the trusted build environment (§4); only enclave
  // creation/measurement at load time is charged.
  PartitionedApp(const model::AppModel& app, AppConfig config = {},
                 interp::IntrinsicTable intrinsics =
                     interp::IntrinsicTable::defaults());
  ~PartitionedApp();

  PartitionedApp(const PartitionedApp&) = delete;
  PartitionedApp& operator=(const PartitionedApp&) = delete;

  rt::Value run_main(std::vector<rt::Value> args = {});

  Env& env() { return *env_; }
  double now_seconds() const { return env_->clock.seconds(); }

  interp::ExecContext& trusted_context() { return *trusted_ctx_; }
  interp::ExecContext& untrusted_context() { return *untrusted_ctx_; }
  sgx::TransitionBridge& bridge() { return *bridge_; }
  sgx::Enclave& enclave() { return *enclave_; }
  rmi::ProxyRuntime& rmi() { return *rmi_; }
  shim::HostIo& host_io() { return *host_io_; }
  shim::EnclaveShim& enclave_shim() { return *enclave_shim_; }

  const xform::NativeImage& trusted_image() const { return trusted_image_; }
  const xform::NativeImage& untrusted_image() const { return untrusted_image_; }
  const sgx::EdlSpec& edl() const { return edl_; }
  const sgx::EdgeRoutines& edge_routines() const { return edge_; }

  TcbReport tcb_report() const;

 private:
  std::unique_ptr<Env> env_;
  AppConfig config_;
  xform::NativeImage trusted_image_;
  xform::NativeImage untrusted_image_;
  sgx::EdlSpec edl_;
  sgx::EdgeRoutines edge_;
  std::unique_ptr<sgx::Enclave> enclave_;
  std::unique_ptr<UntrustedDomain> untrusted_domain_;
  std::unique_ptr<sgx::EnclaveDomain> trusted_domain_;
  std::unique_ptr<rt::Isolate> trusted_iso_;
  std::unique_ptr<rt::Isolate> untrusted_iso_;
  std::unique_ptr<sgx::TransitionBridge> bridge_;
  std::unique_ptr<shim::HostIo> host_io_;
  std::unique_ptr<shim::EnclaveShim> enclave_shim_;
  std::unique_ptr<interp::ExecContext> trusted_ctx_;
  std::unique_ptr<interp::ExecContext> untrusted_ctx_;
  std::unique_ptr<rmi::ProxyRuntime> rmi_;
};

class UnpartitionedApp {
 public:
  UnpartitionedApp(const model::AppModel& app, AppConfig config = {},
                   interp::IntrinsicTable intrinsics =
                       interp::IntrinsicTable::defaults());
  ~UnpartitionedApp();

  UnpartitionedApp(const UnpartitionedApp&) = delete;
  UnpartitionedApp& operator=(const UnpartitionedApp&) = delete;

  // Enters the enclave through the single ecall_main entry point.
  rt::Value run_main(std::vector<rt::Value> args = {});

  // Runs `fn` inside the enclave through a generic ecall (the way a host
  // process drives exported enclave entry points). Used by tests and
  // benchmark harnesses that exercise more than main.
  rt::Value run_in_enclave(
      const std::function<rt::Value(interp::ExecContext&)>& fn);

  Env& env() { return *env_; }
  double now_seconds() const { return env_->clock.seconds(); }
  interp::ExecContext& context() { return *ctx_; }
  sgx::TransitionBridge& bridge() { return *bridge_; }
  sgx::Enclave& enclave() { return *enclave_; }
  shim::EnclaveShim& enclave_shim() { return *enclave_shim_; }
  const xform::NativeImage& image() const { return image_; }

 private:
  std::unique_ptr<Env> env_;
  AppConfig config_;
  xform::NativeImage image_;
  sgx::EdlSpec edl_;
  std::unique_ptr<sgx::Enclave> enclave_;
  std::unique_ptr<UntrustedDomain> untrusted_domain_;
  std::unique_ptr<sgx::EnclaveDomain> trusted_domain_;
  std::unique_ptr<rt::Isolate> iso_;
  std::unique_ptr<sgx::TransitionBridge> bridge_;
  std::unique_ptr<shim::HostIo> host_io_;
  std::unique_ptr<shim::EnclaveShim> enclave_shim_;
  std::unique_ptr<interp::ExecContext> ctx_;
  sgx::CallId ecall_main_id_ = sgx::kNoCallId;
  sgx::CallId ecall_invoke_id_ = sgx::kNoCallId;
  const std::function<rt::Value(interp::ExecContext&)>* pending_invoke_ =
      nullptr;
  rt::Value pending_result_;
};

class NativeApp {
 public:
  NativeApp(const model::AppModel& app, AppConfig config = {},
            interp::IntrinsicTable intrinsics =
                interp::IntrinsicTable::defaults());
  ~NativeApp();

  NativeApp(const NativeApp&) = delete;
  NativeApp& operator=(const NativeApp&) = delete;

  rt::Value run_main(std::vector<rt::Value> args = {});

  Env& env() { return *env_; }
  double now_seconds() const { return env_->clock.seconds(); }
  interp::ExecContext& context() { return *ctx_; }
  shim::HostIo& host_io() { return *host_io_; }
  const xform::NativeImage& image() const { return image_; }

 private:
  std::unique_ptr<Env> env_;
  AppConfig config_;
  xform::NativeImage image_;
  std::unique_ptr<UntrustedDomain> domain_;
  std::unique_ptr<rt::Isolate> iso_;
  std::unique_ptr<shim::HostIo> host_io_;
  std::unique_ptr<interp::ExecContext> ctx_;
};

}  // namespace msv::core
