#include "core/app.h"

#include "analysis/lint.h"
#include "support/error.h"

namespace msv::core {

namespace {

Env* make_env(AppConfig& config) {
  Env* env = new Env(config.cost, config.fs);
  env->telemetry.configure(config.trace);
  return env;
}

// AppConfig::lint_partition: run the msvlint rule suite over the annotated
// input model (pre-weave — the rules reason about the annotations, not the
// woven proxies) and refuse to build on error-severity findings.
void lint_or_throw(const model::AppModel& app) {
  const analysis::Report report = analysis::lint(app);
  if (report.errors() > 0) {
    throw ConfigError("partition lint failed (" +
                      std::to_string(report.errors()) + " error(s)):\n" +
                      report.to_text());
  }
}

void add_gc_edl_entries(sgx::EdlSpec& edl) {
  sgx::EdlFunction evict_in;
  evict_in.name = "ecall_gc_evict_mirrors";
  evict_in.params = {{"const int64_t*", "hashes", sgx::EdlDirection::kIn, "n"},
                     {"size_t", "n", sgx::EdlDirection::kIn, ""}};
  edl.add_ecall(std::move(evict_in));

  sgx::EdlFunction scan;
  scan.name = "ecall_gc_scan_trusted";
  edl.add_ecall(std::move(scan));

  sgx::EdlFunction evict_out;
  evict_out.name = "ocall_gc_evict_mirrors";
  evict_out.params = {{"const int64_t*", "hashes", sgx::EdlDirection::kIn, "n"},
                      {"size_t", "n", sgx::EdlDirection::kIn, ""}};
  edl.add_ocall(std::move(evict_out));
}

// The final SGX-module link (§5.4): the enclave blob is the trusted image
// plus the shim plus the generated trusted bridge routines; its SHA-256 is
// MRENCLAVE.
Sha256::Digest measure_enclave_blob(const xform::NativeImage& trusted,
                                    const sgx::EdgeRoutines& edge) {
  Sha256 h;
  const ByteBuffer image_bytes = trusted.serialize();
  h.update(image_bytes.data(), image_bytes.size());
  h.update("montsalvat-shim-v1");
  h.update(edge.trusted_source);
  return h.finish();
}

// Agent mode: every public method of every class is a root.
std::vector<xform::MethodRef> all_public_methods(const model::AppModel& set) {
  std::vector<xform::MethodRef> eps;
  for (const auto& cls : set.classes()) {
    for (const auto& m : cls.methods()) {
      if (m.is_public()) eps.push_back({cls.name(), m.name()});
    }
  }
  return eps;
}

// Entry points for one image: the §5.3 rule plus any configured extra
// roots whose class/method exist in this image's input set.
std::vector<xform::MethodRef> image_entry_points(
    const model::AppModel& set, bool is_trusted,
    const std::vector<xform::MethodRef>& extras) {
  std::vector<xform::MethodRef> eps =
      is_trusted ? xform::trusted_image_entry_points(set)
                 : xform::untrusted_image_entry_points(set);
  for (const auto& [cls, method] : extras) {
    // Proxies qualify too: rooting a proxy keeps the remote class callable
    // from host-driven code even when no bytecode path reaches it.
    const model::ClassDecl* c = set.find_class(cls);
    if (c != nullptr && c->find_method(method) != nullptr) {
      eps.push_back({cls, method});
    }
  }
  return eps;
}

}  // namespace

PartitionedApp::PartitionedApp(const model::AppModel& app, AppConfig config,
                               interp::IntrinsicTable intrinsics)
    : env_(make_env(config)), config_(std::move(config)) {
  // 0. Optional re-partitioning (DESIGN.md §15): apply the optimizer's
  // plan before anything looks at the annotations, so lint, transform and
  // image generation all see the re-partitioned model.
  model::AppModel replanned;
  const model::AppModel* input = &app;
  if (config_.partition_plan != nullptr) {
    replanned = xform::apply_partition_plan(app, *config_.partition_plan);
    input = &replanned;
  }

  // 0b. Optional partition lint over the annotated input (DESIGN.md §9).
  if (config_.lint_partition) lint_or_throw(*input);

  // 1. Bytecode transformation (§5.2).
  xform::BytecodeTransformer transformer;
  xform::TransformResult transformed = transformer.transform(*input);

  // 2. Native image generation with reachability pruning (§5.3).
  xform::ImageBuilder builder(config_.image);
  trusted_image_ = builder.build(
      transformed.trusted, /*is_trusted=*/true,
      image_entry_points(transformed.trusted, true,
                         config_.extra_entry_points));
  untrusted_image_ = builder.build(
      transformed.untrusted, /*is_trusted=*/false,
      image_entry_points(transformed.untrusted, false,
                         config_.extra_entry_points));

  // 3. EDL + Edger8r bridge generation (§5.3, §5.4): the relay
  // transitions, the shim's libc relays and the GC-helper calls.
  edl_ = std::move(transformed.edl);
  shim::EnclaveShim::add_edl_entries(edl_);
  add_gc_edl_entries(edl_);
  if (config_.switchless_relays) {
    for (auto& fn : edl_.trusted) fn.switchless = true;
    for (auto& fn : edl_.untrusted) fn.switchless = true;
  }
  edge_ = sgx::edger8r_generate(edl_);

  // 4. SGX application creation (§5.4): measured load + EINIT.
  const Sha256::Digest measurement =
      measure_enclave_blob(trusted_image_, edge_);
  enclave_ = std::make_unique<sgx::Enclave>(
      *env_, "montsalvat_enclave", measurement,
      trusted_image_.total_bytes() + shim::EnclaveShim::shim_code_bytes(),
      config_.enclave_heap_max_bytes, config_.enclave_stack_bytes,
      config_.tcs);
  enclave_->init(measurement);

  // 5. Runtimes: one isolate per image (§2.2), the trusted one backed by
  // EPC memory.
  untrusted_domain_ = std::make_unique<UntrustedDomain>(*env_);
  trusted_domain_ = std::make_unique<sgx::EnclaveDomain>(*env_, *enclave_);
  trusted_iso_ = std::make_unique<rt::Isolate>(
      *env_, *trusted_domain_,
      rt::Isolate::Config{"trusted-isolate", config_.trusted_heap_bytes,
                          trusted_image_.image_heap_bytes});
  untrusted_iso_ = std::make_unique<rt::Isolate>(
      *env_, *untrusted_domain_,
      rt::Isolate::Config{"untrusted-isolate", config_.untrusted_heap_bytes,
                          untrusted_image_.image_heap_bytes});

  // 6. Bridge, shim and the two execution contexts.
  bridge_ = std::make_unique<sgx::TransitionBridge>(*env_, *enclave_);
  host_io_ = std::make_unique<shim::HostIo>(*env_, *untrusted_domain_);
  enclave_shim_ = std::make_unique<shim::EnclaveShim>(
      *env_, *bridge_, *host_io_, *trusted_domain_);
  enclave_shim_->register_ocalls();
  trusted_ctx_ = std::make_unique<interp::ExecContext>(
      *env_, *trusted_iso_, trusted_image_.classes, *enclave_shim_,
      intrinsics);
  untrusted_ctx_ = std::make_unique<interp::ExecContext>(
      *env_, *untrusted_iso_, untrusted_image_.classes, *host_io_,
      std::move(intrinsics));
  trusted_ctx_->set_fast_paths(config_.fast_rmi);
  untrusted_ctx_->set_fast_paths(config_.fast_rmi);
  trusted_ctx_->set_verify_bytecode(config_.verify_bytecode);
  untrusted_ctx_->set_verify_bytecode(config_.verify_bytecode);

  // 7. RMI machinery and GC helpers (§5.2, §5.5).
  rmi_ = std::make_unique<rmi::ProxyRuntime>(
      *env_, *bridge_, *trusted_ctx_, *untrusted_ctx_,
      rmi::ProxyRuntime::Config{config_.hash_scheme,
                                config_.gc_scan_period_seconds,
                                /*gc_auto_pump=*/true,
                                /*max_serialization_depth=*/64,
                                config_.fast_rmi});
  rmi_->register_handlers();
  trusted_ctx_->set_remote(rmi_.get());
  untrusted_ctx_->set_remote(rmi_.get());

  if (config_.switchless_relays) {
    for (const auto& fn : edl_.trusted) {
      if (fn.name.rfind("ecall_relay_", 0) == 0) {
        bridge_->set_switchless(fn.name, true);
      }
    }
    for (const auto& fn : edl_.untrusted) {
      if (fn.name.rfind("ocall_relay_", 0) == 0) {
        bridge_->set_switchless(fn.name, true);
      }
    }
  }
}

PartitionedApp::~PartitionedApp() = default;

rt::Value PartitionedApp::run_main(std::vector<rt::Value> args) {
  // SGX applications begin in the untrusted runtime (§5.3).
  return untrusted_ctx_->run_main(std::move(args));
}

TcbReport PartitionedApp::tcb_report() const {
  TcbReport r;
  r.app_code_bytes = trusted_image_.code_bytes;
  r.runtime_code_bytes = trusted_image_.runtime_code_bytes;
  r.shim_bytes = shim::EnclaveShim::shim_code_bytes();
  r.image_heap_bytes = trusted_image_.image_heap_bytes;
  r.trusted_classes = trusted_image_.class_count();
  r.trusted_methods = trusted_image_.method_count();
  r.edl_functions = edl_.trusted.size() + edl_.untrusted.size();
  return r;
}

UnpartitionedApp::UnpartitionedApp(const model::AppModel& app,
                                   AppConfig config,
                                   interp::IntrinsicTable intrinsics)
    : env_(make_env(config)), config_(std::move(config)) {
  app.validate();
  MSV_CHECK_MSG(!app.main_class().empty(),
                "unpartitioned app needs a main class");
  if (config_.lint_partition) lint_or_throw(app);

  // One image, rooted at main, linked entirely into the enclave (§5.6).
  xform::ImageBuilder builder(config_.image);
  std::vector<xform::MethodRef> eps{{app.main_class(), "main"}};
  for (const auto& [cls, method] : config_.extra_entry_points) {
    const model::ClassDecl* c = app.find_class(cls);
    if (c != nullptr && c->find_method(method) != nullptr) {
      eps.push_back({cls, method});
    }
  }
  image_ = builder.build(app, /*is_trusted=*/true, eps);

  sgx::EdlFunction main_fn;
  main_fn.name = "ecall_main";
  edl_.enclave_name = "montsalvat_enclave";
  edl_.add_ecall(std::move(main_fn));
  shim::EnclaveShim::add_edl_entries(edl_);

  const sgx::EdgeRoutines edge = sgx::edger8r_generate(edl_);
  Sha256 h;
  const ByteBuffer image_bytes = image_.serialize();
  h.update(image_bytes.data(), image_bytes.size());
  h.update("montsalvat-shim-v1");
  h.update(edge.trusted_source);
  const Sha256::Digest measurement = h.finish();

  enclave_ = std::make_unique<sgx::Enclave>(
      *env_, "montsalvat_enclave", measurement,
      image_.total_bytes() + shim::EnclaveShim::shim_code_bytes(),
      config_.enclave_heap_max_bytes, config_.enclave_stack_bytes,
      config_.tcs);
  enclave_->init(measurement);

  untrusted_domain_ = std::make_unique<UntrustedDomain>(*env_);
  trusted_domain_ = std::make_unique<sgx::EnclaveDomain>(*env_, *enclave_);
  iso_ = std::make_unique<rt::Isolate>(
      *env_, *trusted_domain_,
      rt::Isolate::Config{"enclave-isolate", config_.trusted_heap_bytes,
                          image_.image_heap_bytes});
  bridge_ = std::make_unique<sgx::TransitionBridge>(*env_, *enclave_);
  host_io_ = std::make_unique<shim::HostIo>(*env_, *untrusted_domain_);
  enclave_shim_ = std::make_unique<shim::EnclaveShim>(
      *env_, *bridge_, *host_io_, *trusted_domain_);
  enclave_shim_->register_ocalls();
  ctx_ = std::make_unique<interp::ExecContext>(
      *env_, *iso_, image_.classes, *enclave_shim_, std::move(intrinsics));
  ctx_->set_verify_bytecode(config_.verify_bytecode);

  ecall_main_id_ = bridge_->register_ecall("ecall_main", [this](ByteReader&) {
    env_->clock.advance(env_->cost.isolate_attach_trusted_cycles);
    ctx_->run_main();
    return ByteBuffer();
  });
  ecall_invoke_id_ =
      bridge_->register_ecall("ecall_invoke", [this](ByteReader&) {
        env_->clock.advance(env_->cost.isolate_attach_trusted_cycles);
        MSV_CHECK_MSG(pending_invoke_ != nullptr,
                      "no pending enclave function");
        pending_result_ = (*pending_invoke_)(*ctx_);
        return ByteBuffer();
      });
}

UnpartitionedApp::~UnpartitionedApp() = default;

rt::Value UnpartitionedApp::run_main(std::vector<rt::Value> args) {
  MSV_CHECK_MSG(args.empty(),
                "ecall_main takes no arguments in the unpartitioned mode");
  ByteBuffer empty, response;
  bridge_->ecall(ecall_main_id_, empty, response);
  return rt::Value();
}

rt::Value UnpartitionedApp::run_in_enclave(
    const std::function<rt::Value(interp::ExecContext&)>& fn) {
  pending_invoke_ = &fn;
  ByteBuffer empty, response;
  bridge_->ecall(ecall_invoke_id_, empty, response);
  pending_invoke_ = nullptr;
  rt::Value result = std::move(pending_result_);
  pending_result_ = rt::Value();
  return result;
}

NativeApp::NativeApp(const model::AppModel& app, AppConfig config,
                     interp::IntrinsicTable intrinsics)
    : env_(make_env(config)), config_(std::move(config)) {
  app.validate();
  MSV_CHECK_MSG(!app.main_class().empty(), "native app needs a main class");
  if (config_.lint_partition) lint_or_throw(app);
  xform::ImageBuilder builder(config_.image);
  std::vector<xform::MethodRef> eps{{app.main_class(), "main"}};
  if (config_.root_everything) {
    eps = all_public_methods(app);
  } else {
    for (const auto& [cls, method] : config_.extra_entry_points) {
      const model::ClassDecl* c = app.find_class(cls);
      if (c != nullptr && c->find_method(method) != nullptr) {
        eps.push_back({cls, method});
      }
    }
  }
  image_ = builder.build(app, /*is_trusted=*/false, eps);
  domain_ = std::make_unique<UntrustedDomain>(*env_);
  iso_ = std::make_unique<rt::Isolate>(
      *env_, *domain_,
      rt::Isolate::Config{"native-isolate", config_.untrusted_heap_bytes,
                          image_.image_heap_bytes});
  host_io_ = std::make_unique<shim::HostIo>(*env_, *domain_);
  ctx_ = std::make_unique<interp::ExecContext>(
      *env_, *iso_, image_.classes, *host_io_, std::move(intrinsics));
  ctx_->set_verify_bytecode(config_.verify_bytecode);
}

NativeApp::~NativeApp() = default;

rt::Value NativeApp::run_main(std::vector<rt::Value> args) {
  return ctx_->run_main(std::move(args));
}

}  // namespace msv::core
