#include "core/multi_app.h"

#include "support/error.h"
#include "transform/transformer.h"

namespace msv::core {

MultiIsolateApp::MultiIsolateApp(const model::AppModel& app,
                                 std::uint32_t trusted_isolates,
                                 AppConfig config,
                                 interp::IntrinsicTable intrinsics)
    : owned_env_(new Env(config.cost, config.fs)),
      env_(*owned_env_),
      config_(std::move(config)) {
  env_.telemetry.configure(config_.trace);
  build(app, trusted_isolates, "", std::move(intrinsics));
}

MultiIsolateApp::MultiIsolateApp(Env& env, const model::AppModel& app,
                                 std::uint32_t trusted_isolates,
                                 AppConfig config,
                                 const std::string& name_suffix,
                                 interp::IntrinsicTable intrinsics)
    : env_(env), config_(std::move(config)) {
  // The shared Env's cost model, filesystem and telemetry configuration
  // belong to the caller; this app only charges cycles into them.
  build(app, trusted_isolates, name_suffix, std::move(intrinsics));
}

void MultiIsolateApp::build(const model::AppModel& app,
                            std::uint32_t trusted_isolates,
                            const std::string& name_suffix,
                            interp::IntrinsicTable intrinsics) {
  MSV_CHECK_MSG(trusted_isolates >= 1, "need at least one trusted isolate");

  xform::BytecodeTransformer transformer;
  xform::TransformResult transformed = transformer.transform(app);
  xform::ImageBuilder builder(config_.image);

  auto entry_points = [&](const model::AppModel& set, bool is_trusted) {
    std::vector<xform::MethodRef> eps =
        is_trusted ? xform::trusted_image_entry_points(set)
                   : xform::untrusted_image_entry_points(set);
    for (const auto& [cls, method] : config_.extra_entry_points) {
      const model::ClassDecl* c = set.find_class(cls);
      if (c != nullptr && c->find_method(method) != nullptr) {
        eps.push_back({cls, method});
      }
    }
    return eps;
  };
  trusted_image_ = builder.build(transformed.trusted, true,
                                 entry_points(transformed.trusted, true));
  untrusted_image_ = builder.build(transformed.untrusted, false,
                                   entry_points(transformed.untrusted, false));

  const Sha256::Digest measurement = trusted_image_.measure();
  enclave_ = std::make_unique<sgx::Enclave>(
      env_,
      name_suffix.empty() ? "montsalvat_multi_enclave"
                          : "montsalvat_multi_enclave_" + name_suffix,
      measurement,
      trusted_image_.total_bytes() + shim::EnclaveShim::shim_code_bytes(),
      config_.enclave_heap_max_bytes, config_.enclave_stack_bytes,
      config_.tcs);
  enclave_->init(measurement);

  untrusted_domain_ = std::make_unique<UntrustedDomain>(env_);
  trusted_domain_ = std::make_unique<sgx::EnclaveDomain>(env_, *enclave_);
  untrusted_iso_ = std::make_unique<rt::Isolate>(
      env_, *untrusted_domain_,
      rt::Isolate::Config{"untrusted-isolate", config_.untrusted_heap_bytes,
                          untrusted_image_.image_heap_bytes});
  for (std::uint32_t k = 0; k < trusted_isolates; ++k) {
    // All trusted isolates share the enclave (and hence the EPC), but each
    // has its own heap and GC.
    trusted_isos_.push_back(std::make_unique<rt::Isolate>(
        env_, *trusted_domain_,
        rt::Isolate::Config{"trusted-isolate-" + std::to_string(k),
                            config_.trusted_heap_bytes,
                            trusted_image_.image_heap_bytes}));
  }

  bridge_ = std::make_unique<sgx::TransitionBridge>(env_, *enclave_);
  host_io_ = std::make_unique<shim::HostIo>(env_, *untrusted_domain_);
  enclave_shim_ = std::make_unique<shim::EnclaveShim>(env_, *bridge_,
                                                      *host_io_,
                                                      *trusted_domain_);
  enclave_shim_->register_ocalls();

  std::vector<interp::ExecContext*> trusted_ptrs;
  for (auto& iso : trusted_isos_) {
    trusted_ctxs_.push_back(std::make_unique<interp::ExecContext>(
        env_, *iso, trusted_image_.classes, *enclave_shim_, intrinsics));
    trusted_ptrs.push_back(trusted_ctxs_.back().get());
  }
  untrusted_ctx_ = std::make_unique<interp::ExecContext>(
      env_, *untrusted_iso_, untrusted_image_.classes, *host_io_,
      std::move(intrinsics));

  rmi_ = std::make_unique<rmi::MultiIsolateRuntime>(
      env_, *bridge_, trusted_ptrs, *untrusted_ctx_,
      rmi::MultiIsolateRuntime::Config{config_.hash_scheme});
  rmi_->register_handlers();
  for (auto& ctx : trusted_ctxs_) ctx->set_remote(rmi_.get());
  untrusted_ctx_->set_remote(rmi_.get());
}

MultiIsolateApp::~MultiIsolateApp() = default;

interp::ExecContext& MultiIsolateApp::trusted_context(std::uint32_t index) {
  MSV_CHECK_MSG(index < trusted_ctxs_.size(), "no such trusted isolate");
  return *trusted_ctxs_[index];
}

rt::Value MultiIsolateApp::construct_in(std::uint32_t index,
                                        const std::string& cls,
                                        std::vector<rt::Value> args) {
  return rmi_->construct_in(index, cls, std::move(args));
}

void MultiIsolateApp::collect_isolate(std::uint32_t index) {
  trusted_context(index).isolate().heap().collect();
}

void MultiIsolateApp::restart_enclave() {
  telemetry::SpanScope span(env_.telemetry.tracer(),
                            telemetry::Category::kFault,
                            env_.telemetry.names().enclave_restart);
  enclave_->restart(trusted_image_.measure());
  rmi_->on_enclave_restart();
}

}  // namespace msv::core
