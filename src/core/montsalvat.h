// Umbrella header: the public API of the Montsalvat library.
//
// Typical use (see examples/quickstart.cpp for the full Listing-1 program):
//
//   msv::model::AppModel app;
//   auto& account = app.add_class("Account", msv::model::Annotation::kTrusted);
//   account.add_field("owner");
//   ...
//   app.set_main_class("Main");
//
//   msv::core::PartitionedApp sgx_app(app);
//   sgx_app.run_main();
//
#pragma once

#include "core/app.h"               // PartitionedApp / UnpartitionedApp / NativeApp
#include "interp/exec_context.h"    // ExecContext, intrinsics
#include "model/app_model.h"        // AppModel, ClassDecl, MethodDecl
#include "model/ir.h"               // IrBuilder
#include "rmi/proxy_runtime.h"      // ProxyRuntime introspection
#include "sgx/attestation.h"        // remote attestation
#include "sim/env.h"                // Env, CostModel
