// montsalvatc — the Montsalvat command-line tool.
//
// Takes a program in the Montsalvat source language (see src/dsl), runs
// the partitioning workflow of Fig. 1, and either executes the resulting
// SGX application or emits its build artifacts.
//
// Usage:
//   montsalvatc <file.msv> [options]
//     --run            run the partitioned application (default)
//     --run-native     run without SGX (NoSGX-NI)
//     --run-enclave    run unpartitioned inside the enclave (§5.6)
//     --emit-edl       print the generated EDL
//     --emit-bridges   print the Edger8r-generated bridge sources
//     --emit-images    print the image inventory (classes, sizes, pruning)
//     --tcb            print the TCB report
//     --profile        print the sgx-perf-style transition profile after --run
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/montsalvat.h"
#include "dsl/parser.h"
#include "sgx/profiler.h"
#include "support/stats.h"

namespace {

using namespace msv;

int usage() {
  std::fputs(
      "usage: montsalvatc <file.msv> [--run | --run-native | --run-enclave]\n"
      "                   [--emit-edl] [--emit-bridges] [--emit-images]\n"
      "                   [--tcb] [--profile]\n",
      stderr);
  return 2;
}

void print_image(const xform::NativeImage& image) {
  std::printf("%s (%s): %zu classes, %zu methods, %s",
              image.name.c_str(), image.object_file.c_str(),
              image.class_count(), image.method_count(),
              format_bytes(static_cast<double>(image.total_bytes())).c_str());
  if (image.pruned_proxy_count > 0) {
    std::printf(", %zu unreachable proxies pruned", image.pruned_proxy_count);
  }
  std::printf("\n");
  for (const auto& cls : image.classes.classes()) {
    std::printf("  %-20s %-11s %zu methods%s\n", cls.name().c_str(),
                model::annotation_name(cls.annotation()),
                cls.methods().size(), cls.is_proxy() ? "  [proxy]" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string path = argv[1];
  bool run = false, run_native = false, run_enclave = false;
  bool emit_edl = false, emit_bridges = false, emit_images = false;
  bool tcb = false, profile = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--run") {
      run = true;
    } else if (arg == "--run-native") {
      run_native = true;
    } else if (arg == "--run-enclave") {
      run_enclave = true;
    } else if (arg == "--emit-edl") {
      emit_edl = true;
    } else if (arg == "--emit-bridges") {
      emit_bridges = true;
    } else if (arg == "--emit-images") {
      emit_images = true;
    } else if (arg == "--tcb") {
      tcb = true;
    } else if (arg == "--profile") {
      profile = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
  }
  if (!run_native && !run_enclave && !emit_edl && !emit_bridges &&
      !emit_images && !tcb) {
    run = true;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "montsalvatc: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    const model::AppModel app = dsl::parse_program(source.str());

    if (run_native) {
      core::NativeApp native(app);
      native.run_main();
      std::printf("[montsalvatc] NoSGX run: %s simulated\n",
                  format_seconds(native.now_seconds()).c_str());
      return 0;
    }
    if (run_enclave) {
      core::UnpartitionedApp enclave_app(app);
      enclave_app.run_main();
      std::printf("[montsalvatc] unpartitioned in-enclave run: %s simulated, "
                  "%llu ocalls\n",
                  format_seconds(enclave_app.now_seconds()).c_str(),
                  static_cast<unsigned long long>(
                      enclave_app.bridge().stats().ocalls));
      return 0;
    }

    core::PartitionedApp sgx_app(app);
    if (emit_edl) {
      std::fputs(sgx_app.edl().to_edl_text().c_str(), stdout);
    }
    if (emit_bridges) {
      std::fputs(sgx_app.edge_routines().header.c_str(), stdout);
      std::fputs(sgx_app.edge_routines().trusted_source.c_str(), stdout);
      std::fputs(sgx_app.edge_routines().untrusted_source.c_str(), stdout);
    }
    if (emit_images) {
      print_image(sgx_app.trusted_image());
      print_image(sgx_app.untrusted_image());
    }
    if (tcb) {
      const core::TcbReport report = sgx_app.tcb_report();
      std::printf(
          "TCB: %s total = app %s + runtime %s + shim %s + image heap %s; "
          "%zu trusted classes, %zu methods, %zu EDL functions\n",
          format_bytes(static_cast<double>(report.total_bytes())).c_str(),
          format_bytes(static_cast<double>(report.app_code_bytes)).c_str(),
          format_bytes(static_cast<double>(report.runtime_code_bytes)).c_str(),
          format_bytes(static_cast<double>(report.shim_bytes)).c_str(),
          format_bytes(static_cast<double>(report.image_heap_bytes)).c_str(),
          report.trusted_classes, report.trusted_methods,
          report.edl_functions);
    }
    if (run) {
      sgx_app.run_main();
      std::printf(
          "[montsalvatc] partitioned run: %s simulated, %llu ecalls, "
          "%llu ocalls, %zu mirrors in the enclave\n",
          format_seconds(sgx_app.now_seconds()).c_str(),
          static_cast<unsigned long long>(sgx_app.bridge().stats().ecalls),
          static_cast<unsigned long long>(sgx_app.bridge().stats().ocalls),
          sgx_app.rmi().registry(Side::kTrusted).size());
      if (profile) {
        const auto prof = sgx::profile_transitions(sgx_app.bridge().stats(),
                                                   sgx_app.env().cost);
        std::fputs(sgx::transition_report(prof, sgx_app.env().cost).c_str(),
                   stdout);
      }
    }
    return 0;
  } catch (const dsl::ParseError& e) {
    std::fprintf(stderr, "montsalvatc: %s: %s\n", path.c_str(), e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "montsalvatc: %s\n", e.what());
    return 1;
  }
}
