#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file written by --trace-out.

    tools/check_trace.py build/fig_server_trace.json

Checks that the file parses, that the serving scenario's span taxonomy is
present (rmi, gc, epc, server, sched categories and their marquee span
names, including at least one woven ecall_relay_* transition), that spans
are linked into causal trees by trace context, and that the exporter's
bookkeeping (clock_hz, span_count, dropped_spans) survived. Exit 0 = OK,
1 = validation failure, 2 = usage. Used by tools/tier1.sh, the CMake
`check` target and CI.
"""

import json
import sys

REQUIRED_CATEGORIES = {"rmi", "gc", "epc", "server", "sched"}
REQUIRED_NAMES = {
    "request",        # per-tenant request lifecycle (detached server span)
    "server.handle",  # worker-side adopted service span
    "rmi.invoke",     # caller-side proxy invocation
    "rmi.dispatch",   # callee-side relay dispatch
    "gc.collect",     # collector phase spans
    "epc.page_in",    # EPC paging
}


def fail(msg):
    sys.stderr.write("check_trace: %s\n" % msg)
    return 1


def main(argv):
    if len(argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    try:
        with open(argv[1]) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        return fail("cannot parse %s: %s" % (argv[1], e))

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("no traceEvents array")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        return fail("no complete (ph=X) span events")

    categories = {e.get("cat") for e in spans}
    missing = REQUIRED_CATEGORIES - categories
    if missing:
        return fail("missing span categories: %s (have %s)"
                    % (sorted(missing), sorted(categories)))

    names = {e.get("name") for e in spans}
    missing = REQUIRED_NAMES - names
    if missing:
        return fail("missing span names: %s" % sorted(missing))
    if not any(n and n.startswith("ecall_relay_") for n in names):
        return fail("no woven ecall_relay_* transition spans")

    # Trace-context linkage: spans must form causal trees, i.e. parent ids
    # resolve to other recorded spans.
    span_ids = {e["args"]["span"] for e in spans if "args" in e}
    linked = sum(1 for e in spans
                 if e.get("args", {}).get("parent") in span_ids)
    if linked == 0:
        return fail("no span is parented under another (trace context lost)")

    other = data.get("otherData", {})
    for key in ("clock_hz", "span_count", "dropped_spans"):
        if key not in other:
            return fail("otherData missing %s" % key)

    # Per-category ring-wrap accounting (DESIGN.md §16): the exporter must
    # break dropped_spans down by category, every category must be present
    # (zeros included — "nothing dropped" is distinguishable from "counter
    # missing"), and the breakdown must sum to the total.
    by_cat = other.get("dropped_by_category")
    if not isinstance(by_cat, dict) or not by_cat:
        return fail("otherData missing dropped_by_category")
    missing = REQUIRED_CATEGORIES - set(by_cat)
    if missing:
        return fail("dropped_by_category missing categories: %s"
                    % sorted(missing))
    total = sum(by_cat.values())
    if total != other["dropped_spans"]:
        return fail("dropped_by_category sums to %d but dropped_spans is %d"
                    % (total, other["dropped_spans"]))

    print("check_trace: %d spans, %d linked, %d categories, %d dropped — OK"
          % (len(spans), linked, len(categories),
             other.get("dropped_spans", 0)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
