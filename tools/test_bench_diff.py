#!/usr/bin/env python3
"""Pytest-style checks for tools/bench_diff.py (run in CI by tier1.sh).

Each ``test_*`` function exercises one exit-protocol contract of the
perf-regression gate by invoking bench_diff.py as a subprocess on
synthetic report pairs:

  * within-band runs pass (exit 0),
  * a throughput drop / p99 rise past tolerance fails (exit 1),
  * a scale-key mismatch skips the gate (exit 0 with a notice),
  * an EMPTY metric-key intersection is a hard failure (exit 1) that
    names the keys on both sides — the regression this file pins is the
    old behaviour where a renamed scale key silently skipped *all*
    metrics and the gate rotted into a no-op,
  * malformed input exits 2.

Runs under pytest if available, but needs nothing beyond the standard
library: executing the file directly runs every test_* function and
exits non-zero on the first failure.
"""

import json
import os
import subprocess
import sys
import tempfile

BENCH_DIFF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_diff.py")


def run_diff(base_doc, cand_doc, *extra):
    """Writes both docs to temp files and runs bench_diff.py on them."""
    with tempfile.TemporaryDirectory() as d:
        base = os.path.join(d, "base.json")
        cand = os.path.join(d, "cand.json")
        for path, doc in ((base, base_doc), (cand, cand_doc)):
            with open(path, "w", encoding="utf-8") as f:
                if isinstance(doc, str):
                    f.write(doc)
                else:
                    json.dump(doc, f)
        return subprocess.run(
            [sys.executable, BENCH_DIFF, base, cand, *extra],
            capture_output=True, text=True)


def report(metrics, name="stress"):
    return {"benchmark": name, "tables": {}, "metrics": metrics}


def test_within_bands_passes():
    r = run_diff(report({"a_throughput_rps": 100.0, "a_p99_us": 50.0}),
                 report({"a_throughput_rps": 95.0, "a_p99_us": 55.0}))
    assert r.returncode == 0, r.stdout + r.stderr
    assert "OK" in r.stdout


def test_throughput_regression_fails():
    r = run_diff(report({"a_throughput_rps": 100.0}),
                 report({"a_throughput_rps": 80.0}))
    assert r.returncode == 1, r.stdout + r.stderr
    assert "a_throughput_rps" in r.stdout


def test_p99_regression_fails():
    r = run_diff(report({"a_p99_cycles": 1000.0}),
                 report({"a_p99_cycles": 1500.0}))
    assert r.returncode == 1, r.stdout + r.stderr
    assert "a_p99_cycles" in r.stdout


def test_scale_key_mismatch_skips():
    # Same metric keys, different workload scale: smoke vs full runs are
    # not comparable, and the gate says so without crying wolf.
    r = run_diff(report({"requests": 100, "a_throughput_rps": 100.0}),
                 report({"requests": 10, "a_throughput_rps": 10.0}))
    assert r.returncode == 0, r.stdout + r.stderr
    assert "not comparable" in r.stdout


def test_empty_intersection_is_a_hard_failure():
    # The pinned regression: baseline predates a key rename, so the
    # intersection is empty. The old gate printed "nothing to compare"
    # and exited 0; it must exit 1 and name the keys on both sides.
    r = run_diff(report({"old_requests": 100, "old_throughput_rps": 50.0}),
                 report({"requests": 100, "a_throughput_rps": 50.0}))
    assert r.returncode == 1, r.stdout + r.stderr
    assert "no common metric keys" in r.stderr
    assert "old_throughput_rps" in r.stderr, "baseline keys must be named"
    assert "a_throughput_rps" in r.stderr, "candidate keys must be named"


def test_both_sides_empty_is_a_hard_failure():
    r = run_diff(report({}), report({}))
    assert r.returncode == 1, r.stdout + r.stderr
    assert "(none)" in r.stderr


def test_mismatched_benchmark_names_exit_2():
    r = run_diff(report({"a_rps": 1.0}, name="x"),
                 report({"a_rps": 1.0}, name="y"))
    assert r.returncode == 2, r.stdout + r.stderr


def test_malformed_input_exits_2():
    r = run_diff("{not json", report({"a_rps": 1.0}))
    assert r.returncode == 2, r.stdout + r.stderr


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    for name, fn in tests:
        fn()
        print(f"  ok   {name}")
    print(f"test_bench_diff: {len(tests)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
