#!/usr/bin/env bash
# Tier-1 gate: configure + build + full test suite (ROADMAP.md), then a
# smoke pass of the RMI fast-path ablation so hot-path regressions that
# only show up as cycle divergence or a dead fast path fail fast too.
#
# Usage: tools/tier1.sh [build-dir]   (default: build)
# Also wired as the CMake `check` target: cmake --build build --target check
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

"$BUILD_DIR"/bench/abl_rmi_fastpath --smoke > /dev/null
echo "tier1: tests + rmi fast-path smoke OK"
