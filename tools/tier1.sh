#!/usr/bin/env bash
# Tier-1 gate: configure + build + full test suite (ROADMAP.md), then
# smoke passes of the honesty-contract ablations so regressions that only
# show up as cycle divergence (RMI fast path vs legacy, switchless ring
# vs inline) fail fast too.
#
# Usage: tools/tier1.sh [build-dir]   (default: build)
# Also wired as the CMake `check` target: cmake --build build --target check
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

"$BUILD_DIR"/bench/abl_rmi_fastpath --smoke > /dev/null
"$BUILD_DIR"/bench/abl_switchless --smoke > /dev/null

# Batched-RMI smoke (DESIGN.md §13): aborts unless batch width 1 is
# cycle-identical to the unbatched path and width >= 16 clears the 5x
# amortization gate.
"$BUILD_DIR"/bench/abl_rmi_batch --smoke \
  --json="$BUILD_DIR"/BENCH_rmi_batch.json > /dev/null

# Fault-storm smoke (DESIGN.md §12): a seeded loss/transition/EPC/TCS/
# corruption storm through the serving layer, run twice — the binary
# aborts unless both runs agree bit-for-bit on clocks and counters, and
# unless the server stays partially available under the storm.
"$BUILD_DIR"/bench/fig_faults --smoke \
  --json="$BUILD_DIR"/BENCH_faults.json > /dev/null

# Fleet smoke (DESIGN.md §14 + §16): 64 Zipfian tenants over a sharded
# enclave fleet — ring routing, a loss storm served by warm-standby
# promotion vs the restart ladder (promotion must win the p99 by >= 3x),
# a hot-tenant migration, a fleet-wide two-run determinism self-check,
# and the health-under-storm scenario (SLO monitor + flight recorder +
# profiler armed at zero simulated-cycle cost; artifacts below).
"$BUILD_DIR"/bench/fig_fleet --smoke \
  --json="$BUILD_DIR"/BENCH_fleet.json \
  --health-out="$BUILD_DIR"/fleet_health.txt \
  --postmortem-out="$BUILD_DIR"/fleet_postmortem.json \
  --folded-out="$BUILD_DIR"/fleet_folded.txt > /dev/null

# msvmon must parse every artifact the health stack just wrote (exit 2 =
# malformed bundle; the post-mortems are only useful if they open).
"$BUILD_DIR"/tools/msvmon --health="$BUILD_DIR"/fleet_health.txt \
  --postmortem="$BUILD_DIR"/fleet_postmortem.json \
  --folded="$BUILD_DIR"/fleet_folded.txt --summary

# Perf-regression gate (DESIGN.md §16): fresh smoke reports vs the
# checked-in baselines — fail on >10% throughput drop or >20% p99 rise.
# (Counters and clocks are exact by determinism; the bands only absorb
# legitimate re-baselines, not drift.)
tools/bench_diff.py BENCH_fleet.json "$BUILD_DIR"/BENCH_fleet.json
tools/bench_diff.py BENCH_health.json "$BUILD_DIR"/BENCH_fleet.json
tools/bench_diff.py BENCH_faults.json "$BUILD_DIR"/BENCH_faults.json
tools/bench_diff.py BENCH_rmi_batch.json "$BUILD_DIR"/BENCH_rmi_batch.json

# msvlint must stay clean over the whole example/app corpus — including
# the §6.5/§6.6 app models and the value-trust analysis feeding MSV010 —
# with the native-edge dry run feeding MSV004 (exit 1 = unsuppressed lint
# errors; MSV010 demotion candidates are informational).
"$BUILD_DIR"/tools/msvlint examples/*.msv --bank --micro --paldb \
  --graphchi --specjvm --synthetic=40 --trace-native --trust \
  --quiet > /dev/null

# msvlint --fix dry-run smoke (DESIGN.md §15): profile the fig06-style
# workload, run the trust analysis + min-cut optimizer, apply the plan and
# replay original vs re-partitioned twice each — exits 1 unless all four
# runs are byte-identical and crossings do not regress.
"$BUILD_DIR"/tools/msvlint --synthetic=16 --untrusted-fraction=0 \
  --secret-fraction=0.25 --fix --quiet > /dev/null

# Partition-optimizer smoke (DESIGN.md §15): aborts unless the optimized
# partition replays byte-identically (2+2 runs), keeps every
# secret-carrying class inside, and cuts boundary crossings >= 20%.
"$BUILD_DIR"/bench/abl_partition --smoke \
  --json="$BUILD_DIR"/BENCH_partition.json > /dev/null
tools/bench_diff.py BENCH_partition.json "$BUILD_DIR"/BENCH_partition.json

# Stress smoke tier (DESIGN.md §17): the five adversarial-workload
# stressors, each its own abort-on-gate acceptance test — the EPC paging
# cliff curve + mid-run shrink, GC allocation storms + weakref churn,
# pathological serde shapes + sealed checkpoints, TCS exhaustion, and the
# fault storm under overload with the health stack armed. Their reports
# merge into one BENCH_stress.json gated against the checked-in baseline
# (the suite is deterministic, so smoke-vs-smoke compares exactly).
for s in epc gc serde tcs storm; do
  "$BUILD_DIR"/bench/stress_$s --smoke \
    --json="$BUILD_DIR"/stress_$s.json > /dev/null
done
tools/stress_report.py --out "$BUILD_DIR"/BENCH_stress.json \
  epc="$BUILD_DIR"/stress_epc.json gc="$BUILD_DIR"/stress_gc.json \
  serde="$BUILD_DIR"/stress_serde.json tcs="$BUILD_DIR"/stress_tcs.json \
  storm="$BUILD_DIR"/stress_storm.json > /dev/null
tools/bench_diff.py BENCH_stress.json "$BUILD_DIR"/BENCH_stress.json

# bench_diff's own contract (gating bands, scale-key skip, empty-
# intersection hard failure) is load-bearing for every gate above.
python3 tools/test_bench_diff.py > /dev/null

# Telemetry smoke: a traced serving run must emit a valid Chrome trace
# with the full span taxonomy linked by trace context (DESIGN.md §10).
"$BUILD_DIR"/bench/fig_server --smoke \
  --trace-out="$BUILD_DIR"/fig_server_trace.json \
  --metrics-out="$BUILD_DIR"/fig_server_metrics.txt > /dev/null
tools/check_trace.py "$BUILD_DIR"/fig_server_trace.json

echo "tier1: tests + ablations + batched-rmi + fault-storm + msvlint + partition-optimizer + telemetry-trace + health/bench-diff + stress smoke OK"
