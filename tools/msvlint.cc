// msvlint — the Montsalvat partition-soundness and secret-flow linter.
//
// Runs the bytecode verifier (analysis/verify.h) and the MSV001…MSV010
// partition rule suite (analysis/lint.h) over Montsalvat DSL programs and
// the built-in application models, and reports findings as human text or
// msvlint-report-v2 JSON. With --propose-partition/--fix it additionally
// runs the min-cut partition optimizer (analysis/optimize.h) over a
// profiled dry run and emits — or applies and replay-verifies — a
// re-partitioning plan.
//
// Usage:
//   msvlint [<file.msv>...] [options]
//     --bank                 lint the Listing-1 bank application
//     --micro                lint the Fig. 3-4 micro model
//     --paldb                lint the §6.5 PalDB app (RTWU scheme)
//     --graphchi             lint the §6.5 GraphChi app
//     --specjvm              lint the §6.6 SPECjvm harness model (fft)
//     --synthetic[=N]        lint the §6.5 generator output (default 100)
//     --untrusted-fraction=F generator @Untrusted fraction (default 0.5)
//     --secret-fraction=F    generator secret-field fraction (default 0)
//     --trace-native         dry-run main, diff observed native call edges
//                            against declared_callees() hints (MSV004)
//     --trust                value-granular trust analysis + MSV010
//     --propose-partition    profile main, run the min-cut optimizer,
//                            print the re-partitioning plan (implies
//                            --trust)
//     --fix                  apply the plan and verify it: replay the
//                            workload on the original and re-partitioned
//                            app twice each; require byte-identical
//                            output and no crossing regression
//     --plan-out=FILE        write the plan JSON to FILE ('-' for stdout)
//     --plan-seed=N          optimizer digest seed (default 0)
//     --min-gain=F           revert plans below this relative gain
//     --verify-only          bytecode verifier only, no partition rules
//     --list-rules           print the rule catalogue and exit
//     --baseline=FILE        suppress findings listed in FILE
//     --write-baseline=FILE  write a baseline covering current findings
//     --json=FILE            emit JSON report to FILE ('-' for stdout)
//     --json-v1              emit the legacy msvlint-report-v1 schema
//     --quiet                summary only, no per-finding lines
//
// Exit status: 0 clean (or only warnings/suppressed), 1 unsuppressed
// errors or failed --fix verification, 2 usage or I/O failure.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/msvlint/driver.h"

namespace {

int usage() {
  std::fputs(
      "usage: msvlint [<file.msv>...] [--bank] [--micro] [--paldb]\n"
      "               [--graphchi] [--specjvm] [--synthetic[=N]]\n"
      "               [--untrusted-fraction=F] [--secret-fraction=F]\n"
      "               [--trace-native] [--trust] [--propose-partition]\n"
      "               [--fix] [--plan-out=FILE] [--plan-seed=N]\n"
      "               [--min-gain=F] [--verify-only] [--list-rules]\n"
      "               [--baseline=FILE] [--write-baseline=FILE]\n"
      "               [--json=FILE] [--json-v1] [--quiet]\n",
      stderr);
  return 2;
}

bool parse_value(const std::string& arg, const std::string& flag,
                 std::string* value) {
  if (arg.rfind(flag + "=", 0) != 0) return false;
  *value = arg.substr(flag.size() + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  msv::apps::msvlint::DriverOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--bank") {
      options.bank = true;
    } else if (arg == "--micro") {
      options.micro = true;
    } else if (arg == "--paldb") {
      options.paldb = true;
    } else if (arg == "--graphchi") {
      options.graphchi = true;
    } else if (arg == "--specjvm") {
      options.specjvm = true;
    } else if (arg == "--synthetic") {
      options.synthetic_classes = 100;
    } else if (parse_value(arg, "--synthetic", &value)) {
      options.synthetic_classes = std::atoi(value.c_str());
    } else if (parse_value(arg, "--untrusted-fraction", &value)) {
      options.synthetic_untrusted = std::atof(value.c_str());
    } else if (parse_value(arg, "--secret-fraction", &value)) {
      options.synthetic_secret = std::atof(value.c_str());
    } else if (arg == "--trace-native") {
      options.trace_native = true;
    } else if (arg == "--trust") {
      options.trust_analysis = true;
    } else if (arg == "--propose-partition") {
      options.propose_partition = true;
    } else if (arg == "--fix") {
      options.fix = true;
    } else if (parse_value(arg, "--plan-out", &value)) {
      options.plan_out = value;
    } else if (parse_value(arg, "--plan-seed", &value)) {
      options.plan_seed =
          static_cast<std::uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (parse_value(arg, "--min-gain", &value)) {
      options.plan_min_gain = std::atof(value.c_str());
    } else if (arg == "--json-v1") {
      options.json_version = 1;
    } else if (arg == "--verify-only") {
      options.verify_only = true;
    } else if (arg == "--list-rules") {
      options.list_rules = true;
    } else if (parse_value(arg, "--baseline", &value)) {
      options.baseline_path = value;
    } else if (parse_value(arg, "--write-baseline", &value)) {
      options.write_baseline_path = value;
    } else if (parse_value(arg, "--json", &value)) {
      options.json_path = value;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "msvlint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      options.dsl_paths.push_back(arg);
    }
  }
  if (options.dsl_paths.empty() && !options.bank && !options.micro &&
      !options.paldb && !options.graphchi && !options.specjvm &&
      options.synthetic_classes < 0 && !options.list_rules) {
    return usage();
  }
  return msv::apps::msvlint::run_driver(options, std::cout, std::cerr);
}
