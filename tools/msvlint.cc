// msvlint — the Montsalvat partition-soundness and secret-flow linter.
//
// Runs the bytecode verifier (analysis/verify.h) and the MSV001…MSV007
// partition rule suite (analysis/lint.h) over Montsalvat DSL programs and
// the built-in application models, and reports findings as human text or
// msvlint-report-v1 JSON.
//
// Usage:
//   msvlint [<file.msv>...] [options]
//     --bank                 lint the Listing-1 bank application
//     --micro                lint the Fig. 3-4 micro model
//     --synthetic[=N]        lint the §6.5 generator output (default 100)
//     --untrusted-fraction=F generator @Untrusted fraction (default 0.5)
//     --trace-native         dry-run main, diff observed native call edges
//                            against declared_callees() hints (MSV004)
//     --verify-only          bytecode verifier only, no partition rules
//     --list-rules           print the rule catalogue and exit
//     --baseline=FILE        suppress findings listed in FILE
//     --write-baseline=FILE  write a baseline covering current findings
//     --json=FILE            emit JSON report to FILE ('-' for stdout)
//     --quiet                summary only, no per-finding lines
//
// Exit status: 0 clean (or only warnings/suppressed), 1 unsuppressed
// errors, 2 usage or I/O failure.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/msvlint/driver.h"

namespace {

int usage() {
  std::fputs(
      "usage: msvlint [<file.msv>...] [--bank] [--micro] [--synthetic[=N]]\n"
      "               [--untrusted-fraction=F] [--trace-native]\n"
      "               [--verify-only] [--list-rules] [--baseline=FILE]\n"
      "               [--write-baseline=FILE] [--json=FILE] [--quiet]\n",
      stderr);
  return 2;
}

bool parse_value(const std::string& arg, const std::string& flag,
                 std::string* value) {
  if (arg.rfind(flag + "=", 0) != 0) return false;
  *value = arg.substr(flag.size() + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  msv::apps::msvlint::DriverOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--bank") {
      options.bank = true;
    } else if (arg == "--micro") {
      options.micro = true;
    } else if (arg == "--synthetic") {
      options.synthetic_classes = 100;
    } else if (parse_value(arg, "--synthetic", &value)) {
      options.synthetic_classes = std::atoi(value.c_str());
    } else if (parse_value(arg, "--untrusted-fraction", &value)) {
      options.synthetic_untrusted = std::atof(value.c_str());
    } else if (arg == "--trace-native") {
      options.trace_native = true;
    } else if (arg == "--verify-only") {
      options.verify_only = true;
    } else if (arg == "--list-rules") {
      options.list_rules = true;
    } else if (parse_value(arg, "--baseline", &value)) {
      options.baseline_path = value;
    } else if (parse_value(arg, "--write-baseline", &value)) {
      options.write_baseline_path = value;
    } else if (parse_value(arg, "--json", &value)) {
      options.json_path = value;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "msvlint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      options.dsl_paths.push_back(arg);
    }
  }
  if (options.dsl_paths.empty() && !options.bank && !options.micro &&
      options.synthetic_classes < 0 && !options.list_rules) {
    return usage();
  }
  return msv::apps::msvlint::run_driver(options, std::cout, std::cerr);
}
