// msvmon — fleet health & forensics report tool (DESIGN.md §16).
//
// Renders the artifacts the health stack writes:
//   * SLO health reports (telemetry::SloMonitor::report) — already plain
//     text; msvmon validates the banner and re-prints timeline/breaches,
//     optionally filtered to one key.
//   * Post-mortem bundles (telemetry::FlightBus::bundle_json, format
//     "msv-postmortem-v1") — parsed with the built-in JSON reader and
//     rendered one post-mortem per section: reason, instant, frozen ring,
//     recent spans, metric snapshot.
//   * Folded profiler stacks (telemetry::SampleProfiler::folded) —
//     rendered as a top-N self-cycles table.
//
// Usage:
//   msvmon --health=FILE      render an SLO health report
//   msvmon --postmortem=FILE  render a post-mortem bundle
//   msvmon --folded=FILE      render folded stacks (top-N table)
//   msvmon --key=K            (with --health) only timeline lines of key K
//   msvmon --top=N            (with --folded) rows to show (default 20)
//   msvmon --summary          one-line verdict per input, no detail
//
// Exit status: 0 on success, 1 on unreadable input, 2 on a parse error —
// CI treats a bundle msvmon cannot parse as a failed artifact.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader (objects, arrays, strings, numbers,
// bools, null). The bundle is machine-written and escaped by flight.cc, so
// the reader is strict: any deviation is a parse error.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion order preserved: bundles are rendered from sorted
  // containers, and msvmon re-prints in the same order.
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::string get_str(const std::string& key) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : std::string();
  }
  double get_num(const std::string& key) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  std::string error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // The bundle only escapes control bytes this way.
          out += static_cast<char>(code & 0xff);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue& out) {
    out.kind = JsonValue::Kind::kNull;
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' ||
            s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    out.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "msvmon: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int render_health(const std::string& path, const std::string& key,
                  bool summary) {
  std::string text;
  if (!read_file(path, text)) return 1;
  if (text.compare(0, 20, "# msv health report ") != 0) {
    std::fprintf(stderr, "msvmon: %s is not an SLO health report\n",
                 path.c_str());
    return 2;
  }
  std::istringstream in(text);
  std::string line;
  std::uint64_t timeline = 0, breaches = 0;
  std::string section;
  std::vector<std::string> shown;
  while (std::getline(in, line)) {
    if (line == "## timeline" || line == "## breaches") {
      section = line;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (section == "## timeline") {
      ++timeline;
      if (!key.empty() && line.find(" " + key + ":") == std::string::npos) {
        continue;
      }
      shown.push_back(line);
    } else if (section == "## breaches") {
      ++breaches;
      shown.push_back(line);
    }
  }
  std::printf("msvmon: health report %s — %llu timeline events, %llu keys "
              "with breaches\n",
              path.c_str(), static_cast<unsigned long long>(timeline),
              static_cast<unsigned long long>(breaches));
  if (!summary) {
    for (const std::string& l : shown) std::printf("  %s\n", l.c_str());
  }
  return 0;
}

int render_postmortem(const std::string& path, bool summary) {
  std::string text;
  if (!read_file(path, text)) return 1;
  JsonValue root;
  JsonParser parser(text);
  if (!parser.parse(root) || root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "msvmon: %s: JSON parse error: %s\n", path.c_str(),
                 parser.error().c_str());
    return 2;
  }
  if (root.get_str("format") != "msv-postmortem-v1") {
    std::fprintf(stderr, "msvmon: %s is not an msv-postmortem-v1 bundle\n",
                 path.c_str());
    return 2;
  }
  const double hz = root.get_num("clock_hz");
  const JsonValue* pms = root.find("postmortems");
  if (pms == nullptr || pms->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "msvmon: %s: missing postmortems array\n",
                 path.c_str());
    return 2;
  }
  std::printf("msvmon: post-mortem bundle %s — %zu snapshot(s), clock %.3g "
              "Hz, ring capacity %g\n",
              path.c_str(), pms->array.size(), hz,
              root.get_num("ring_capacity"));
  if (summary) return 0;
  for (const JsonValue& pm : pms->array) {
    const double at = pm.get_num("at_cycles");
    std::printf("\n== post-mortem #%g: enclave %s, reason %s, at %.0f "
                "cycles (%.3fms) ==\n",
                pm.get_num("seq"), pm.get_str("enclave").c_str(),
                pm.get_str("reason").c_str(), at,
                hz > 0 ? at / hz * 1e3 : 0.0);
    if (const JsonValue* extra = pm.find("extra")) {
      for (const auto& [k, v] : extra->object) {
        std::printf("   %s = %s\n", k.c_str(), v.str.c_str());
      }
    }
    std::printf("   ring: %g recorded, %g evicted\n",
                pm.get_num("ring_recorded"), pm.get_num("ring_evicted"));
    if (const JsonValue* events = pm.find("events")) {
      std::printf("   last %zu flight events:\n", events->array.size());
      for (const JsonValue& e : events->array) {
        std::printf("     [%12.0fcy] %-10s %s (a=%g b=%g)\n",
                    e.get_num("at"), e.get_str("kind").c_str(),
                    e.get_str("name").c_str(), e.get_num("a"),
                    e.get_num("b"));
      }
    }
    if (const JsonValue* spans = pm.find("recent_spans")) {
      std::printf("   recent spans (%zu):\n", spans->array.size());
      for (const JsonValue& s : spans->array) {
        std::printf("     [%12.0fcy +%.0f] %s/%s%s\n", s.get_num("start"),
                    s.get_num("end") - s.get_num("start"),
                    s.get_str("category").c_str(), s.get_str("name").c_str(),
                    s.find("open") != nullptr && s.find("open")->boolean
                        ? " (open)"
                        : "");
      }
    }
    if (const JsonValue* metrics = pm.find("metrics")) {
      std::printf("   metrics snapshot: %zu series\n",
                  metrics->object.size());
    }
  }
  return 0;
}

int render_folded(const std::string& path, std::size_t top, bool summary) {
  std::string text;
  if (!read_file(path, text)) return 1;
  std::istringstream in(text);
  std::string line;
  std::vector<std::pair<std::uint64_t, std::string>> rows;
  std::uint64_t total = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      std::fprintf(stderr, "msvmon: %s: not folded-stacks format\n",
                   path.c_str());
      return 2;
    }
    const std::uint64_t n = std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    rows.emplace_back(n, line.substr(0, sp));
    total += n;
  }
  std::printf("msvmon: folded stacks %s — %zu distinct stacks, %llu "
              "samples\n",
              path.c_str(), rows.size(),
              static_cast<unsigned long long>(total));
  if (summary || rows.empty()) return 0;
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::printf("  %8s %6s  stack\n", "samples", "%");
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    std::printf("  %8llu %5.1f%%  %s\n",
                static_cast<unsigned long long>(rows[i].first),
                total > 0 ? 100.0 * static_cast<double>(rows[i].first) /
                                static_cast<double>(total)
                          : 0.0,
                rows[i].second.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string health, postmortem, folded, key;
  std::size_t top = 20;
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--health=", 9) == 0) {
      health = a + 9;
    } else if (std::strncmp(a, "--postmortem=", 13) == 0) {
      postmortem = a + 13;
    } else if (std::strncmp(a, "--folded=", 9) == 0) {
      folded = a + 9;
    } else if (std::strncmp(a, "--key=", 6) == 0) {
      key = a + 6;
    } else if (std::strncmp(a, "--top=", 6) == 0) {
      top = static_cast<std::size_t>(std::strtoull(a + 6, nullptr, 10));
    } else if (std::strcmp(a, "--summary") == 0) {
      summary = true;
    } else {
      std::fprintf(stderr,
                   "usage: msvmon [--health=FILE] [--postmortem=FILE] "
                   "[--folded=FILE] [--key=K] [--top=N] [--summary]\n");
      return 1;
    }
  }
  if (health.empty() && postmortem.empty() && folded.empty()) {
    std::fprintf(stderr, "msvmon: nothing to do (pass --health/"
                         "--postmortem/--folded)\n");
    return 1;
  }
  int rc = 0;
  if (!health.empty()) rc = std::max(rc, render_health(health, key, summary));
  if (!postmortem.empty()) {
    rc = std::max(rc, render_postmortem(postmortem, summary));
  }
  if (!folded.empty()) rc = std::max(rc, render_folded(folded, top, summary));
  return rc;
}
