#!/usr/bin/env python3
"""bench_diff.py — the perf-regression gate (DESIGN.md §16).

Compares a freshly produced BENCH_*.json against the checked-in baseline
and fails when the run regressed past the tolerance bands:

  * throughput-like metrics (``*_throughput_rps``, ``*_rps``): FAIL when
    the candidate is more than --throughput-tol (default 10%) BELOW the
    baseline;
  * tail-latency metrics (``*_p99_us``, ``*_p99_cycles``): FAIL when the
    candidate is more than --p99-tol (default 20%) ABOVE the baseline;
  * everything else: informational only (printed with --verbose) — counts
    move legitimately when scenarios change, and the simulator's own
    determinism self-checks already guard exactness within a run.

Only the ``metrics`` object is compared (checked-in artifacts carry extra
post-processed keys like ``git_sha``), and only over the intersection of
keys: a new scenario adds keys without breaking the gate, and a removed
one drops out the next time the baseline is refreshed. An *empty*
intersection, however, is a hard failure: it means every key was renamed
(or the wrong files were paired) and the gate would silently compare
nothing — exactly the rot this tool exists to prevent.

Scale guard: when the two files disagree on workload-scale keys
(``requests``, ``tenants``, ``iterations``) the comparison would be
meaningless — e.g. a --smoke run against a full-length baseline — so the
gate exits 0 with a notice instead of crying wolf.

Usage:
    bench_diff.py BASELINE CANDIDATE [--throughput-tol=0.10]
                  [--p99-tol=0.20] [--verbose]

Exit status: 0 = within bands (or scale-skipped), 1 = regression or an
empty metric-key intersection, 2 = unreadable/malformed input.
"""

import argparse
import json
import sys

SCALE_KEYS = ("requests", "tenants", "iterations", "ops", "calls")


def is_throughput(key):
    return key.endswith("_throughput_rps") or key.endswith("_rps")


def is_p99(key):
    return key.endswith("_p99_us") or key.endswith("_p99_cycles")


def load_metrics(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        print(f"bench_diff: {path} has no metrics object", file=sys.stderr)
        sys.exit(2)
    out = {}
    for key, value in metrics.items():
        try:
            out[key] = float(value)
        except (TypeError, ValueError):
            continue
    return doc.get("benchmark", "?"), out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--throughput-tol", type=float, default=0.10,
                    help="max fractional throughput drop (default 0.10)")
    ap.add_argument("--p99-tol", type=float, default=0.20,
                    help="max fractional p99 rise (default 0.20)")
    ap.add_argument("--verbose", action="store_true",
                    help="also print informational (ungated) deltas")
    args = ap.parse_args()

    base_name, base = load_metrics(args.baseline)
    cand_name, cand = load_metrics(args.candidate)
    if base_name != cand_name:
        print(f"bench_diff: comparing different benchmarks "
              f"({base_name} vs {cand_name})", file=sys.stderr)
        sys.exit(2)

    common = sorted(set(base) & set(cand))
    if not common:
        # An empty intersection is never a benign skip: it means the
        # baseline predates a metric-key rename (or one side is from a
        # different world entirely), and silently returning 0 here is how
        # a gate rots into a no-op. Name the keys on both sides so the
        # rename is obvious from the failure message alone.
        print(f"bench_diff: {base_name}: no common metric keys — the gate "
              "would compare nothing, failing hard instead.",
              file=sys.stderr)
        print(f"  baseline keys:  {', '.join(sorted(base)) or '(none)'}",
              file=sys.stderr)
        print(f"  candidate keys: {', '.join(sorted(cand)) or '(none)'}",
              file=sys.stderr)
        print("  (did a metric or scale key get renamed without "
              "re-baselining?)", file=sys.stderr)
        return 1

    for key in SCALE_KEYS:
        if key in base and key in cand and base[key] != cand[key]:
            print(f"bench_diff: {base_name}: scale key '{key}' differs "
                  f"({base[key]:g} vs {cand[key]:g}) — runs are not "
                  "comparable, skipping the gate")
            return 0

    failures = []
    gated = 0
    for key in common:
        b, c = base[key], cand[key]
        if is_throughput(key):
            gated += 1
            if b > 0 and c < b * (1.0 - args.throughput_tol):
                failures.append(
                    f"  FAIL {key}: {c:g} vs baseline {b:g} "
                    f"({(c / b - 1.0) * 100:+.1f}%, tolerance "
                    f"-{args.throughput_tol * 100:.0f}%)")
            elif args.verbose:
                delta = (c / b - 1.0) * 100 if b else 0.0
                print(f"  ok   {key}: {c:g} vs {b:g} ({delta:+.1f}%)")
        elif is_p99(key):
            gated += 1
            if b > 0 and c > b * (1.0 + args.p99_tol):
                failures.append(
                    f"  FAIL {key}: {c:g} vs baseline {b:g} "
                    f"({(c / b - 1.0) * 100:+.1f}%, tolerance "
                    f"+{args.p99_tol * 100:.0f}%)")
            elif args.verbose:
                delta = (c / b - 1.0) * 100 if b else 0.0
                print(f"  ok   {key}: {c:g} vs {b:g} ({delta:+.1f}%)")
        elif args.verbose and b != c:
            delta = (c / b - 1.0) * 100 if b else float("inf")
            print(f"  info {key}: {c:g} vs {b:g} ({delta:+.1f}%)")

    if failures:
        print(f"bench_diff: {base_name}: {len(failures)} regression(s) "
              f"past tolerance ({gated} gated metrics):")
        print("\n".join(failures))
        return 1
    print(f"bench_diff: {base_name}: OK — {gated} gated metrics within "
          f"bands (-{args.throughput_tol * 100:.0f}% throughput / "
          f"+{args.p99_tol * 100:.0f}% p99), {len(common)} compared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
