#!/usr/bin/env python3
"""Merge the per-binary stress JSON reports into one BENCH_stress.json.

Each stress binary (bench/stress_*.cc) writes its own JsonReport with a
scenario-local metric namespace. This tool merges them into a single
report whose metric keys carry a scenario prefix (epc_, gc_, serde_,
tcs_, storm_) so `tools/bench_diff.py` can gate the whole suite against
one checked-in baseline.

Two conventions matter for the gate:

  * The merged report carries ONE unprefixed scale key, "iterations",
    taken from the smallest per-binary scale metric. bench_diff's
    SCALE_KEYS are exact-name matches, so smoke-vs-full comparisons skip
    benignly while smoke-vs-smoke (the CI path) compares exactly.
  * Per-binary scale keys ("requests"/"iterations") are NOT forwarded
    under their prefixed names — prefixing would turn them into gated-
    looking ordinary metrics while un-prefixed duplicates would collide.

Usage:
  tools/stress_report.py --out BENCH_stress.json \
      epc=/tmp/stress_epc.json gc=/tmp/stress_gc.json ...

Exit codes: 0 merged; 1 bad arguments or malformed input.
"""
import argparse
import json
import sys

SCALE_KEYS = ("requests", "tenants", "iterations", "ops", "calls")


def merge(inputs):
    merged = {"benchmark": "stress", "tables": {}, "metrics": {}}
    scales = []
    for prefix, path in inputs:
        try:
            with open(path) as f:
                rep = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"stress_report: cannot read {path}: {e}", file=sys.stderr)
            return None
        metrics = rep.get("metrics", {})
        if not metrics:
            print(f"stress_report: {path} has no metrics", file=sys.stderr)
            return None
        for key, val in metrics.items():
            if key in SCALE_KEYS:
                scales.append(val)
                continue
            merged["metrics"][f"{prefix}_{key}"] = val
        for name, table in rep.get("tables", {}).items():
            merged["tables"][f"{prefix}_{name}"] = table
    # One shared scale key: any cross-scale comparison (smoke vs full)
    # must skip, so the smallest scale stands in for the whole suite.
    merged["metrics"]["iterations"] = min(scales) if scales else 0
    return merged


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", required=True, help="merged report path")
    ap.add_argument("inputs", nargs="+", metavar="prefix=path",
                    help="scenario prefix and per-binary JSON path")
    args = ap.parse_args(argv)

    inputs = []
    for spec in args.inputs:
        prefix, sep, path = spec.partition("=")
        if not sep or not prefix or not path:
            print(f"stress_report: bad input spec {spec!r} "
                  "(want prefix=path)", file=sys.stderr)
            return 1
        inputs.append((prefix, path))

    merged = merge(inputs)
    if merged is None:
        return 1
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"stress_report: merged {len(inputs)} reports, "
          f"{len(merged['metrics'])} metrics -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
