// Tests for the serving layer (DESIGN.md §8): TCS pool semantics under
// concurrent callers, switchless worker rings and their honesty contract,
// per-task bridge call contexts, the multi-tenant request server, and —
// the property the subsystem exists to demonstrate — GC pause
// independence across tenant isolates under concurrent load.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/illustrative/bank.h"
#include "core/multi_app.h"
#include "sched/scheduler.h"
#include "server/harness.h"
#include "server/server.h"
#include "sgx/bridge.h"
#include "sgx/enclave.h"
#include "sgx/tcs.h"
#include "support/error.h"

namespace msv {
namespace {

using sgx::CallId;
using sgx::TcsConfig;
using sgx::TransitionBridge;

Sha256::Digest test_measurement() { return Sha256::hash("trusted-image"); }

std::unique_ptr<sgx::Enclave> make_enclave(Env& env, TcsConfig tcs = {}) {
  auto e = std::make_unique<sgx::Enclave>(env, "test", test_measurement(),
                                          /*image_bytes=*/1 << 20,
                                          4ull << 30, 8ull << 20, tcs);
  e->init(test_measurement());
  return e;
}

// ---- TCS pool --------------------------------------------------------------

// Runs `tasks` concurrent ecalls whose handler holds its TCS for
// `hold_cycles` of simulated time, and returns the bridge stats.
sgx::BridgeStats run_contended_ecalls(std::uint32_t slots,
                                      std::uint32_t tasks,
                                      Cycles hold_cycles) {
  Env env;
  auto enclave = make_enclave(env, TcsConfig{slots,
                                             TcsConfig::OnExhaustion::kBlock});
  TransitionBridge bridge(env, *enclave);
  sched::Scheduler sched(env);
  bridge.attach_scheduler(sched);
  const CallId id = bridge.register_ecall("work", [&](ByteReader&) {
    sched.sleep_for(hold_cycles);  // TCS held across the whole ecall
    return ByteBuffer();
  });
  for (std::uint32_t t = 0; t < tasks; ++t) {
    sched.spawn("caller", [&, id] {
      ByteBuffer req, resp;
      bridge.ecall(id, req, resp);
    });
  }
  sched.run();
  return bridge.stats();
}

TEST(TcsPool, FewerSlotsThanTasksProducesQueueingDelay) {
  const auto stats = run_contended_ecalls(/*slots=*/1, /*tasks=*/4,
                                          /*hold_cycles=*/10'000);
  EXPECT_EQ(stats.ecalls, 4u);
  EXPECT_EQ(stats.tcs_waits, 3u) << "three callers queued behind slot 0";
  EXPECT_GT(stats.tcs_wait_cycles, 0u);
}

TEST(TcsPool, EnoughSlotsMeansNoQueueing) {
  const auto stats = run_contended_ecalls(/*slots=*/4, /*tasks=*/4,
                                          /*hold_cycles=*/10'000);
  EXPECT_EQ(stats.ecalls, 4u);
  EXPECT_EQ(stats.tcs_waits, 0u);
  EXPECT_EQ(stats.tcs_wait_cycles, 0u)
      << "a free slot costs zero cycles (seed cycle-exactness)";
}

TEST(TcsPool, FailPolicyThrowsOutOfTcs) {
  Env env;
  auto enclave =
      make_enclave(env, TcsConfig{1, TcsConfig::OnExhaustion::kFail});
  TransitionBridge bridge(env, *enclave);
  sched::Scheduler sched(env);
  bridge.attach_scheduler(sched);
  const CallId id = bridge.register_ecall("work", [&](ByteReader&) {
    sched.sleep_for(1'000);
    return ByteBuffer();
  });
  int failures = 0;
  for (int t = 0; t < 3; ++t) {
    sched.spawn("caller", [&, id] {
      ByteBuffer req, resp;
      try {
        bridge.ecall(id, req, resp);
      } catch (const sgx::OutOfTcsError&) {
        ++failures;
      }
    });
  }
  sched.run();
  EXPECT_EQ(failures, 2) << "SGX_ERROR_OUT_OF_TCS for callers 2 and 3";
  EXPECT_EQ(bridge.stats().out_of_tcs_errors, 2u);
  EXPECT_EQ(bridge.stats().ecalls, 1u);
}

TEST(TcsPool, NestedOcallKeepsTheTcs) {
  // An ocall from inside an ecall re-enters through the *same* TCS: with
  // one slot, a second caller stays queued across the nested ocall.
  Env env;
  auto enclave =
      make_enclave(env, TcsConfig{1, TcsConfig::OnExhaustion::kBlock});
  TransitionBridge bridge(env, *enclave);
  sched::Scheduler sched(env);
  bridge.attach_scheduler(sched);
  std::uint32_t max_in_use = 0;
  const CallId host = bridge.register_ocall("host", [&](ByteReader&) {
    max_in_use = std::max(max_in_use, enclave->tcs().in_use());
    sched.sleep_for(5'000);
    return ByteBuffer();
  });
  const CallId enter = bridge.register_ecall("enter", [&](ByteReader&) {
    ByteBuffer req, resp;
    bridge.ocall(host, req, resp);
    return ByteBuffer();
  });
  for (int t = 0; t < 2; ++t) {
    sched.spawn("caller", [&, enter] {
      ByteBuffer req, resp;
      bridge.ecall(enter, req, resp);
    });
  }
  sched.run();
  EXPECT_EQ(max_in_use, 1u) << "the ocall did not release the TCS";
  EXPECT_EQ(bridge.stats().tcs_waits, 1u);
}

TEST(TcsPool, QueueDrainsFifoAcrossNestedOcallWindow) {
  // Callers that queued while the lone TCS holder sat in a nested ocall
  // must be granted in arrival order once the ecall finally returns, and
  // each waiter's full queued window (arrival -> grant claim) must land
  // in tcs_wait_cycles — the drain happening "under" an ocall window is
  // exactly where the pre-fix pool mis-handled unclaimed grants.
  Env env;
  auto enclave =
      make_enclave(env, TcsConfig{1, TcsConfig::OnExhaustion::kBlock});
  TransitionBridge bridge(env, *enclave);
  sched::Scheduler sched(env);
  bridge.attach_scheduler(sched);
  const CallId host = bridge.register_ocall("host", [&](ByteReader&) {
    sched.sleep_for(10'000);  // the TCS stays held across this window
    return ByteBuffer();
  });
  const CallId enter = bridge.register_ecall("enter", [&](ByteReader&) {
    ByteBuffer req, resp;
    bridge.ocall(host, req, resp);
    return ByteBuffer();
  });
  const CallId quick = bridge.register_ecall("quick", [&](ByteReader&) {
    return ByteBuffer();
  });
  std::vector<int> completion_order;
  sched.spawn("holder", [&, enter] {
    ByteBuffer req, resp;
    bridge.ecall(enter, req, resp);
    completion_order.push_back(0);
  });
  for (int t = 1; t <= 3; ++t) {
    sched.spawn("waiter", [&, quick, t] {
      sched.sleep_for(static_cast<Cycles>(t));  // arrival order 1, 2, 3
      ByteBuffer req, resp;
      bridge.ecall(quick, req, resp);
      completion_order.push_back(t);
    });
  }
  sched.run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2, 3}))
      << "grants must drain the queue in arrival order";
  EXPECT_EQ(bridge.stats().tcs_waits, 3u);
  // Every waiter queued from its arrival (t=1,2,3) until the holder's
  // ecall released the slot after the 10k-cycle nested ocall; the three
  // windows overlap almost entirely, so the total is strictly more than
  // 3x the ocall window alone would suggest for one waiter.
  EXPECT_GT(bridge.stats().tcs_wait_cycles, 3u * 10'000u);
}

// ---- Per-task call contexts ------------------------------------------------

TEST(BridgeConcurrency, SideStacksArePerTask) {
  Env env;
  auto enclave = make_enclave(env, TcsConfig{8, {}});
  TransitionBridge bridge(env, *enclave);
  sched::Scheduler sched(env);
  bridge.attach_scheduler(sched);
  bool observed_trusted_inside = false;
  bool observed_untrusted_outside = false;
  const CallId nap = bridge.register_ecall("nap", [&](ByteReader&) {
    EXPECT_EQ(bridge.side(), Side::kTrusted);
    sched.sleep_for(10'000);  // suspend *inside* the handler
    observed_trusted_inside = bridge.side() == Side::kTrusted;
    return ByteBuffer();
  });
  sched.spawn("inside", [&, nap] {
    ByteBuffer req, resp;
    bridge.ecall(nap, req, resp);
  });
  sched.spawn("outside", [&] {
    sched.sleep_for(1'000);  // while "inside" sits in the handler
    observed_untrusted_outside = bridge.side() == Side::kUntrusted;
  });
  sched.run();
  EXPECT_TRUE(observed_trusted_inside);
  EXPECT_TRUE(observed_untrusted_outside)
      << "task B's side stack is independent of task A's ecall depth";
  EXPECT_EQ(bridge.side(), Side::kUntrusted) << "main context untouched";
}

// ---- Switchless rings ------------------------------------------------------

// One switchless call made from a task, either inline (workers stopped)
// or through the ring. Returns the cycle cost of the call.
Cycles switchless_call_cost(bool via_ring,
                            sgx::SwitchlessConfig::WakePolicy policy) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  sched::Scheduler sched(env);
  bridge.attach_scheduler(sched);
  const CallId id = bridge.register_ecall("f", [&](ByteReader& r) {
    ByteBuffer out;
    out.put_u32(r.get_u32() + 1);
    return out;
  });
  bridge.set_switchless(id, true);
  if (via_ring) {
    sgx::SwitchlessConfig ring;
    ring.policy = policy;
    bridge.start_switchless_workers(ring, ring);
  }
  Cycles cost = 0;
  sched.spawn("caller", [&, id] {
    ByteBuffer req, resp;
    req.put_u32(41);
    const Cycles t0 = env.clock.now();
    bridge.ecall(id, req, resp);
    cost = env.clock.now() - t0;
    EXPECT_EQ(ByteReader(resp).get_u32(), 42u);
  });
  sched.run();
  if (via_ring) bridge.stop_switchless_workers();
  return cost;
}

TEST(SwitchlessRing, SingleCallerCycleEquivalentToInlinePath) {
  const Cycles inline_cost = switchless_call_cost(
      false, sgx::SwitchlessConfig::WakePolicy::kBusyWait);
  const Cycles ring_cost = switchless_call_cost(
      true, sgx::SwitchlessConfig::WakePolicy::kBusyWait);
  EXPECT_EQ(ring_cost, inline_cost)
      << "the ring path must not invent or hide cycles (honesty contract)";
}

TEST(SwitchlessRing, SleepWakePolicyChargesExactlyPerWakeup) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  sched::Scheduler sched(env);
  bridge.attach_scheduler(sched);
  const CallId id =
      bridge.register_ecall("f", [](ByteReader&) { return ByteBuffer(); });
  bridge.set_switchless(id, true);
  sgx::SwitchlessConfig ring;
  ring.policy = sgx::SwitchlessConfig::WakePolicy::kSleepWake;
  bridge.start_switchless_workers(ring, ring);
  constexpr int kCalls = 5;
  sched.spawn("caller", [&, id] {
    for (int i = 0; i < kCalls; ++i) {
      ByteBuffer req, resp;
      bridge.ecall(id, req, resp);
    }
  });
  sched.run();
  bridge.stop_switchless_workers();
  const auto stats = bridge.stats();
  EXPECT_EQ(stats.switchless_enqueued, kCalls);
  EXPECT_EQ(stats.switchless_wake_charge_cycles,
            stats.switchless_worker_wakeups * env.cost.switchless_wake_cycles);
  EXPECT_GE(stats.switchless_worker_wakeups, static_cast<std::uint64_t>(1));
  EXPECT_EQ(stats.switchless_idle_spin_cycles, 0u)
      << "a sleeping worker burns no core";
}

TEST(SwitchlessRing, BusyWaitAttributesIdleSpinWithoutCharging) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  sched::Scheduler sched(env);
  bridge.attach_scheduler(sched);
  const CallId id =
      bridge.register_ecall("f", [](ByteReader&) { return ByteBuffer(); });
  bridge.set_switchless(id, true);
  bridge.start_switchless_workers({}, {});  // default: busy-wait
  sched.spawn("caller", [&, id] {
    sched.sleep_for(50'000);  // the worker spins idle through this window
    ByteBuffer req, resp;
    bridge.ecall(id, req, resp);
  });
  sched.run();
  bridge.stop_switchless_workers();
  const auto stats = bridge.stats();
  EXPECT_GE(stats.switchless_idle_spin_cycles, 50'000u)
      << "idle spin is attributed to the dedicated worker core";
  EXPECT_EQ(stats.switchless_wake_charge_cycles, 0u)
      << "but never charged to the serving timeline";
}

// ---- Request server --------------------------------------------------------

struct ServerRig {
  explicit ServerRig(std::uint32_t tenants, server::ServerConfig cfg = {},
                     core::AppConfig app_cfg = {})
      : app(apps::build_bank_app(), tenants, app_cfg),
        sched(app.env()),
        srv(sched, app, cfg) {}

  // Declaration order is the documented destruction contract: the server
  // stops (and the scheduler cancels) before the app's bridge dies.
  core::MultiIsolateApp app;
  sched::Scheduler sched;
  server::RequestServer srv;
};

TEST(RequestServer, ServesTenantsToTheirOwnIsolates) {
  ServerRig rig(3);
  server::LoadHarness harness(rig.srv);
  server::ClosedLoopSpec spec;
  spec.clients_per_tenant = 2;
  spec.requests_per_client = 10;
  const auto rep = harness.run_closed_loop(spec);
  EXPECT_EQ(rep.completed, 3u * 2u * 10u);
  EXPECT_EQ(rep.shed, 0u);
  for (const auto& tr : rep.tenants) {
    EXPECT_EQ(tr.stats.completed, 20u);
    EXPECT_GT(tr.latency.p50_us, 0.0);
  }
  rig.srv.stop();
}

TEST(RequestServer, ShedsWhenQueueFull) {
  server::ServerConfig cfg;
  cfg.max_queue_depth = 4;
  cfg.shed_on_full = true;
  ServerRig rig(1, cfg);
  rig.srv.start();
  // Burst from the main context: the single worker never runs between
  // submissions, so everything beyond the queue bound sheds.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (rig.srv.submit(0, server::Request{})) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rig.srv.tenant_stats(0).shed, 6u);
  rig.sched.run();  // drain? workers are daemons; run returns immediately
  rig.srv.stop();   // stop() drains the queued four
  EXPECT_EQ(rig.srv.tenant_stats(0).completed, 4u);
}

TEST(RequestServer, TcsStarvationVisibleInBridgeStats) {
  // 4 tenants hammering a 1-slot enclave queue on the TCS; with 8 slots
  // the same load shows zero wait. (Acceptance criterion of ISSUE 2.)
  auto run = [](std::uint32_t slots) {
    core::AppConfig app_cfg;
    app_cfg.tcs = sgx::TcsConfig{slots, {}};
    server::ServerConfig cfg;
    cfg.shed_on_full = false;
    cfg.max_queue_depth = 256;
    ServerRig rig(4, cfg, app_cfg);
    server::LoadHarness harness(rig.srv);
    server::OpenLoopSpec spec;
    spec.requests_per_tenant = 25;
    spec.mean_interarrival_cycles = 1'000;  // far below service time
    harness.run_open_loop(spec);
    const auto stats = rig.app.bridge().stats();
    rig.srv.stop();
    return std::pair(stats.tcs_waits, stats.tcs_wait_cycles);
  };
  const auto starved = run(1);
  EXPECT_GT(starved.first, 0u);
  EXPECT_GT(starved.second, 0u);
  const auto roomy = run(8);
  EXPECT_EQ(roomy.first, 0u);
  EXPECT_EQ(roomy.second, 0u);
}

TEST(RequestServer, GcPausesOnlyItsOwnTenant) {
  // Satellite (c): a GC in tenant 0's isolate under concurrent load must
  // not pause tenant 1's request processing. Single-run assertions: the
  // pause is real for tenant 0 (gate waits observed), invisible to tenant
  // 1 (zero gate waits), and tenant 1 keeps completing requests *inside*
  // tenant 0's pause windows.
  server::ServerConfig cfg;
  cfg.shed_on_full = false;
  cfg.max_queue_depth = 256;
  ServerRig rig(2, cfg);
  server::LoadHarness harness(rig.srv);
  server::OpenLoopSpec spec;
  spec.requests_per_tenant = 60;
  spec.mean_interarrival_cycles = 20'000;
  spec.gc_every = 20;
  spec.gc_tenant = 0;
  harness.run_open_loop(spec);

  const auto& t0 = rig.srv.tenant_stats(0);
  const auto& t1 = rig.srv.tenant_stats(1);
  ASSERT_GT(t0.gc_runs, 0u);
  EXPECT_GT(t0.gc_pause_cycles, 0u);
  EXPECT_EQ(t1.gc_gate_wait_cycles, 0u)
      << "tenant 1 never waits on tenant 0's collector";
  EXPECT_EQ(t1.gc_runs, 0u);
  EXPECT_EQ(t0.completed, 60u);
  EXPECT_EQ(t1.completed, 60u);

  // Tenant 1 made progress during at least one of tenant 0's pauses.
  const auto& windows = rig.srv.gc_windows(0);
  ASSERT_FALSE(windows.empty());
  bool progressed_during_pause = false;
  for (const Cycles done : rig.srv.completion_times(1)) {
    for (const auto& [start, end] : windows) {
      if (done > start && done < end) progressed_during_pause = true;
    }
  }
  EXPECT_TRUE(progressed_during_pause)
      << "tenant 1 completed requests inside tenant 0's GC pause window";
  rig.srv.stop();
}

TEST(RequestServer, OpenLoopIsDeterministic) {
  auto run = [] {
    ServerRig rig(3);
    server::LoadHarness harness(rig.srv);
    server::OpenLoopSpec spec;
    spec.requests_per_tenant = 40;
    spec.mean_interarrival_cycles = 50'000;
    spec.gc_every = 15;
    const auto rep = harness.run_open_loop(spec);
    rig.srv.stop();
    return rep;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.final_clock, b.final_clock);
  EXPECT_EQ(a.latency_cycle_sum, b.latency_cycle_sum);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].latency_cycle_sum, b.tenants[t].latency_cycle_sum);
    EXPECT_EQ(a.tenants[t].stats.completed, b.tenants[t].stats.completed);
  }
}

TEST(RequestServer, SwitchlessModeServesThroughRings) {
  server::ServerConfig cfg;
  cfg.switchless = true;
  ServerRig rig(2, cfg);
  server::LoadHarness harness(rig.srv);
  server::ClosedLoopSpec spec;
  spec.clients_per_tenant = 2;
  spec.requests_per_client = 5;
  const auto rep = harness.run_closed_loop(spec);
  EXPECT_EQ(rep.completed, 2u * 2u * 5u);
  const auto stats = rig.app.bridge().stats();
  EXPECT_GT(stats.switchless_enqueued, 0u)
      << "relay transitions went through the worker rings";
  rig.srv.stop();
}

}  // namespace
}  // namespace msv
