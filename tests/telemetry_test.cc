// Tests for the unified telemetry layer (DESIGN.md §10): histogram
// quantile math, registry/adapter round-trips, span stacks and trace
// context, bounded-buffer drop accounting, RMI span nesting through a
// partitioned app, and the byte-identical-trace determinism contract.
#include <gtest/gtest.h>

#include <string>

#include "apps/illustrative/bank.h"
#include "apps/synthetic/generator.h"
#include "core/montsalvat.h"
#include "core/multi_app.h"
#include "sched/scheduler.h"
#include "server/server.h"
#include "sgx/bridge.h"
#include "sgx/epc.h"
#include "sim/env.h"
#include "telemetry/adapters.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace msv {
namespace {

using telemetry::Category;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::TraceConfig;
using telemetry::TraceMode;
using telemetry::Tracer;

// ---- Histogram -------------------------------------------------------------

TEST(TelemetryHistogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::bucket_index(v)), v);
  }
}

TEST(TelemetryHistogram, BucketBoundsAreMonotonic) {
  std::uint64_t prev = 0;
  for (std::size_t i = 1; i < 200; ++i) {
    const std::uint64_t bound = Histogram::bucket_upper_bound(i);
    EXPECT_GT(bound, prev) << "bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(bound), i)
        << "upper bound must map back to its own bucket";
    prev = bound;
  }
}

TEST(TelemetryHistogram, QuantilesWithinLogBucketError) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // Log-bucketed with 8 sub-buckets per octave: relative error <= 12.5%.
  for (const auto& [q, exact] : {std::pair<double, double>{0.5, 500.0},
                                {0.9, 900.0},
                                {0.99, 990.0}}) {
    const auto est = static_cast<double>(h.quantile(q));
    EXPECT_GE(est, exact * 0.999) << "q=" << q;
    EXPECT_LE(est, exact * 1.125 + 1) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), 1000u) << "clamped to recorded max";
}

TEST(TelemetryHistogram, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

// ---- Registry --------------------------------------------------------------

TEST(TelemetryRegistry, HandlesAreStableAndKeyed) {
  MetricsRegistry m;
  telemetry::Counter& a = m.counter("hits", {{"side", "t"}});
  telemetry::Counter& b = m.counter("hits", {{"side", "u"}});
  a.add(3);
  b.add(5);
  EXPECT_EQ(m.counter("hits", {{"side", "t"}}).value, 3u)
      << "same name+labels resolves the same handle";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find("hits", {{"side", "u"}})->counter.value, 5u);
  EXPECT_EQ(m.find("miss"), nullptr);
}

TEST(TelemetryRegistry, LabelOrderDoesNotMatter) {
  MetricsRegistry m;
  m.counter("x", {{"b", "2"}, {"a", "1"}}).add(7);
  EXPECT_EQ(m.counter("x", {{"a", "1"}, {"b", "2"}}).value, 7u);
  EXPECT_EQ(telemetry::render_metric_key("x", {{"b", "2"}, {"a", "1"}}),
            "x{a=\"1\",b=\"2\"}");
}

// ---- Adapters --------------------------------------------------------------

TEST(TelemetryAdapters, BridgeStatsRoundTrip) {
  sgx::BridgeStats s;
  s.ecalls = 11;
  s.ocalls = 4;
  s.switchless_calls = 2;
  s.bytes_in = 100;
  s.bytes_out = 50;
  sgx::CallStats call;
  call.calls = 11;
  call.bytes_in = 90;
  call.bytes_out = 45;
  call.transition_cycles = 150'700;
  s.per_call["ecall_relay_Worker_set"] = call;

  MetricsRegistry m;
  telemetry::publish_bridge(m, s);
  EXPECT_EQ(m.find("msv_bridge_ecalls")->counter.value, 11u);
  EXPECT_EQ(m.find("msv_bridge_ocalls")->counter.value, 4u);
  const telemetry::LabelSet labels = {{"call", "ecall_relay_Worker_set"}};
  EXPECT_EQ(m.find("msv_bridge_call_count", labels)->counter.value, 11u);
  EXPECT_EQ(m.find("msv_bridge_call_transition_cycles", labels)->counter.value,
            150'700u);

  const std::string text = telemetry::prometheus_text(m);
  EXPECT_NE(text.find("# TYPE msv_bridge_ecalls counter"), std::string::npos);
  EXPECT_NE(text.find("msv_bridge_call_count{call=\"ecall_relay_Worker_set\"}"
                      " 11"),
            std::string::npos);
}

TEST(TelemetryAdapters, EpcStatsRoundTrip) {
  sgx::EpcStats s;
  s.accesses = 3;
  s.faults = 2;
  s.evictions = 1;
  MetricsRegistry m;
  telemetry::publish_epc(m, s);
  EXPECT_EQ(m.find("msv_epc_accesses")->counter.value, 3u);
  EXPECT_EQ(m.find("msv_epc_faults")->counter.value, 2u);
  EXPECT_EQ(m.find("msv_epc_evictions")->counter.value, 1u);
}

TEST(TelemetryAdapters, ServerStatsRoundTrip) {
  server::ServerStats s;
  s.accepted = 20;
  s.shed = 3;
  s.completed = 17;
  MetricsRegistry m;
  telemetry::publish_server(m, s);
  EXPECT_EQ(m.find("msv_server_accepted")->counter.value, 20u);
  EXPECT_EQ(m.find("msv_server_shed")->counter.value, 3u);
  EXPECT_EQ(m.find("msv_server_completed")->counter.value, 17u);

  server::TenantStats t;
  t.completed = 9;
  telemetry::publish_tenant(m, t, 4);
  EXPECT_EQ(
      m.find("msv_server_tenant_completed", {{"tenant", "4"}})->counter.value,
      9u);
}

// ---- Tracer ----------------------------------------------------------------

TEST(TelemetryTracer, SpansNestAndCarryTraceContext) {
  VirtualClock clock;
  Tracer tracer(clock);
  tracer.configure(TraceMode::kFull, telemetry::kAllCategories, 1024);
  const std::uint32_t outer = tracer.intern("outer");
  const std::uint32_t inner = tracer.intern("inner");

  tracer.begin_span(Category::kRmi, outer);
  const telemetry::TraceContext root_ctx = tracer.current_context();
  tracer.begin_span(Category::kBridge, inner);
  const telemetry::TraceContext inner_ctx = tracer.current_context();
  tracer.end_span();
  tracer.end_span();

  ASSERT_EQ(tracer.spans().size(), 2u);
  const telemetry::SpanRecord& o = tracer.spans()[0];
  const telemetry::SpanRecord& i = tracer.spans()[1];
  EXPECT_EQ(o.parent_id, 0u) << "root span";
  EXPECT_EQ(o.trace_id, o.span_id) << "root span starts its own trace";
  EXPECT_EQ(i.parent_id, o.span_id);
  EXPECT_EQ(i.trace_id, o.trace_id);
  EXPECT_EQ(root_ctx.span_id, o.span_id);
  EXPECT_EQ(inner_ctx.span_id, i.span_id);
  EXPECT_FALSE(o.open);
  EXPECT_FALSE(i.open);
}

TEST(TelemetryTracer, AdoptedAndDetachedSpansLinkAcrossStacks) {
  VirtualClock clock;
  Tracer tracer(clock);
  tracer.configure(TraceMode::kFull, telemetry::kAllCategories, 1024);
  const std::uint32_t req = tracer.intern("request");
  const std::uint32_t handle = tracer.intern("handle");

  // A submitter opens a detached request span; a worker later adopts it.
  const Tracer::DetachedSpan d =
      tracer.begin_detached(Category::kServer, req, /*tenant=*/3);
  ASSERT_TRUE(d.valid());
  {
    telemetry::AdoptedSpanScope scope(tracer, d.ctx, Category::kServer,
                                      handle, 3);
  }
  tracer.end_detached(d);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const telemetry::SpanRecord& r = tracer.spans()[0];
  const telemetry::SpanRecord& h = tracer.spans()[1];
  EXPECT_EQ(h.parent_id, r.span_id);
  EXPECT_EQ(h.trace_id, r.trace_id);
  EXPECT_EQ(r.tenant, 3);
  EXPECT_FALSE(r.open) << "end_detached closed the record";
}

TEST(TelemetryTracer, DisabledCategoryRecordsNothing) {
  VirtualClock clock;
  Tracer tracer(clock);
  tracer.configure(TraceMode::kFull, telemetry::mask_of(Category::kGc), 1024);
  EXPECT_FALSE(tracer.enabled(Category::kEpc));
  {
    telemetry::SpanScope scope(tracer, Category::kEpc, tracer.intern("x"));
  }
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.started(), 0u);
}

TEST(TelemetryTracer, BoundedBufferCountsDropsAndKeepsStacksBalanced) {
  VirtualClock clock;
  Tracer tracer(clock);
  tracer.configure(TraceMode::kFull, telemetry::kAllCategories,
                   /*max_spans=*/4);
  const std::uint32_t name = tracer.intern("n");
  for (int i = 0; i < 10; ++i) {
    tracer.begin_span(Category::kSched, name);
    tracer.end_span();
  }
  EXPECT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.started(), 10u);

  // Dropped records still allocate span ids, so nested context survives a
  // full buffer: a child opened over a dropped parent keeps the trace id.
  tracer.begin_span(Category::kSched, name);  // dropped (buffer full)
  const telemetry::TraceContext parent_ctx = tracer.current_context();
  EXPECT_NE(parent_ctx.span_id, 0u);
  tracer.begin_span(Category::kSched, name);  // dropped too
  EXPECT_EQ(tracer.current_context().trace_id, parent_ctx.trace_id);
  tracer.end_span();
  tracer.end_span();
  EXPECT_EQ(tracer.current_context().span_id, 0u) << "stack drained";

  // The drop counters surface in the tracer's own metrics.
  MetricsRegistry m;
  telemetry::publish_tracer_self(m, tracer);
  EXPECT_EQ(m.find("msv_telemetry_spans_dropped")->counter.value, 8u);
  EXPECT_EQ(m.find("msv_telemetry_spans_recorded")->counter.value, 4u);
}

// ---- RMI span nesting through a partitioned app ----------------------------

TEST(TelemetryRmi, InvocationRendersAsOneCausalTree) {
  core::AppConfig cfg;
  cfg.trace.mode = TraceMode::kFull;
  core::PartitionedApp app(apps::synthetic::build_micro_app(), cfg);
  auto& u = app.untrusted_context();
  const rt::Value w = u.construct("Worker", {});
  u.invoke(w.as_ref(), "set", {rt::Value(std::int32_t{42})});

  const Tracer& tracer = app.env().telemetry.tracer();
  const auto find = [&](const std::string& name, std::uint64_t trace)
      -> const telemetry::SpanRecord* {
    for (const auto& s : tracer.spans()) {
      if (s.open || tracer.name(s.name) != name) continue;
      if (trace != 0 && s.trace_id != trace) continue;
      return &s;
    }
    return nullptr;
  };
  const auto* invoke = find("rmi.invoke ecall_relay_Worker_set", 0);
  ASSERT_NE(invoke, nullptr) << "caller-side invoke span";
  const auto* transition = find("ecall_relay_Worker_set", invoke->trace_id);
  const auto* dispatch = find("rmi.dispatch", invoke->trace_id);
  ASSERT_NE(transition, nullptr) << "bridge transition span";
  ASSERT_NE(dispatch, nullptr) << "callee-side dispatch span";
  EXPECT_EQ(transition->parent_id, invoke->span_id);
  EXPECT_EQ(dispatch->parent_id, transition->span_id);
  EXPECT_EQ(invoke->trace_id, dispatch->trace_id)
      << "one trace across caller, bridge and callee";
  EXPECT_EQ(transition->category, Category::kRmi)
      << "relay transitions classify as rmi via the call-prefix registry";
}

// ---- Determinism: byte-identical traces over a serving run -----------------

std::string traced_server_run(std::string* ascii_out) {
  core::AppConfig cfg;
  cfg.trace.mode = TraceMode::kFull;
  core::MultiIsolateApp app(apps::build_bank_app(), /*trusted_isolates=*/2,
                            cfg);
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, {});
  srv.start();
  sched.spawn("client", [&] {
    for (int i = 0; i < 3; ++i) {
      srv.submit_and_wait(0, {});
      srv.submit_and_wait(1, {});
    }
    srv.collect_tenant_async(0);
    srv.submit_and_wait(0, {});
  });
  sched.run();
  srv.stop();
  telemetry::Telemetry& tel = app.env().telemetry;
  if (ascii_out != nullptr) {
    // Render one request's causal tree, not the whole run (which would
    // truncate at max_lines before the serving phase even starts).
    const Tracer& tr = tel.tracer();
    std::uint64_t request_trace = 0;
    for (const auto& s : tr.spans()) {
      if (!s.open && tr.name(s.name) == "request") {
        request_trace = s.trace_id;
        break;
      }
    }
    *ascii_out =
        telemetry::ascii_trace(tr, app.env().clock.hz(), request_trace);
  }
  return telemetry::chrome_trace_json(tel.tracer(), app.env().clock.hz());
}

TEST(TelemetryDeterminism, TwoSeededRunsEmitByteIdenticalTraceJson) {
  std::string ascii_a;
  const std::string a = traced_server_run(&ascii_a);
  const std::string b = traced_server_run(nullptr);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "simulated-clock traces must be byte-identical";

  // The acceptance categories all appear, linked by trace context.
  for (const char* needle :
       {"\"cat\":\"server\"", "\"cat\":\"rmi\"", "\"cat\":\"gc\"",
        "\"cat\":\"epc\"", "\"cat\":\"sched\"", "\"name\":\"request\"",
        "\"name\":\"server.handle\"", "\"name\":\"rmi.dispatch\"",
        "\"name\":\"gc.collect\"", "ecall_relay_Account_"}) {
    EXPECT_NE(a.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(ascii_a.find("request"), std::string::npos);
  EXPECT_NE(ascii_a.find("tenant"), std::string::npos);
}

TEST(TelemetryDeterminism, TelemetryOffRecordsNothing) {
  core::MultiIsolateApp app(apps::build_bank_app(), 1);
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, {});
  srv.start();
  sched.spawn("client", [&] { srv.submit_and_wait(0, {}); });
  sched.run();
  srv.stop();
  EXPECT_EQ(app.env().telemetry.tracer().started(), 0u);
  EXPECT_EQ(app.env().telemetry.metrics().size(), 0u);
}

// ---- Prometheus exposition conformance (DESIGN.md §16) ---------------------

TEST(TelemetryExposition, EscapesLabelValuesAndEmitsHelpTypeLines) {
  MetricsRegistry m;
  // Label values exercising all three escapes the exposition format
  // defines: backslash, double quote, newline.
  m.counter("msv_test_total", {{"path", "a\\b"},
                               {"quote", "\"q\""},
                               {"nl", "x\ny"}})
      .add(3);
  const std::string text = telemetry::prometheus_text(m);
  // Golden line: labels sorted by key, values escaped, raw newline gone.
  EXPECT_NE(
      text.find(
          "msv_test_total{nl=\"x\\ny\",path=\"a\\\\b\",quote=\"\\\"q\\\"\"} 3\n"),
      std::string::npos)
      << text;
  // Every family carries # HELP then # TYPE, in that order, before its
  // first sample.
  const std::size_t help = text.find("# HELP msv_test_total ");
  const std::size_t type = text.find("# TYPE msv_test_total counter\n");
  const std::size_t sample = text.find("msv_test_total{");
  ASSERT_NE(help, std::string::npos);
  ASSERT_NE(type, std::string::npos);
  ASSERT_NE(sample, std::string::npos);
  EXPECT_LT(help, type);
  EXPECT_LT(type, sample);
}

TEST(TelemetryExposition, HistogramsRenderSummaryWithSumAndCount) {
  MetricsRegistry m;
  Histogram& h = m.histogram("msv_test_latency");
  for (const std::uint64_t v : {1, 2, 3, 100}) h.record(v);
  const std::string text = telemetry::prometheus_text(m);
  EXPECT_NE(text.find("# TYPE msv_test_latency summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("msv_test_latency{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("msv_test_latency{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("msv_test_latency_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("msv_test_latency_sum 106\n"), std::string::npos);
}

TEST(TelemetryExposition, TraceDropsAreExportedPerCategory) {
  Env env;
  TraceConfig tc;
  tc.mode = TraceMode::kFull;
  tc.max_spans = 2;
  env.telemetry.configure(tc);
  Tracer& tracer = env.telemetry.tracer();
  const std::uint32_t name = tracer.intern("s");
  for (int i = 0; i < 5; ++i) {
    tracer.begin_span(Category::kServer, name);
    tracer.end_span();
  }
  ASSERT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(tracer.dropped_in(Category::kServer), 3u);

  MetricsRegistry m;
  telemetry::publish_tracer_self(m, tracer);
  // Every category is present — zeros included, so "nothing dropped" is
  // distinguishable from "counter missing" — and the breakdown sums to
  // the total (tools/check_trace.py asserts the same on the trace side).
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < telemetry::kCategoryCount; ++c) {
    const char* cat =
        telemetry::category_name(static_cast<Category>(c));
    const auto* e = m.find("msv_trace_dropped", {{"category", cat}});
    ASSERT_NE(e, nullptr) << "missing category " << cat;
    sum += e->counter.value;
  }
  EXPECT_EQ(sum, tracer.dropped());
  const auto* server = m.find("msv_trace_dropped", {{"category", "server"}});
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->counter.value, 3u);
  const std::string text = telemetry::prometheus_text(m);
  EXPECT_NE(
      text.find("# HELP msv_trace_dropped Spans dropped by trace-ring "
                "wrap, by span category\n"),
      std::string::npos);
  EXPECT_NE(text.find("msv_trace_dropped{category=\"server\"} 3\n"),
            std::string::npos);
}

}  // namespace
}  // namespace msv
