// Tests for src/analysis: the bytecode verifier, the msvlint rule suite
// (golden fixtures with exact rule/location per rule ID), the diagnostics
// engine (baseline suppression, JSON), the interpreter's TrapError bounds
// checks and verify gate, and the msvlint driver.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/lint.h"
#include "analysis/verify.h"
#include "apps/illustrative/bank.h"
#include "apps/msvlint/driver.h"
#include "apps/synthetic/generator.h"
#include "core/montsalvat.h"
#include "dsl/parser.h"
#include "support/rng.h"

namespace msv {
namespace {

using analysis::Diagnostic;
using analysis::Severity;
using model::Annotation;
using model::IrBody;
using model::IrBuilder;
using model::Op;
using rt::Value;

// Diagnostics of one rule.
std::vector<Diagnostic> of_rule(const analysis::Report& report,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

// ---- Verifier: malformed-bytecode corpus -----------------------------------
//
// Each body is one the interpreter previously executed as UB (raw pool
// indexing, silent exit on a wild jump); the verifier must reject all of
// them, and the clean corpus must verify with zero findings.

IrBody raw_body(std::vector<model::Instr> code,
                std::vector<Value> consts = {},
                std::vector<std::string> names = {},
                std::uint32_t local_count = 0) {
  IrBody body;
  body.code = std::move(code);
  body.consts = std::move(consts);
  body.names = std::move(names);
  body.local_count = local_count;
  return body;
}

TEST(Verifier, StackUnderflow) {
  const auto errors =
      analysis::verify(raw_body({{Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 0);
  EXPECT_NE(errors[0].message.find("underflow"), std::string::npos);
}

TEST(Verifier, MalformedJumpTarget) {
  const auto errors = analysis::verify(raw_body({{Op::kJump, 99, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 0);
  EXPECT_NE(errors[0].message.find("target"), std::string::npos);
}

TEST(Verifier, ConstantPoolIndexOutOfRange) {
  const auto errors = analysis::verify(
      raw_body({{Op::kConst, 7, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 0);
  EXPECT_NE(errors[0].message.find("constant pool"), std::string::npos);
}

TEST(Verifier, NamePoolIndexOutOfRange) {
  const auto errors = analysis::verify(raw_body(
      {{Op::kNew, 3, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 0);
}

TEST(Verifier, LocalIndexOutOfRange) {
  const auto errors = analysis::verify(raw_body(
      {{Op::kLoadLocal, 5, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("local"), std::string::npos);
}

TEST(Verifier, FieldIndexOutOfRangeOnTypedReceiver) {
  // With model context the verifier proves field bounds on receivers whose
  // class is statically unique.
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kNeutral);
  box.add_field("only");
  auto& m = box.add_method("poke", 0);
  m.body(raw_body({{Op::kLoadLocal, 0, 0},
                   {Op::kGetField, 9, 0},
                   {Op::kPop, 0, 0},
                   {Op::kReturnVoid, 0, 0}},
                  {}, {}, 1));
  analysis::VerifyOptions options;
  options.app = &app;
  options.cls = &app.classes().front();
  options.method = &app.classes().front().methods().front();
  const auto errors = analysis::verify(m.ir(), options);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 1);
  EXPECT_NE(errors[0].message.find("field"), std::string::npos);
}

TEST(Verifier, FallThroughWithoutReturn) {
  const auto errors = analysis::verify(raw_body({{Op::kNop, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("fall"), std::string::npos);
}

TEST(Verifier, InconsistentMergeDepth) {
  // Path A (branch taken) reaches pc 3 with depth 0; path B (fall-through
  // through the extra const) reaches it with depth 1.
  const auto errors = analysis::verify(raw_body({{Op::kConst, 0, 0},
                                                 {Op::kBranchFalse, 3, 0},
                                                 {Op::kConst, 0, 0},
                                                 {Op::kReturnVoid, 0, 0}},
                                                {Value(true)}));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("merge"), std::string::npos);
}

TEST(Verifier, OperandStackOverflow) {
  // A straight-line push sequence exceeds the configured stack limit.
  std::vector<model::Instr> code(12, {Op::kConst, 0, 0});
  code.push_back({Op::kReturnVoid, 0, 0});
  analysis::VerifyOptions options;
  options.max_stack = 8;
  const auto errors =
      analysis::verify(raw_body(std::move(code), {Value(1)}), options);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("overflow"), std::string::npos);
}

TEST(Verifier, NegativeArgumentCount) {
  const auto errors = analysis::verify(raw_body(
      {{Op::kCall, 0, -2}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}},
      {}, {"m"}));
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].pc, 0);
}

// ---- Verifier: the clean corpus verifies -----------------------------------

TEST(Verifier, BankAppVerifies) {
  EXPECT_TRUE(analysis::verify_app(apps::build_bank_app(true)).empty());
}

TEST(Verifier, MicroAppVerifies) {
  EXPECT_TRUE(analysis::verify_app(apps::synthetic::build_micro_app()).empty());
}

TEST(Verifier, SyntheticGeneratorOutputVerifies) {
  for (const double fraction : {0.0, 0.4, 1.0}) {
    apps::synthetic::SyntheticSpec spec;
    spec.n_classes = 20;
    spec.untrusted_fraction = fraction;
    const analysis::Report report =
        analysis::verify_app(apps::synthetic::generate(spec));
    EXPECT_TRUE(report.empty()) << report.to_text();
    EXPECT_GT(report.stats().methods_analyzed, 0u);
  }
}

// Property: every program assembled through IrBuilder's structured API
// (balanced pushes/pops, label-bound jumps, explicit return) verifies.
class VerifierProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifierProperty, RandomBuilderProgramsVerify) {
  Rng rng(GetParam());
  for (int program = 0; program < 20; ++program) {
    IrBuilder ir;
    const std::uint32_t locals = 1 + static_cast<std::uint32_t>(
                                         rng.next_below(4));
    ir.locals(locals);
    int depth = 0;
    const int steps = 1 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < steps; ++i) {
      switch (rng.next_below(6)) {
        case 0:
          ir.const_val(Value(static_cast<std::int32_t>(rng.next_u64() % 100)));
          ++depth;
          break;
        case 1:
          ir.load_local(static_cast<std::int32_t>(rng.next_below(locals)));
          ++depth;
          break;
        case 2:
          if (depth >= 1) {
            ir.store_local(static_cast<std::int32_t>(rng.next_below(locals)));
            --depth;
          }
          break;
        case 3:
          if (depth >= 2) {
            ir.add();
            --depth;
          }
          break;
        case 4:
          if (depth >= 1) {
            ir.dup();
            ++depth;
          }
          break;
        default:
          if (depth >= 1) {
            ir.pop();
            --depth;
          }
          break;
      }
    }
    while (depth > 0) {
      ir.pop();
      --depth;
    }
    ir.ret_void();
    const auto errors = analysis::verify(ir.build());
    EXPECT_TRUE(errors.empty())
        << "seed " << GetParam() << " program " << program << ": "
        << errors.front().message;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- Lint golden fixtures: every rule ID detects its seeded violation ------

model::AppModel parse(const std::string& source) {
  return dsl::parse_program(source);
}

TEST(Lint, Msv001SecretFlowIntoUntrustedCallAndIntrinsic) {
  const auto report = analysis::lint(parse(R"(
    class Secrets @Trusted {
      field pin;
      ctor(v) { this.pin = v; }
      method leak(s) {
        s.store(this.pin);
        @io_write("f", this.pin);
      }
    }
    class Sink @Untrusted {
      field v;
      ctor() { this.v = 0; }
      method store(x) { this.v = x; }
    }
    class Main @Untrusted {
      static method main() {
        sec = new Secrets(1234);
        sink = new Sink();
        sec.leak(sink);
      }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV001");
  ASSERT_EQ(findings.size(), 2u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Secrets");
  EXPECT_EQ(findings[0].method, "leak");
  EXPECT_EQ(findings[0].pc, 3);  // the s.store(...) call
  EXPECT_EQ(findings[1].pc, 8);  // the @io_write intrinsic
  EXPECT_EQ(report.errors(), 2u) << "no other rule should fire";
}

TEST(Lint, Msv002NeutralFieldWrittenTrustedReadUntrusted) {
  const auto report = analysis::lint(parse(R"(
    class Counter {
      field n;
      ctor() { this.n = 0; }
      method bump() { this.n = this.n + 1; }
      method get() { return this.n; }
    }
    class Keeper @Trusted {
      field c;
      ctor() { this.c = new Counter(); }
      method touch() { this.c.bump(); }
    }
    class Main @Untrusted {
      static method main() {
        k = new Keeper();
        c = new Counter();
        c.get();
        k.touch();
      }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV002");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].cls, "Counter");
  EXPECT_EQ(findings[0].method, "bump");
  EXPECT_EQ(findings[0].pc, 5);  // the put_field of `n`
  EXPECT_NE(findings[0].message.find("`n`"), std::string::npos);
}

TEST(Lint, Msv003PrivateConstructorAcrossPartition) {
  // The transformer relays only public methods; a class whose constructor
  // is private gets no construction relay, so a cross-partition `new`
  // fails at run time. DSL constructors are always public, so build the
  // model directly.
  model::AppModel app;
  auto& box = app.add_class("SecretBox", Annotation::kTrusted);
  box.add_constructor(0).set_private().body(IrBuilder().ret_void().build());
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(
      IrBuilder().new_object("SecretBox", 0).pop().ret_void().build());
  app.set_main_class("Main");

  const auto report = analysis::lint(app);
  const auto findings = of_rule(report, "MSV003");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Main");
  EXPECT_EQ(findings[0].method, "main");
  EXPECT_EQ(findings[0].pc, 0);
}

TEST(Lint, Msv003NeutralCodeInstantiatesPartitionedClass) {
  const auto report = analysis::lint(parse(R"(
    class Vaultlet @Trusted {
      method ping() { return 1; }
    }
    class Helper {
      method make() { return new Vaultlet(); }
    }
    class Main @Untrusted {
      static method main() { h = new Helper(); }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV003");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].cls, "Helper");
  EXPECT_EQ(findings[0].method, "make");
  EXPECT_EQ(findings[0].pc, 0);
}

TEST(Lint, Msv004DanglingAndPrivateCrossPartitionHints) {
  model::AppModel app;
  auto& vault = app.add_class("Vault", Annotation::kTrusted);
  vault.add_method("open", 0).set_private().body(
      IrBuilder().ret_void().build());
  auto& driver = app.add_class("Driver", Annotation::kUntrusted);
  driver.add_static_method("go", 0)
      .body_native([](model::NativeCall&) { return Value(); })
      .calls("Ghost", "boo")    // dangling: no such class
      .calls("Vault", "open");  // private across the boundary: never relayed
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  app.set_main_class("Main");

  const auto findings = of_rule(analysis::lint(app), "MSV004");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].cls, "Driver");
  EXPECT_EQ(findings[0].method, "go");
  EXPECT_NE(findings[0].message.find("Ghost.boo"), std::string::npos);
  EXPECT_NE(findings[1].message.find("Vault.open"), std::string::npos);
  EXPECT_NE(findings[1].message.find("private"), std::string::npos);
}

TEST(Lint, Msv004ObservedNativeEdgeMissingFromHints) {
  model::AppModel app;
  auto& store = app.add_class("Store", Annotation::kTrusted);
  store.add_method("put", 0).body(IrBuilder().ret_void().build());
  store.add_method("hidden", 0).body(
      IrBuilder().const_val(Value(std::int32_t{1})).ret().build());
  auto& driver = app.add_class("Driver", Annotation::kUntrusted);
  driver.add_static_method("go", 0)
      .body_native([](model::NativeCall&) { return Value(); })
      .calls("Store", "put");  // hidden() is invoked but never declared
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  app.set_main_class("Main");

  analysis::LintOptions options;
  options.native_edges.push_back({{"Driver", "go"}, {"Store", "hidden"}});
  const auto report = analysis::lint(app, options);
  const auto findings = of_rule(report, "MSV004");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Driver");
  EXPECT_EQ(findings[0].method, "go");
  EXPECT_NE(findings[0].message.find("Store.hidden"), std::string::npos);
}

TEST(Lint, Msv005CallArityMismatch) {
  const auto report = analysis::lint(parse(R"(
    class Box @Trusted {
      field v;
      ctor() { this.v = 0; }
      method set(x) { this.v = x; }
    }
    class Main @Untrusted {
      static method main() {
        b = new Box();
        b.set(1, 2);
      }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV005");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Main");
  EXPECT_EQ(findings[0].method, "main");
  EXPECT_EQ(findings[0].pc, 5);  // the b.set(1, 2) call
}

TEST(Lint, Msv005NonPrimitiveIntoPrimitiveSignature) {
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kTrusted);
  box.add_field("v");
  auto& set = box.add_method("set", 1);
  set.primitive_signature();
  set.body(IrBuilder()
               .load_local(0)
               .load_local(1)
               .put_field(0)
               .ret_void()
               .build());
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder()
                                                 .new_object("Box", 0)
                                                 .const_val(Value("oops"))
                                                 .call("set", 1)
                                                 .pop()
                                                 .ret_void()
                                                 .build());
  app.set_main_class("Main");

  const auto findings = of_rule(analysis::lint(app), "MSV005");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].cls, "Main");
  EXPECT_EQ(findings[0].method, "main");
  EXPECT_EQ(findings[0].pc, 2);  // the call site
  EXPECT_NE(findings[0].message.find("string"), std::string::npos);
}

TEST(Lint, Msv005PrimitiveSignatureReturnsNonPrimitive) {
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kTrusted);
  auto& get = box.add_method("get", 0);
  get.primitive_signature();
  get.body(IrBuilder().const_val(Value("secret")).ret().build());
  const auto findings = of_rule(analysis::lint(app), "MSV005");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].cls, "Box");
  EXPECT_EQ(findings[0].method, "get");
  EXPECT_EQ(findings[0].pc, -1);  // a property of the method, not one pc
}

TEST(Lint, Msv006CrossBoundaryReferenceCycle) {
  const auto report = analysis::lint(parse(R"(
    class Alpha @Trusted {
      field peer;
      ctor() { this.peer = new Beta(); }
    }
    class Beta @Untrusted {
      field peer;
      ctor() { this.peer = 0; }
      method link() { this.peer = new Alpha(); }
    }
    class Main @Untrusted {
      static method main() {
        b = new Beta();
        b.link();
      }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV006");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].cls, "Alpha");  // anchored at the first store edge
  EXPECT_EQ(findings[0].method, "<init>");
  EXPECT_NE(findings[0].message.find("Alpha"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Beta"), std::string::npos);
}

TEST(Lint, Msv007MalformedBytecodeSurfacesThroughLint) {
  model::AppModel app;
  auto& cls = app.add_class("Broken", Annotation::kUntrusted);
  cls.add_method("run", 0).body(raw_body({{Op::kJump, 99, 0}}));
  const auto findings = of_rule(analysis::lint(app), "MSV007");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Broken");
  EXPECT_EQ(findings[0].method, "run");
  EXPECT_EQ(findings[0].pc, 0);
}

TEST(Lint, Msv008UnregisteredTelemetryCategory) {
  // With the live prefix table every woven relay name ("ecall_relay_...",
  // "ocall_relay_...") is covered, so the rule is quiet by default; an
  // options override simulates a telemetry registry that has dropped the
  // relay prefixes and must produce one informational finding per would-be
  // transition.
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kTrusted);
  box.add_method("get", 0).body(
      IrBuilder().const_val(Value(std::int32_t{1})).ret().build());
  app.set_main_class("Box");

  EXPECT_TRUE(of_rule(analysis::lint(app), "MSV008").empty())
      << "default prefix table covers every woven relay";

  analysis::LintOptions options;
  options.telemetry_call_prefixes = {"ecall_gc_", "ocall_gc_"};
  const auto findings = of_rule(analysis::lint(app, options), "MSV008");
  // One finding per relay transition: get() plus the default-constructor
  // relay the transformer always weaves.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_EQ(findings[0].cls, "Box");
  bool saw_get = false;
  for (const auto& f : findings) {
    if (f.method == "get") {
      saw_get = true;
      EXPECT_NE(f.message.find("ecall_relay_Box_get"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_get);
}

TEST(Lint, Msv009BatchAsyncUnsafeBodies) {
  // Golden fixture: three batch_async() declarations — a pure field
  // setter (clean), a body that prints (I/O sink: reordering it within a
  // batched flush reorders externally observable output), and a body that
  // calls another method (effects on other objects).
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kTrusted);
  box.add_field("value");
  box.add_method("set", 1).batch_async().body(IrBuilder()
                                                  .locals(2)
                                                  .load_local(0)
                                                  .load_local(1)
                                                  .put_field(0)
                                                  .ret_void()
                                                  .build());
  box.add_method("log", 1).batch_async().body(IrBuilder()
                                                  .locals(2)
                                                  .load_local(1)
                                                  .intrinsic("print", 1)
                                                  .pop()
                                                  .ret_void()
                                                  .build());
  box.add_method("poke", 0).batch_async().body(IrBuilder()
                                                   .locals(1)
                                                   .load_local(0)
                                                   .const_val(Value(
                                                       std::int32_t{1}))
                                                   .call("set", 1)
                                                   .pop()
                                                   .ret_void()
                                                   .build());
  app.set_main_class("Box");

  const auto findings = of_rule(analysis::lint(app), "MSV009");
  ASSERT_EQ(findings.size(), 2u);
  for (const auto& f : findings) {
    EXPECT_EQ(f.severity, Severity::kWarning);
    EXPECT_EQ(f.cls, "Box");
  }
  bool saw_log = false;
  bool saw_poke = false;
  for (const auto& f : findings) {
    if (f.method == "log") {
      saw_log = true;
      EXPECT_NE(f.message.find("'print'"), std::string::npos);
    }
    if (f.method == "poke") {
      saw_poke = true;
      EXPECT_NE(f.message.find("calls 'set'"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_log);
  EXPECT_TRUE(saw_poke);

  // Audited declarations are suppressed per-method via the exempt list.
  analysis::LintOptions options;
  options.batch_reorder_exempt = {"Box.log", "Box.poke"};
  EXPECT_TRUE(of_rule(analysis::lint(app, options), "MSV009").empty());
}

// ---- Lint: the clean corpus produces zero findings -------------------------

TEST(Lint, BankAppIsClean) {
  const auto report = analysis::lint(apps::build_bank_app(true));
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(Lint, MicroAppIsClean) {
  const auto report = analysis::lint(apps::synthetic::build_micro_app());
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(Lint, SyntheticGeneratorOutputIsClean) {
  for (const auto work :
       {apps::synthetic::WorkKind::kCpu, apps::synthetic::WorkKind::kIo}) {
    apps::synthetic::SyntheticSpec spec;
    spec.n_classes = 16;
    spec.untrusted_fraction = 0.5;
    spec.work = work;
    const auto report = analysis::lint(apps::synthetic::generate(spec));
    EXPECT_TRUE(report.empty()) << report.to_text();
  }
}

// ---- Diagnostics engine ----------------------------------------------------

TEST(Diag, BaselineSuppressesKnownFindings) {
  model::AppModel app;
  auto& cls = app.add_class("Broken", Annotation::kUntrusted);
  cls.add_method("run", 0).body(raw_body({{Op::kJump, 99, 0}}));
  analysis::Report report = analysis::lint(app);
  ASSERT_EQ(report.errors(), 1u);

  const analysis::Baseline baseline = report.to_baseline();
  EXPECT_TRUE(baseline.contains("MSV007 Broken.run"));
  report.apply_baseline(baseline);
  EXPECT_EQ(report.errors(), 0u) << "baselined findings do not count";
  EXPECT_TRUE(report.diagnostics().front().suppressed);

  // Round-trip through the file format.
  const analysis::Baseline reparsed =
      analysis::Baseline::parse(baseline.to_text());
  EXPECT_EQ(reparsed.size(), baseline.size());
}

TEST(Diag, JsonReportShape) {
  model::AppModel app;
  auto& cls = app.add_class("Broken", Annotation::kUntrusted);
  cls.add_method("run", 0).body(raw_body({{Op::kJump, 99, 0}}));
  const analysis::Report report = analysis::lint(app);
  const std::string json =
      report.to_json(analysis::lint_rule_ids(), report.stats(), "unit");
  EXPECT_NE(json.find("\"schema\": \"msvlint-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"target\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"MSV007\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"methods_analyzed\""), std::string::npos);
}

TEST(Diag, RuleCatalogueIsStable) {
  const auto ids = analysis::lint_rule_ids();
  ASSERT_EQ(ids.size(), 9u);
  EXPECT_EQ(ids.front(), "MSV001");
  EXPECT_EQ(ids.back(), "MSV009");
}

// ---- Interpreter: TrapError bounds checks ----------------------------------
//
// Every body here used to index past a pool (UB) or silently exit the
// dispatch loop; the interpreter now raises a typed TrapError.

core::NativeApp make_trap_app(IrBody bad_body) {
  model::AppModel app;
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  main_cls.add_static_method("bad", 0).body(std::move(bad_body));
  app.set_main_class("Main");
  core::AppConfig config;
  config.extra_entry_points = {{"Main", "bad"}};
  return core::NativeApp(app, config);
}

TEST(InterpTrap, ConstantPoolIndexOutOfBounds) {
  auto app = make_trap_app(
      raw_body({{Op::kConst, 7, 0}, {Op::kReturnVoid, 0, 0}}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, LocalIndexOutOfBounds) {
  auto app = make_trap_app(raw_body(
      {{Op::kLoadLocal, 9, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, JumpTargetOutOfBounds) {
  // Previously a wild jump silently exited the dispatch loop (an implicit
  // void return); it must trap instead.
  auto app = make_trap_app(raw_body({{Op::kJump, 5, 0}}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, NamePoolIndexOutOfBounds) {
  auto app = make_trap_app(raw_body(
      {{Op::kNew, 3, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, NegativeArgumentCount) {
  auto app = make_trap_app(raw_body(
      {{Op::kCall, 0, -1}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}},
      {}, {"x"}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, FieldIndexOutOfBounds) {
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kUntrusted);
  box.add_field("only");
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  main_cls.add_static_method("bad", 0).body(
      raw_body({{Op::kNew, 0, 0},
                {Op::kGetField, 5, 0},
                {Op::kPop, 0, 0},
                {Op::kReturnVoid, 0, 0}},
               {}, {"Box"}));
  app.set_main_class("Main");
  core::AppConfig config;
  config.extra_entry_points = {{"Main", "bad"}};
  core::NativeApp native(app, config);
  EXPECT_THROW(native.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, CleanBodiesStillExecute) {
  auto app = make_trap_app(
      IrBuilder().const_val(Value(std::int32_t{41})).ret().build());
  EXPECT_EQ(app.context().invoke_static("Main", "bad", {}).as_i32(), 41);
  app.run_main();
}

// ---- Interpreter: the verify gate ------------------------------------------

TEST(VerifyGate, RefusesUnverifiedBytecodeBeforeExecuting) {
  // The jump-to-5 body would trap mid-method; with the gate armed it is
  // rejected at dispatch, before a single instruction runs.
  auto app = make_trap_app(raw_body({{Op::kJump, 5, 0}}));
  app.context().set_verify_bytecode(true);
  try {
    app.context().invoke_static("Main", "bad", {});
    FAIL() << "expected TrapError";
  } catch (const TrapError& e) {
    EXPECT_NE(std::string(e.what()).find("verify gate"), std::string::npos);
  }
}

TEST(VerifyGate, VerifiedBytecodeRunsNormally) {
  auto app = make_trap_app(
      IrBuilder().const_val(Value(std::int32_t{7})).ret().build());
  app.context().set_verify_bytecode(true);
  EXPECT_EQ(app.context().invoke_static("Main", "bad", {}).as_i32(), 7);
}

TEST(VerifyGate, AppConfigArmsGateAcrossRunners) {
  core::AppConfig config;
  config.verify_bytecode = true;
  core::PartitionedApp partitioned(apps::build_bank_app(), config);
  partitioned.run_main();  // the whole bank flow verifies and runs
  core::NativeApp native(apps::build_bank_app(), config);
  native.run_main();
}

// ---- Native call-edge tracing (the MSV004 dry run) -------------------------

TEST(NativeEdges, TracerRecordsOnlyNativeCallerEdges) {
  model::AppModel app;
  auto& store = app.add_class("Store", Annotation::kNeutral);
  store.add_method("hidden", 0).body(
      IrBuilder().const_val(Value(std::int32_t{1})).ret().build());
  auto& driver = app.add_class("Driver", Annotation::kUntrusted);
  driver.add_static_method("go", 0).body_native([](model::NativeCall& call) {
    const Value s = call.ctx.construct("Store", {});
    return call.ctx.invoke(s.as_ref(), "hidden", {});
  });
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  app.set_main_class("Main");

  core::AppConfig config;
  config.root_everything = true;  // agent-style open world for the dry run
  core::NativeApp native(app, config);
  native.context().enable_native_edge_tracing();
  native.run_main();
  EXPECT_TRUE(native.context().native_edges().empty())
      << "bytecode-only execution records no native edges";
  native.context().invoke_static("Driver", "go", {});
  const auto& edges = native.context().native_edges();
  const interp::ExecContext::MethodRef caller{"Driver", "go"};
  const interp::ExecContext::MethodRef callee{"Store", "hidden"};
  EXPECT_EQ(edges.count({caller, callee}), 1u);
  for (const auto& edge : edges) {
    EXPECT_EQ(edge.first, caller) << "only native frames record edges";
  }
}

// ---- AppConfig::lint_partition gate ----------------------------------------

TEST(LintGate, CleanAppBuildsWithLintEnabled) {
  core::AppConfig config;
  config.lint_partition = true;
  core::PartitionedApp app(apps::build_bank_app(true), config);
  app.run_main();
}

TEST(LintGate, LeakyAppIsRejected) {
  const model::AppModel leaky = parse(R"(
    class Secrets @Trusted {
      field pin;
      ctor(v) { this.pin = v; }
      method leak(s) { s.store(this.pin); }
    }
    class Sink @Untrusted {
      field v;
      ctor() { this.v = 0; }
      method store(x) { this.v = x; }
    }
    class Main @Untrusted {
      static method main() { sec = new Secrets(9); }
    }
    main Main;
  )");
  core::AppConfig config;
  config.lint_partition = true;
  EXPECT_THROW(core::PartitionedApp(leaky, config), ConfigError);
  config.lint_partition = false;
  core::PartitionedApp builds_without_gate(leaky, config);
}

// ---- msvlint driver --------------------------------------------------------

TEST(Driver, BuiltInTargetsLintCleanAndEmitJson) {
  apps::msvlint::DriverOptions options;
  options.bank = true;
  options.micro = true;
  options.synthetic_classes = 8;
  options.json_path = "-";
  std::ostringstream out, err;
  EXPECT_EQ(apps::msvlint::run_driver(options, out, err), 0);
  EXPECT_NE(out.str().find("msvlint-report-v1"), std::string::npos);
  EXPECT_NE(out.str().find("0 error(s)"), std::string::npos);
}

TEST(Driver, BaselineWorkflowSuppressesSeededViolations) {
  const std::string dir = ::testing::TempDir();
  const std::string source_path = dir + "/leaky.msv";
  const std::string baseline_path = dir + "/msvlint-baseline.txt";
  {
    std::ofstream src(source_path);
    src << R"(
      class Secrets @Trusted {
        field pin;
        ctor(v) { this.pin = v; }
        method leak(s) { s.store(this.pin); }
      }
      class Sink @Untrusted {
        field v;
        ctor() { this.v = 0; }
        method store(x) { this.v = x; }
      }
      class Main @Untrusted {
        static method main() { sec = new Secrets(9); }
      }
      main Main;
    )";
  }
  apps::msvlint::DriverOptions options;
  options.dsl_paths = {source_path};
  options.write_baseline_path = baseline_path;
  std::ostringstream out1, err1;
  EXPECT_EQ(apps::msvlint::run_driver(options, out1, err1), 1)
      << "unsuppressed errors fail the run";
  EXPECT_NE(out1.str().find("MSV001"), std::string::npos);

  options.write_baseline_path.clear();
  options.baseline_path = baseline_path;
  std::ostringstream out2, err2;
  EXPECT_EQ(apps::msvlint::run_driver(options, out2, err2), 0)
      << "baselined findings no longer fail";
  EXPECT_NE(out2.str().find("suppressed"), std::string::npos);
}

TEST(Driver, ListRules) {
  apps::msvlint::DriverOptions options;
  options.list_rules = true;
  std::ostringstream out, err;
  EXPECT_EQ(apps::msvlint::run_driver(options, out, err), 0);
  EXPECT_NE(out.str().find("MSV001"), std::string::npos);
  EXPECT_NE(out.str().find("MSV007"), std::string::npos);
}

}  // namespace
}  // namespace msv
