// Tests for src/analysis: the bytecode verifier, the msvlint rule suite
// (golden fixtures with exact rule/location per rule ID), the diagnostics
// engine (baseline suppression, JSON), the interpreter's TrapError bounds
// checks and verify gate, and the msvlint driver.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/absint.h"
#include "analysis/lint.h"
#include "analysis/optimize.h"
#include "analysis/verify.h"
#include "apps/illustrative/bank.h"
#include "apps/msvlint/driver.h"
#include "apps/synthetic/generator.h"
#include "core/montsalvat.h"
#include "dsl/parser.h"
#include "support/rng.h"

namespace msv {
namespace {

using analysis::Diagnostic;
using analysis::Severity;
using model::Annotation;
using model::IrBody;
using model::IrBuilder;
using model::Op;
using rt::Value;

// Diagnostics of one rule.
std::vector<Diagnostic> of_rule(const analysis::Report& report,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

// ---- Verifier: malformed-bytecode corpus -----------------------------------
//
// Each body is one the interpreter previously executed as UB (raw pool
// indexing, silent exit on a wild jump); the verifier must reject all of
// them, and the clean corpus must verify with zero findings.

IrBody raw_body(std::vector<model::Instr> code,
                std::vector<Value> consts = {},
                std::vector<std::string> names = {},
                std::uint32_t local_count = 0) {
  IrBody body;
  body.code = std::move(code);
  body.consts = std::move(consts);
  body.names = std::move(names);
  body.local_count = local_count;
  return body;
}

TEST(Verifier, StackUnderflow) {
  const auto errors =
      analysis::verify(raw_body({{Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 0);
  EXPECT_NE(errors[0].message.find("underflow"), std::string::npos);
}

TEST(Verifier, MalformedJumpTarget) {
  const auto errors = analysis::verify(raw_body({{Op::kJump, 99, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 0);
  EXPECT_NE(errors[0].message.find("target"), std::string::npos);
}

TEST(Verifier, ConstantPoolIndexOutOfRange) {
  const auto errors = analysis::verify(
      raw_body({{Op::kConst, 7, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 0);
  EXPECT_NE(errors[0].message.find("constant pool"), std::string::npos);
}

TEST(Verifier, NamePoolIndexOutOfRange) {
  const auto errors = analysis::verify(raw_body(
      {{Op::kNew, 3, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 0);
}

TEST(Verifier, LocalIndexOutOfRange) {
  const auto errors = analysis::verify(raw_body(
      {{Op::kLoadLocal, 5, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("local"), std::string::npos);
}

TEST(Verifier, FieldIndexOutOfRangeOnTypedReceiver) {
  // With model context the verifier proves field bounds on receivers whose
  // class is statically unique.
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kNeutral);
  box.add_field("only");
  auto& m = box.add_method("poke", 0);
  m.body(raw_body({{Op::kLoadLocal, 0, 0},
                   {Op::kGetField, 9, 0},
                   {Op::kPop, 0, 0},
                   {Op::kReturnVoid, 0, 0}},
                  {}, {}, 1));
  analysis::VerifyOptions options;
  options.app = &app;
  options.cls = &app.classes().front();
  options.method = &app.classes().front().methods().front();
  const auto errors = analysis::verify(m.ir(), options);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].pc, 1);
  EXPECT_NE(errors[0].message.find("field"), std::string::npos);
}

TEST(Verifier, FallThroughWithoutReturn) {
  const auto errors = analysis::verify(raw_body({{Op::kNop, 0, 0}}));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].message.find("fall"), std::string::npos);
}

TEST(Verifier, InconsistentMergeDepth) {
  // Path A (branch taken) reaches pc 3 with depth 0; path B (fall-through
  // through the extra const) reaches it with depth 1.
  const auto errors = analysis::verify(raw_body({{Op::kConst, 0, 0},
                                                 {Op::kBranchFalse, 3, 0},
                                                 {Op::kConst, 0, 0},
                                                 {Op::kReturnVoid, 0, 0}},
                                                {Value(true)}));
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("merge"), std::string::npos);
}

TEST(Verifier, OperandStackOverflow) {
  // A straight-line push sequence exceeds the configured stack limit.
  std::vector<model::Instr> code(12, {Op::kConst, 0, 0});
  code.push_back({Op::kReturnVoid, 0, 0});
  analysis::VerifyOptions options;
  options.max_stack = 8;
  const auto errors =
      analysis::verify(raw_body(std::move(code), {Value(1)}), options);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("overflow"), std::string::npos);
}

TEST(Verifier, NegativeArgumentCount) {
  const auto errors = analysis::verify(raw_body(
      {{Op::kCall, 0, -2}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}},
      {}, {"m"}));
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].pc, 0);
}

// ---- Verifier: the clean corpus verifies -----------------------------------

TEST(Verifier, BankAppVerifies) {
  EXPECT_TRUE(analysis::verify_app(apps::build_bank_app(true)).empty());
}

TEST(Verifier, MicroAppVerifies) {
  EXPECT_TRUE(analysis::verify_app(apps::synthetic::build_micro_app()).empty());
}

TEST(Verifier, SyntheticGeneratorOutputVerifies) {
  for (const double fraction : {0.0, 0.4, 1.0}) {
    apps::synthetic::SyntheticSpec spec;
    spec.n_classes = 20;
    spec.untrusted_fraction = fraction;
    const analysis::Report report =
        analysis::verify_app(apps::synthetic::generate(spec));
    EXPECT_TRUE(report.empty()) << report.to_text();
    EXPECT_GT(report.stats().methods_analyzed, 0u);
  }
}

// Property: every program assembled through IrBuilder's structured API
// (balanced pushes/pops, label-bound jumps, explicit return) verifies.
class VerifierProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifierProperty, RandomBuilderProgramsVerify) {
  Rng rng(GetParam());
  for (int program = 0; program < 20; ++program) {
    IrBuilder ir;
    const std::uint32_t locals = 1 + static_cast<std::uint32_t>(
                                         rng.next_below(4));
    ir.locals(locals);
    int depth = 0;
    const int steps = 1 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < steps; ++i) {
      switch (rng.next_below(6)) {
        case 0:
          ir.const_val(Value(static_cast<std::int32_t>(rng.next_u64() % 100)));
          ++depth;
          break;
        case 1:
          ir.load_local(static_cast<std::int32_t>(rng.next_below(locals)));
          ++depth;
          break;
        case 2:
          if (depth >= 1) {
            ir.store_local(static_cast<std::int32_t>(rng.next_below(locals)));
            --depth;
          }
          break;
        case 3:
          if (depth >= 2) {
            ir.add();
            --depth;
          }
          break;
        case 4:
          if (depth >= 1) {
            ir.dup();
            ++depth;
          }
          break;
        default:
          if (depth >= 1) {
            ir.pop();
            --depth;
          }
          break;
      }
    }
    while (depth > 0) {
      ir.pop();
      --depth;
    }
    ir.ret_void();
    const auto errors = analysis::verify(ir.build());
    EXPECT_TRUE(errors.empty())
        << "seed " << GetParam() << " program " << program << ": "
        << errors.front().message;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- Lint golden fixtures: every rule ID detects its seeded violation ------

model::AppModel parse(const std::string& source) {
  return dsl::parse_program(source);
}

TEST(Lint, Msv001SecretFlowIntoUntrustedCallAndIntrinsic) {
  const auto report = analysis::lint(parse(R"(
    class Secrets @Trusted {
      field pin;
      ctor(v) { this.pin = v; }
      method leak(s) {
        s.store(this.pin);
        @io_write("f", this.pin);
      }
    }
    class Sink @Untrusted {
      field v;
      ctor() { this.v = 0; }
      method store(x) { this.v = x; }
    }
    class Main @Untrusted {
      static method main() {
        sec = new Secrets(1234);
        sink = new Sink();
        sec.leak(sink);
      }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV001");
  ASSERT_EQ(findings.size(), 2u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Secrets");
  EXPECT_EQ(findings[0].method, "leak");
  EXPECT_EQ(findings[0].pc, 3);  // the s.store(...) call
  EXPECT_EQ(findings[1].pc, 8);  // the @io_write intrinsic
  EXPECT_EQ(report.errors(), 2u) << "no other rule should fire";
}

TEST(Lint, Msv002NeutralFieldWrittenTrustedReadUntrusted) {
  const auto report = analysis::lint(parse(R"(
    class Counter {
      field n;
      ctor() { this.n = 0; }
      method bump() { this.n = this.n + 1; }
      method get() { return this.n; }
    }
    class Keeper @Trusted {
      field c;
      ctor() { this.c = new Counter(); }
      method touch() { this.c.bump(); }
    }
    class Main @Untrusted {
      static method main() {
        k = new Keeper();
        c = new Counter();
        c.get();
        k.touch();
      }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV002");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].cls, "Counter");
  EXPECT_EQ(findings[0].method, "bump");
  EXPECT_EQ(findings[0].pc, 5);  // the put_field of `n`
  EXPECT_NE(findings[0].message.find("`n`"), std::string::npos);
}

TEST(Lint, Msv003PrivateConstructorAcrossPartition) {
  // The transformer relays only public methods; a class whose constructor
  // is private gets no construction relay, so a cross-partition `new`
  // fails at run time. DSL constructors are always public, so build the
  // model directly.
  model::AppModel app;
  auto& box = app.add_class("SecretBox", Annotation::kTrusted);
  box.add_constructor(0).set_private().body(IrBuilder().ret_void().build());
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(
      IrBuilder().new_object("SecretBox", 0).pop().ret_void().build());
  app.set_main_class("Main");

  const auto report = analysis::lint(app);
  const auto findings = of_rule(report, "MSV003");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Main");
  EXPECT_EQ(findings[0].method, "main");
  EXPECT_EQ(findings[0].pc, 0);
}

TEST(Lint, Msv003NeutralCodeInstantiatesPartitionedClass) {
  const auto report = analysis::lint(parse(R"(
    class Vaultlet @Trusted {
      method ping() { return 1; }
    }
    class Helper {
      method make() { return new Vaultlet(); }
    }
    class Main @Untrusted {
      static method main() { h = new Helper(); }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV003");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].cls, "Helper");
  EXPECT_EQ(findings[0].method, "make");
  EXPECT_EQ(findings[0].pc, 0);
}

TEST(Lint, Msv004DanglingAndPrivateCrossPartitionHints) {
  model::AppModel app;
  auto& vault = app.add_class("Vault", Annotation::kTrusted);
  vault.add_method("open", 0).set_private().body(
      IrBuilder().ret_void().build());
  auto& driver = app.add_class("Driver", Annotation::kUntrusted);
  driver.add_static_method("go", 0)
      .body_native([](model::NativeCall&) { return Value(); })
      .calls("Ghost", "boo")    // dangling: no such class
      .calls("Vault", "open");  // private across the boundary: never relayed
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  app.set_main_class("Main");

  const auto findings = of_rule(analysis::lint(app), "MSV004");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].cls, "Driver");
  EXPECT_EQ(findings[0].method, "go");
  EXPECT_NE(findings[0].message.find("Ghost.boo"), std::string::npos);
  EXPECT_NE(findings[1].message.find("Vault.open"), std::string::npos);
  EXPECT_NE(findings[1].message.find("private"), std::string::npos);
}

TEST(Lint, Msv004ObservedNativeEdgeMissingFromHints) {
  model::AppModel app;
  auto& store = app.add_class("Store", Annotation::kTrusted);
  store.add_method("put", 0).body(IrBuilder().ret_void().build());
  store.add_method("hidden", 0).body(
      IrBuilder().const_val(Value(std::int32_t{1})).ret().build());
  auto& driver = app.add_class("Driver", Annotation::kUntrusted);
  driver.add_static_method("go", 0)
      .body_native([](model::NativeCall&) { return Value(); })
      .calls("Store", "put");  // hidden() is invoked but never declared
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  app.set_main_class("Main");

  analysis::LintOptions options;
  options.native_edges.push_back({{"Driver", "go"}, {"Store", "hidden"}});
  const auto report = analysis::lint(app, options);
  const auto findings = of_rule(report, "MSV004");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Driver");
  EXPECT_EQ(findings[0].method, "go");
  EXPECT_NE(findings[0].message.find("Store.hidden"), std::string::npos);
}

TEST(Lint, Msv005CallArityMismatch) {
  const auto report = analysis::lint(parse(R"(
    class Box @Trusted {
      field v;
      ctor() { this.v = 0; }
      method set(x) { this.v = x; }
    }
    class Main @Untrusted {
      static method main() {
        b = new Box();
        b.set(1, 2);
      }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV005");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Main");
  EXPECT_EQ(findings[0].method, "main");
  EXPECT_EQ(findings[0].pc, 5);  // the b.set(1, 2) call
}

TEST(Lint, Msv005NonPrimitiveIntoPrimitiveSignature) {
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kTrusted);
  box.add_field("v");
  auto& set = box.add_method("set", 1);
  set.primitive_signature();
  set.body(IrBuilder()
               .load_local(0)
               .load_local(1)
               .put_field(0)
               .ret_void()
               .build());
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder()
                                                 .new_object("Box", 0)
                                                 .const_val(Value("oops"))
                                                 .call("set", 1)
                                                 .pop()
                                                 .ret_void()
                                                 .build());
  app.set_main_class("Main");

  const auto findings = of_rule(analysis::lint(app), "MSV005");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].cls, "Main");
  EXPECT_EQ(findings[0].method, "main");
  EXPECT_EQ(findings[0].pc, 2);  // the call site
  EXPECT_NE(findings[0].message.find("string"), std::string::npos);
}

TEST(Lint, Msv005PrimitiveSignatureReturnsNonPrimitive) {
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kTrusted);
  auto& get = box.add_method("get", 0);
  get.primitive_signature();
  get.body(IrBuilder().const_val(Value("secret")).ret().build());
  const auto findings = of_rule(analysis::lint(app), "MSV005");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].cls, "Box");
  EXPECT_EQ(findings[0].method, "get");
  EXPECT_EQ(findings[0].pc, -1);  // a property of the method, not one pc
}

TEST(Lint, Msv006CrossBoundaryReferenceCycle) {
  const auto report = analysis::lint(parse(R"(
    class Alpha @Trusted {
      field peer;
      ctor() { this.peer = new Beta(); }
    }
    class Beta @Untrusted {
      field peer;
      ctor() { this.peer = 0; }
      method link() { this.peer = new Alpha(); }
    }
    class Main @Untrusted {
      static method main() {
        b = new Beta();
        b.link();
      }
    }
    main Main;
  )"));
  const auto findings = of_rule(report, "MSV006");
  ASSERT_EQ(findings.size(), 1u) << report.to_text();
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].cls, "Alpha");  // anchored at the first store edge
  EXPECT_EQ(findings[0].method, "<init>");
  EXPECT_NE(findings[0].message.find("Alpha"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Beta"), std::string::npos);
}

TEST(Lint, Msv007MalformedBytecodeSurfacesThroughLint) {
  model::AppModel app;
  auto& cls = app.add_class("Broken", Annotation::kUntrusted);
  cls.add_method("run", 0).body(raw_body({{Op::kJump, 99, 0}}));
  const auto findings = of_rule(analysis::lint(app), "MSV007");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].cls, "Broken");
  EXPECT_EQ(findings[0].method, "run");
  EXPECT_EQ(findings[0].pc, 0);
}

TEST(Lint, Msv008UnregisteredTelemetryCategory) {
  // With the live prefix table every woven relay name ("ecall_relay_...",
  // "ocall_relay_...") is covered, so the rule is quiet by default; an
  // options override simulates a telemetry registry that has dropped the
  // relay prefixes and must produce one informational finding per would-be
  // transition.
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kTrusted);
  box.add_method("get", 0).body(
      IrBuilder().const_val(Value(std::int32_t{1})).ret().build());
  app.set_main_class("Box");

  EXPECT_TRUE(of_rule(analysis::lint(app), "MSV008").empty())
      << "default prefix table covers every woven relay";

  analysis::LintOptions options;
  options.telemetry_call_prefixes = {"ecall_gc_", "ocall_gc_"};
  const auto findings = of_rule(analysis::lint(app, options), "MSV008");
  // One finding per relay transition: get() plus the default-constructor
  // relay the transformer always weaves.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_EQ(findings[0].cls, "Box");
  bool saw_get = false;
  for (const auto& f : findings) {
    if (f.method == "get") {
      saw_get = true;
      EXPECT_NE(f.message.find("ecall_relay_Box_get"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_get);
}

TEST(Lint, Msv009BatchAsyncUnsafeBodies) {
  // Golden fixture: three batch_async() declarations — a pure field
  // setter (clean), a body that prints (I/O sink: reordering it within a
  // batched flush reorders externally observable output), and a body that
  // calls another method (effects on other objects).
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kTrusted);
  box.add_field("value");
  box.add_method("set", 1).batch_async().body(IrBuilder()
                                                  .locals(2)
                                                  .load_local(0)
                                                  .load_local(1)
                                                  .put_field(0)
                                                  .ret_void()
                                                  .build());
  box.add_method("log", 1).batch_async().body(IrBuilder()
                                                  .locals(2)
                                                  .load_local(1)
                                                  .intrinsic("print", 1)
                                                  .pop()
                                                  .ret_void()
                                                  .build());
  box.add_method("poke", 0).batch_async().body(IrBuilder()
                                                   .locals(1)
                                                   .load_local(0)
                                                   .const_val(Value(
                                                       std::int32_t{1}))
                                                   .call("set", 1)
                                                   .pop()
                                                   .ret_void()
                                                   .build());
  app.set_main_class("Box");

  const auto findings = of_rule(analysis::lint(app), "MSV009");
  ASSERT_EQ(findings.size(), 2u);
  for (const auto& f : findings) {
    EXPECT_EQ(f.severity, Severity::kWarning);
    EXPECT_EQ(f.cls, "Box");
  }
  bool saw_log = false;
  bool saw_poke = false;
  for (const auto& f : findings) {
    if (f.method == "log") {
      saw_log = true;
      EXPECT_NE(f.message.find("'print'"), std::string::npos);
    }
    if (f.method == "poke") {
      saw_poke = true;
      EXPECT_NE(f.message.find("calls 'set'"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_log);
  EXPECT_TRUE(saw_poke);

  // Audited declarations are suppressed per-method via the exempt list.
  analysis::LintOptions options;
  options.batch_reorder_exempt = {"Box.log", "Box.poke"};
  EXPECT_TRUE(of_rule(analysis::lint(app, options), "MSV009").empty());
}

// ---- Lint: the clean corpus produces zero findings -------------------------

TEST(Lint, BankAppIsClean) {
  const auto report = analysis::lint(apps::build_bank_app(true));
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(Lint, MicroAppIsClean) {
  const auto report = analysis::lint(apps::synthetic::build_micro_app());
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(Lint, SyntheticGeneratorOutputIsClean) {
  for (const auto work :
       {apps::synthetic::WorkKind::kCpu, apps::synthetic::WorkKind::kIo}) {
    apps::synthetic::SyntheticSpec spec;
    spec.n_classes = 16;
    spec.untrusted_fraction = 0.5;
    spec.work = work;
    const auto report = analysis::lint(apps::synthetic::generate(spec));
    EXPECT_TRUE(report.empty()) << report.to_text();
  }
}

// ---- Diagnostics engine ----------------------------------------------------

TEST(Diag, BaselineSuppressesKnownFindings) {
  model::AppModel app;
  auto& cls = app.add_class("Broken", Annotation::kUntrusted);
  cls.add_method("run", 0).body(raw_body({{Op::kJump, 99, 0}}));
  analysis::Report report = analysis::lint(app);
  ASSERT_EQ(report.errors(), 1u);

  const analysis::Baseline baseline = report.to_baseline();
  EXPECT_TRUE(baseline.contains("MSV007 Broken.run"));
  report.apply_baseline(baseline);
  EXPECT_EQ(report.errors(), 0u) << "baselined findings do not count";
  EXPECT_TRUE(report.diagnostics().front().suppressed);

  // Round-trip through the file format.
  const analysis::Baseline reparsed =
      analysis::Baseline::parse(baseline.to_text());
  EXPECT_EQ(reparsed.size(), baseline.size());
}

TEST(Diag, JsonReportShape) {
  model::AppModel app;
  auto& cls = app.add_class("Broken", Annotation::kUntrusted);
  cls.add_method("run", 0).body(raw_body({{Op::kJump, 99, 0}}));
  const analysis::Report report = analysis::lint(app);
  const std::string json =
      report.to_json(analysis::lint_rule_ids(), report.stats(), "unit");
  EXPECT_NE(json.find("\"schema\": \"msvlint-report-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"target\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"MSV007\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"methods_analyzed\""), std::string::npos);
  // v2 emits the timing object unconditionally: every rule the linter ran
  // has an entry even with zero diagnostics (the v1 omission this schema
  // bump exists to fix).
  EXPECT_NE(json.find("\"rule_timings\""), std::string::npos);
  EXPECT_NE(json.find("\"MSV003\":"), std::string::npos)
      << "zero-diagnostic rules keep their timing entry in v2";
}

TEST(Diag, JsonReportV1CompatDropsZeroDiagnosticTimings) {
  model::AppModel app;
  auto& cls = app.add_class("Broken", Annotation::kUntrusted);
  cls.add_method("run", 0).body(raw_body({{Op::kJump, 99, 0}}));
  const analysis::Report report = analysis::lint(app);
  const std::string v1 =
      report.to_json(analysis::lint_rule_ids(), report.stats(), "unit", 1);
  EXPECT_NE(v1.find("\"schema\": \"msvlint-report-v1\""), std::string::npos);
  // The legacy schema only ever carried timings for rules with findings;
  // MSV007 fired here, every other rule must be filtered out.
  EXPECT_EQ(v1.find("\"MSV003\":"), std::string::npos);

  // A fully clean report under v1 omits the rule_timings key entirely —
  // byte-compatible with historical reports, which predate rule_wall_ms.
  const analysis::Report clean = analysis::lint(apps::build_bank_app(true));
  const std::string clean_v1 =
      clean.to_json(analysis::lint_rule_ids(), clean.stats(), "bank", 1);
  EXPECT_EQ(clean_v1.find("rule_timings"), std::string::npos);
  const std::string clean_v2 =
      clean.to_json(analysis::lint_rule_ids(), clean.stats(), "bank");
  EXPECT_NE(clean_v2.find("rule_timings"), std::string::npos);
}

TEST(Diag, RuleCatalogueIsStable) {
  const auto ids = analysis::lint_rule_ids();
  ASSERT_EQ(ids.size(), 10u);
  EXPECT_EQ(ids.front(), "MSV001");
  EXPECT_EQ(ids.back(), "MSV010");
}

// ---- Interpreter: TrapError bounds checks ----------------------------------
//
// Every body here used to index past a pool (UB) or silently exit the
// dispatch loop; the interpreter now raises a typed TrapError.

core::NativeApp make_trap_app(IrBody bad_body) {
  model::AppModel app;
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  main_cls.add_static_method("bad", 0).body(std::move(bad_body));
  app.set_main_class("Main");
  core::AppConfig config;
  config.extra_entry_points = {{"Main", "bad"}};
  return core::NativeApp(app, config);
}

TEST(InterpTrap, ConstantPoolIndexOutOfBounds) {
  auto app = make_trap_app(
      raw_body({{Op::kConst, 7, 0}, {Op::kReturnVoid, 0, 0}}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, LocalIndexOutOfBounds) {
  auto app = make_trap_app(raw_body(
      {{Op::kLoadLocal, 9, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, JumpTargetOutOfBounds) {
  // Previously a wild jump silently exited the dispatch loop (an implicit
  // void return); it must trap instead.
  auto app = make_trap_app(raw_body({{Op::kJump, 5, 0}}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, NamePoolIndexOutOfBounds) {
  auto app = make_trap_app(raw_body(
      {{Op::kNew, 3, 0}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, NegativeArgumentCount) {
  auto app = make_trap_app(raw_body(
      {{Op::kCall, 0, -1}, {Op::kPop, 0, 0}, {Op::kReturnVoid, 0, 0}},
      {}, {"x"}));
  EXPECT_THROW(app.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, FieldIndexOutOfBounds) {
  model::AppModel app;
  auto& box = app.add_class("Box", Annotation::kUntrusted);
  box.add_field("only");
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  main_cls.add_static_method("bad", 0).body(
      raw_body({{Op::kNew, 0, 0},
                {Op::kGetField, 5, 0},
                {Op::kPop, 0, 0},
                {Op::kReturnVoid, 0, 0}},
               {}, {"Box"}));
  app.set_main_class("Main");
  core::AppConfig config;
  config.extra_entry_points = {{"Main", "bad"}};
  core::NativeApp native(app, config);
  EXPECT_THROW(native.context().invoke_static("Main", "bad", {}), TrapError);
}

TEST(InterpTrap, CleanBodiesStillExecute) {
  auto app = make_trap_app(
      IrBuilder().const_val(Value(std::int32_t{41})).ret().build());
  EXPECT_EQ(app.context().invoke_static("Main", "bad", {}).as_i32(), 41);
  app.run_main();
}

// ---- Interpreter: the verify gate ------------------------------------------

TEST(VerifyGate, RefusesUnverifiedBytecodeBeforeExecuting) {
  // The jump-to-5 body would trap mid-method; with the gate armed it is
  // rejected at dispatch, before a single instruction runs.
  auto app = make_trap_app(raw_body({{Op::kJump, 5, 0}}));
  app.context().set_verify_bytecode(true);
  try {
    app.context().invoke_static("Main", "bad", {});
    FAIL() << "expected TrapError";
  } catch (const TrapError& e) {
    EXPECT_NE(std::string(e.what()).find("verify gate"), std::string::npos);
  }
}

TEST(VerifyGate, VerifiedBytecodeRunsNormally) {
  auto app = make_trap_app(
      IrBuilder().const_val(Value(std::int32_t{7})).ret().build());
  app.context().set_verify_bytecode(true);
  EXPECT_EQ(app.context().invoke_static("Main", "bad", {}).as_i32(), 7);
}

TEST(VerifyGate, AppConfigArmsGateAcrossRunners) {
  core::AppConfig config;
  config.verify_bytecode = true;
  core::PartitionedApp partitioned(apps::build_bank_app(), config);
  partitioned.run_main();  // the whole bank flow verifies and runs
  core::NativeApp native(apps::build_bank_app(), config);
  native.run_main();
}

// ---- Native call-edge tracing (the MSV004 dry run) -------------------------

TEST(NativeEdges, TracerRecordsOnlyNativeCallerEdges) {
  model::AppModel app;
  auto& store = app.add_class("Store", Annotation::kNeutral);
  store.add_method("hidden", 0).body(
      IrBuilder().const_val(Value(std::int32_t{1})).ret().build());
  auto& driver = app.add_class("Driver", Annotation::kUntrusted);
  driver.add_static_method("go", 0).body_native([](model::NativeCall& call) {
    const Value s = call.ctx.construct("Store", {});
    return call.ctx.invoke(s.as_ref(), "hidden", {});
  });
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder().ret_void().build());
  app.set_main_class("Main");

  core::AppConfig config;
  config.root_everything = true;  // agent-style open world for the dry run
  core::NativeApp native(app, config);
  native.context().enable_native_edge_tracing();
  native.run_main();
  EXPECT_TRUE(native.context().native_edges().empty())
      << "bytecode-only execution records no native edges";
  native.context().invoke_static("Driver", "go", {});
  const auto& edges = native.context().native_edges();
  const interp::ExecContext::MethodRef caller{"Driver", "go"};
  const interp::ExecContext::MethodRef callee{"Store", "hidden"};
  EXPECT_EQ(edges.count({caller, callee}), 1u);
  for (const auto& edge : edges) {
    EXPECT_EQ(edge.first, caller) << "only native frames record edges";
  }
}

// ---- AppConfig::lint_partition gate ----------------------------------------

TEST(LintGate, CleanAppBuildsWithLintEnabled) {
  core::AppConfig config;
  config.lint_partition = true;
  core::PartitionedApp app(apps::build_bank_app(true), config);
  app.run_main();
}

TEST(LintGate, LeakyAppIsRejected) {
  const model::AppModel leaky = parse(R"(
    class Secrets @Trusted {
      field pin;
      ctor(v) { this.pin = v; }
      method leak(s) { s.store(this.pin); }
    }
    class Sink @Untrusted {
      field v;
      ctor() { this.v = 0; }
      method store(x) { this.v = x; }
    }
    class Main @Untrusted {
      static method main() { sec = new Secrets(9); }
    }
    main Main;
  )");
  core::AppConfig config;
  config.lint_partition = true;
  EXPECT_THROW(core::PartitionedApp(leaky, config), ConfigError);
  config.lint_partition = false;
  core::PartitionedApp builds_without_gate(leaky, config);
}

// ---- msvlint driver --------------------------------------------------------

TEST(Driver, BuiltInTargetsLintCleanAndEmitJson) {
  apps::msvlint::DriverOptions options;
  options.bank = true;
  options.micro = true;
  options.synthetic_classes = 8;
  options.json_path = "-";
  std::ostringstream out, err;
  EXPECT_EQ(apps::msvlint::run_driver(options, out, err), 0);
  EXPECT_NE(out.str().find("msvlint-report-v2"), std::string::npos);
  EXPECT_NE(out.str().find("0 error(s)"), std::string::npos);

  // --json-v1 keeps the legacy schema available for downstream consumers.
  options.json_version = 1;
  std::ostringstream out1, err1;
  EXPECT_EQ(apps::msvlint::run_driver(options, out1, err1), 0);
  EXPECT_NE(out1.str().find("msvlint-report-v1"), std::string::npos);
}

TEST(Driver, BaselineWorkflowSuppressesSeededViolations) {
  const std::string dir = ::testing::TempDir();
  const std::string source_path = dir + "/leaky.msv";
  const std::string baseline_path = dir + "/msvlint-baseline.txt";
  {
    std::ofstream src(source_path);
    src << R"(
      class Secrets @Trusted {
        field pin;
        ctor(v) { this.pin = v; }
        method leak(s) { s.store(this.pin); }
      }
      class Sink @Untrusted {
        field v;
        ctor() { this.v = 0; }
        method store(x) { this.v = x; }
      }
      class Main @Untrusted {
        static method main() { sec = new Secrets(9); }
      }
      main Main;
    )";
  }
  apps::msvlint::DriverOptions options;
  options.dsl_paths = {source_path};
  options.write_baseline_path = baseline_path;
  std::ostringstream out1, err1;
  EXPECT_EQ(apps::msvlint::run_driver(options, out1, err1), 1)
      << "unsuppressed errors fail the run";
  EXPECT_NE(out1.str().find("MSV001"), std::string::npos);

  options.write_baseline_path.clear();
  options.baseline_path = baseline_path;
  std::ostringstream out2, err2;
  EXPECT_EQ(apps::msvlint::run_driver(options, out2, err2), 0)
      << "baselined findings no longer fail";
  EXPECT_NE(out2.str().find("suppressed"), std::string::npos);
}

TEST(Driver, ListRules) {
  apps::msvlint::DriverOptions options;
  options.list_rules = true;
  std::ostringstream out, err;
  EXPECT_EQ(apps::msvlint::run_driver(options, out, err), 0);
  EXPECT_NE(out.str().find("MSV001"), std::string::npos);
  EXPECT_NE(out.str().find("MSV007"), std::string::npos);
  EXPECT_NE(out.str().find("MSV010"), std::string::npos);
}

// ---- Value-granular trust analysis (DESIGN.md §15) -------------------------

// The canonical MSV010 fixture: `pin` holds enclave-confined key material,
// `note` only ever holds the constant the untrusted main passed in.
const char* kSecretsFixture = R"(
  class Secrets @Trusted {
    field pin;
    field note;
    ctor(v) { this.pin = @enclave_secret(1); this.note = v; }
  }
  class Main @Untrusted {
    static method main() { s = new Secrets(7); }
  }
  main Main;
)";

TEST(Trust, ConstStoresArePublicSecretIntrinsicIsSecret) {
  const analysis::TrustFacts facts =
      analysis::analyze_trust(parse(kSecretsFixture));
  EXPECT_TRUE(facts.converged);
  EXPECT_TRUE(analysis::trust_may_be_secret(facts.field("Secrets", 0)))
      << "enclave_secret() results are enclave-confined";
  EXPECT_EQ(facts.field("Secrets", 1), analysis::Trust::kPublic)
      << "a constant passed in from the untrusted side is public";
  EXPECT_EQ(facts.secret_classes(), std::set<std::string>{"Secrets"});
  EXPECT_EQ(facts.field("Nope", 0), analysis::Trust::kBottom);
}

TEST(Trust, DemotableTrustedFieldsAndPolicyPins) {
  const model::AppModel app = parse(kSecretsFixture);
  const auto demotable =
      analysis::analyze_trust(app).demotable_trusted_fields(app);
  ASSERT_EQ(demotable.size(), 1u);
  EXPECT_EQ(demotable[0], (analysis::FieldKey{"Secrets", 1}));

  // Policy-pinned fields model out-of-band provisioning the analysis
  // cannot see; a pinned field is never demotable.
  analysis::TrustOptions options;
  options.pinned_secret_fields = {"Secrets.note"};
  const auto facts = analysis::analyze_trust(app, options);
  EXPECT_TRUE(analysis::trust_may_be_secret(facts.field("Secrets", 1)));
  EXPECT_TRUE(facts.demotable_trusted_fields(app).empty());
}

TEST(Trust, InterproceduralReturnTrustFlowsThroughSummaries) {
  const model::AppModel app = parse(R"(
    class Vault @Trusted {
      field key;
      ctor() { this.key = @enclave_secret(2); }
      method get() { return this.key; }
    }
    class Holder @Trusted {
      field got;
      ctor(v) { this.got = v.get(); }
    }
    class Main @Untrusted {
      static method main() { h = new Holder(new Vault()); }
    }
    main Main;
  )");
  const analysis::TrustFacts facts = analysis::analyze_trust(app);
  EXPECT_TRUE(analysis::trust_may_be_secret(facts.field("Holder", 0)))
      << "Vault.get()'s secret return must reach Holder.got";
  const auto it = facts.context_summaries.find(
      analysis::TrustSummaryKey{"Vault", "get", "Vault"});
  ASSERT_NE(it, facts.context_summaries.end())
      << "monomorphic call site records a {Vault} receiver-set context";
  EXPECT_TRUE(analysis::trust_may_be_secret(it->second));
}

TEST(Trust, ReceiverSetContextsDoNotCrossPollute) {
  // K.echo is called twice: once through a monomorphic {K} receiver with a
  // public argument, once through a widened {K, L} receiver with a secret.
  // Summaries are keyed by the receiver-set context, so the wide call must
  // not pollute the monomorphic "K" summary.
  const model::AppModel app = parse(R"(
    class K @Trusted {
      field v;
      ctor() { this.v = 0; }
      method echo(x) { return x; }
    }
    class L @Trusted {
      field v;
      ctor() { this.v = 0; }
      method echo(x) { return x; }
    }
    class Main @Untrusted {
      static method main() {
        k = new K();
        p = k.echo(3);
        r = new K();
        if (p == 3) { r = new L(); }
        s = r.echo(@enclave_secret(9));
      }
    }
    main Main;
  )");
  const analysis::TrustFacts facts = analysis::analyze_trust(app);
  const auto& cs = facts.context_summaries;
  const auto mono = cs.find(analysis::TrustSummaryKey{"K", "echo", "K"});
  ASSERT_NE(mono, cs.end());
  EXPECT_EQ(mono->second, analysis::Trust::kPublic)
      << "the secret at the {K, L} site must not widen the {K} summary";
  const auto wide = cs.find(analysis::TrustSummaryKey{"K", "echo", "K|L"});
  ASSERT_NE(wide, cs.end());
  EXPECT_TRUE(analysis::trust_may_be_secret(wide->second));
  const auto wide_l = cs.find(analysis::TrustSummaryKey{"L", "echo", "K|L"});
  ASSERT_NE(wide_l, cs.end());
  EXPECT_TRUE(analysis::trust_may_be_secret(wide_l->second));
}

TEST(Trust, NativeBodiesAreOpaque) {
  const analysis::TrustFacts facts =
      analysis::analyze_trust(apps::synthetic::build_micro_app());
  // Driver's bodies are native lambdas: its own fields widen to kMixed...
  EXPECT_EQ(facts.field("Driver", 0), analysis::Trust::kMixed);
  // ...and Worker.set is a declared callee of native code, so it is
  // analyzed under the all-kMixed "*" context and Worker.value may carry
  // anything.
  EXPECT_TRUE(analysis::trust_may_be_secret(facts.field("Worker", 0)));
}

// ---- MSV010 golden fixture -------------------------------------------------

TEST(Lint, Msv010FlagsProvablyPublicTrustedFields) {
  const model::AppModel app = parse(kSecretsFixture);
  analysis::LintOptions options;
  options.trust_analysis = true;
  const auto report = analysis::lint(app, options);
  const auto diags = of_rule(report, "MSV010");
  ASSERT_EQ(diags.size(), 1u) << report.to_text();
  EXPECT_EQ(diags[0].severity, Severity::kInfo);
  EXPECT_EQ(diags[0].cls, "Secrets");
  EXPECT_EQ(diags[0].method, "note") << "the field rides the method slot";
  EXPECT_NE(diags[0].message.find("demotion candidate"), std::string::npos);
  EXPECT_TRUE(report.to_baseline().contains("MSV010 Secrets.note"));
  EXPECT_EQ(report.errors(), 0u) << "MSV010 is informational";
}

TEST(Lint, Msv010OffByDefaultAndRespectsPins) {
  const model::AppModel app = parse(kSecretsFixture);
  // Default LintOptions keep the historical rule set (the embedded
  // AppConfig::lint_partition gate must not grow new findings).
  EXPECT_TRUE(of_rule(analysis::lint(app), "MSV010").empty());

  analysis::LintOptions options;
  options.trust_analysis = true;
  options.trust.pinned_secret_fields = {"Secrets.note"};
  EXPECT_TRUE(of_rule(analysis::lint(app, options), "MSV010").empty());
}

// ---- Absint fixpoint convergence on loop-heavy CFGs ------------------------

TEST(AbsintConvergence, SimpleLoopReachesFixpoint) {
  // i = 0; while (i < 10) { i = i + 1; } return i;
  IrBuilder b;
  const std::int32_t head = b.new_label();
  const std::int32_t exit = b.new_label();
  b.locals(1)
      .const_val(Value(std::int32_t{0}))
      .store_local(0)
      .bind(head)
      .load_local(0)
      .const_val(Value(std::int32_t{10}))
      .lt()
      .branch_false(exit)
      .load_local(0)
      .const_val(Value(std::int32_t{1}))
      .add()
      .store_local(0)
      .jump(head)
      .bind(exit)
      .load_local(0)
      .ret();
  const auto result = analysis::analyze_method(b.build(), {});
  EXPECT_TRUE(result.errors.empty());
  EXPECT_FALSE(result.falls_off_end);
  EXPECT_EQ(result.return_value.kind, analysis::Kind::kI32);
  EXPECT_LE(result.block_visits, 12u)
      << "the back edge must stabilize after one re-visit, not oscillate";
}

TEST(AbsintConvergence, BackEdgeWidensKindInsteadOfOscillating) {
  // x starts i32 and becomes f64 inside the loop: the merge at the loop
  // head must widen the local's kind (to top) and terminate.
  IrBuilder b;
  const std::int32_t head = b.new_label();
  const std::int32_t exit = b.new_label();
  b.locals(1)
      .const_val(Value(std::int32_t{0}))
      .store_local(0)
      .bind(head)
      .load_local(0)
      .const_val(Value(std::int32_t{3}))
      .lt()
      .branch_false(exit)
      .load_local(0)
      .const_val(Value(0.5))
      .add()
      .store_local(0)
      .jump(head)
      .bind(exit)
      .load_local(0)
      .ret();
  const auto result = analysis::analyze_method(b.build(), {});
  EXPECT_TRUE(result.errors.empty());
  EXPECT_EQ(result.return_value.kind, analysis::Kind::kTop)
      << "i32 joined with f64 widens to top at the loop head";
  EXPECT_LE(result.block_visits, 16u);
}

TEST(AbsintConvergence, NestedLoopsConvergeWithBoundedVisits) {
  // s = 0; for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) s = s + 1;
  IrBuilder b;
  const std::int32_t outer = b.new_label();
  const std::int32_t inner = b.new_label();
  const std::int32_t inner_exit = b.new_label();
  const std::int32_t outer_exit = b.new_label();
  b.locals(3)
      .const_val(Value(std::int32_t{0}))
      .store_local(0)  // s
      .const_val(Value(std::int32_t{0}))
      .store_local(1)  // i
      .bind(outer)
      .load_local(1)
      .const_val(Value(std::int32_t{3}))
      .lt()
      .branch_false(outer_exit)
      .const_val(Value(std::int32_t{0}))
      .store_local(2)  // j
      .bind(inner)
      .load_local(2)
      .const_val(Value(std::int32_t{3}))
      .lt()
      .branch_false(inner_exit)
      .load_local(0)
      .const_val(Value(std::int32_t{1}))
      .add()
      .store_local(0)
      .load_local(2)
      .const_val(Value(std::int32_t{1}))
      .add()
      .store_local(2)
      .jump(inner)
      .bind(inner_exit)
      .load_local(1)
      .const_val(Value(std::int32_t{1}))
      .add()
      .store_local(1)
      .jump(outer)
      .bind(outer_exit)
      .load_local(0)
      .ret();
  const auto result = analysis::analyze_method(b.build(), {});
  EXPECT_TRUE(result.errors.empty());
  EXPECT_EQ(result.return_value.kind, analysis::Kind::kI32);
  EXPECT_LE(result.block_visits, 40u)
      << "chaotic iteration over a 2-deep loop nest stays bounded";
}

TEST(AbsintConvergence, LoopMergeDepthMismatchReportedOnceAndTerminates) {
  // Each trip around the loop pushes one operand, so the back edge carries
  // a deeper stack than the entry. The join truncates to the shallower
  // depth (keeping the analysis total), reports the merge exactly once,
  // and still reaches a fixpoint.
  IrBuilder b;
  const std::int32_t head = b.new_label();
  b.bind(head).const_val(Value(std::int32_t{1})).jump(head);
  const auto result = analysis::analyze_method(b.build(), {});
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].message.find("stack depth"), std::string::npos);
  EXPECT_LE(result.block_visits, 4u);
}

// ---- Call profiling (the optimizer's telemetry input) ----------------------

TEST(Profiling, CallCountsRecordProfiledEdges) {
  apps::synthetic::SyntheticSpec spec;
  spec.n_classes = 3;
  spec.extra_work_calls = 2;
  core::NativeApp native(apps::synthetic::generate(spec));
  native.context().enable_call_profiling();
  native.run_main();
  const auto profile =
      analysis::CallProfile::from_context(native.context());
  using MethodRef = analysis::CallProfile::MethodRef;
  const MethodRef main_ref{"Main", "main"};
  EXPECT_EQ(profile.edges.at({{"<entry>", ""}, main_ref}), 1u);
  EXPECT_EQ(profile.edges.at({main_ref, {"C0", "work"}}), 3u)
      << "one base call plus extra_work_calls";
  EXPECT_EQ(profile.invocation_counts().at({"C2", "work"}), 3u);
  EXPECT_GE(profile.class_edges().at({"Main", "C1"}), 3u);
  EXPECT_GE(profile.total_calls(), 10u);
}

// ---- Partition optimizer ---------------------------------------------------

// One untrusted Main driving a @Trusted class P with no secrets: the
// textbook demotion case.
model::AppModel make_hot_callee_app() {
  model::AppModel app;
  auto& p = app.add_class("P", Annotation::kTrusted);
  p.add_field("state");
  p.add_constructor(0).body(IrBuilder()
                                .locals(1)
                                .load_local(0)
                                .const_val(Value(std::int32_t{0}))
                                .put_field(0)
                                .ret_void()
                                .build());
  p.add_method("work", 0).body(IrBuilder().locals(1).ret_void().build());
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder()
                                                 .new_object("P", 0)
                                                 .call("work", 0)
                                                 .pop()
                                                 .ret_void()
                                                 .build());
  app.set_main_class("Main");
  app.validate();
  return app;
}

analysis::CallProfile hot_profile(std::uint64_t calls) {
  analysis::CallProfile profile;
  profile.edges[{{"Main", "main"}, {"P", "work"}}] = calls;
  return profile;
}

TEST(Optimizer, MovesHotSecretFreeCalleeOut) {
  const model::AppModel app = make_hot_callee_app();
  analysis::TrustFacts trust;
  trust.field_trust[{"P", 0}] = analysis::Trust::kPublic;
  const auto plan = analysis::optimize_partition(app, trust,
                                                 hot_profile(100),
                                                 CostModel::paper());
  ASSERT_NE(plan.find("P"), nullptr);
  EXPECT_EQ(plan.find("P")->after, Annotation::kUntrusted);
  EXPECT_EQ(plan.moved, std::vector<std::string>{"P"});
  EXPECT_EQ(plan.crossings_before, 100u);
  EXPECT_EQ(plan.crossings_after, 0u);
  EXPECT_LT(plan.modeled_cost_after, plan.modeled_cost_before);
  EXPECT_EQ(plan.find("Main")->after, Annotation::kUntrusted)
      << "the main class is always pinned untrusted";
  EXPECT_NE(plan.to_json().find("msvlint-partition-plan-v1"),
            std::string::npos);
}

TEST(Optimizer, SecretCarryingClassesArePinnedInside) {
  const model::AppModel app = make_hot_callee_app();
  analysis::TrustFacts trust;
  trust.field_trust[{"P", 0}] = analysis::Trust::kSecret;
  const auto plan = analysis::optimize_partition(app, trust,
                                                 hot_profile(100),
                                                 CostModel::paper());
  ASSERT_NE(plan.find("P"), nullptr);
  EXPECT_EQ(plan.find("P")->after, Annotation::kTrusted)
      << "no crossing saving justifies moving a secret out";
  EXPECT_FALSE(plan.changed());
  EXPECT_EQ(plan.crossings_after, plan.crossings_before);
}

TEST(Optimizer, PolicyPinsRespectedAndConflictsRejected) {
  const model::AppModel app = make_hot_callee_app();
  analysis::TrustFacts trust;
  trust.field_trust[{"P", 0}] = analysis::Trust::kPublic;
  analysis::PartitionPolicy policy;
  policy.pin_trusted = {"P"};
  const auto plan = analysis::optimize_partition(
      app, trust, hot_profile(100), CostModel::paper(), policy);
  EXPECT_EQ(plan.find("P")->after, Annotation::kTrusted);

  policy.pin_untrusted = {"P"};
  EXPECT_THROW(analysis::optimize_partition(app, trust, hot_profile(100),
                                            CostModel::paper(), policy),
               ConfigError);
}

TEST(Optimizer, MinGainRevertsMarginalPlans) {
  // Two trusted callees: S holds a secret and takes 100 crossings, P is
  // public with a single crossing. Moving P saves ~1% of the modeled
  // cost; a 50% min_gain gate must revert the plan.
  model::AppModel app;
  for (const char* name : {"P", "S"}) {
    auto& cls = app.add_class(name, Annotation::kTrusted);
    cls.add_field("state");
    cls.add_constructor(0).body(IrBuilder()
                                    .locals(1)
                                    .load_local(0)
                                    .const_val(Value(std::int32_t{0}))
                                    .put_field(0)
                                    .ret_void()
                                    .build());
    cls.add_method("work", 0).body(IrBuilder().locals(1).ret_void().build());
  }
  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0).body(IrBuilder()
                                                 .new_object("P", 0)
                                                 .call("work", 0)
                                                 .pop()
                                                 .new_object("S", 0)
                                                 .call("work", 0)
                                                 .pop()
                                                 .ret_void()
                                                 .build());
  app.set_main_class("Main");
  app.validate();

  analysis::TrustFacts trust;
  trust.field_trust[{"P", 0}] = analysis::Trust::kPublic;
  trust.field_trust[{"S", 0}] = analysis::Trust::kSecret;
  analysis::CallProfile profile;
  profile.edges[{{"Main", "main"}, {"P", "work"}}] = 1;
  profile.edges[{{"Main", "main"}, {"S", "work"}}] = 100;

  analysis::PartitionPolicy policy;
  const auto unrestricted = analysis::optimize_partition(
      app, trust, profile, CostModel::paper(), policy);
  EXPECT_EQ(unrestricted.moved, std::vector<std::string>{"P"});

  policy.min_gain = 0.5;
  const auto gated = analysis::optimize_partition(
      app, trust, profile, CostModel::paper(), policy);
  EXPECT_TRUE(gated.below_min_gain);
  EXPECT_FALSE(gated.changed());
  EXPECT_EQ(gated.crossings_after, gated.crossings_before);
  for (const auto& placement : gated.placements) {
    EXPECT_EQ(placement.after, placement.before);
  }
}

TEST(Optimizer, PlanDigestDeterministicAndSeedSensitive) {
  const model::AppModel app = make_hot_callee_app();
  analysis::TrustFacts trust;
  trust.field_trust[{"P", 0}] = analysis::Trust::kPublic;
  analysis::PartitionPolicy policy;
  const auto a = analysis::optimize_partition(app, trust, hot_profile(100),
                                              CostModel::paper(), policy);
  const auto b = analysis::optimize_partition(app, trust, hot_profile(100),
                                              CostModel::paper(), policy);
  EXPECT_EQ(a.digest, b.digest) << "same inputs, same plan digest";
  policy.seed = 1;
  const auto c = analysis::optimize_partition(app, trust, hot_profile(100),
                                              CostModel::paper(), policy);
  EXPECT_NE(a.digest, c.digest) << "the seed is folded into the digest";
  ASSERT_EQ(a.placements.size(), c.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].after, c.placements[i].after)
        << "the seed perturbs the digest, never the placement";
  }
}

TEST(Optimizer, PropertySecretsNeverLeaveTheEnclave) {
  // Property over seeded generator apps: whatever the profile says, every
  // class the trust analysis proves secret-carrying stays @Trusted, main
  // stays @Untrusted, and crossings never regress.
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    apps::synthetic::SyntheticSpec spec;
    spec.n_classes = 10;
    spec.untrusted_fraction = 0.2;
    spec.secret_fraction = 0.5;
    spec.extra_work_calls = 2;
    spec.seed = seed;
    const model::AppModel app = apps::synthetic::generate(spec);
    core::NativeApp native(app);
    native.context().enable_call_profiling();
    native.run_main();
    const auto profile =
        analysis::CallProfile::from_context(native.context());
    const auto facts = analysis::analyze_trust(app);
    const auto secret = facts.secret_classes();
    EXPECT_FALSE(secret.empty());
    const auto plan = analysis::optimize_partition(app, facts, profile,
                                                   CostModel::paper());
    for (const auto& placement : plan.placements) {
      if (placement.before == Annotation::kTrusted &&
          secret.count(placement.cls) != 0) {
        EXPECT_EQ(placement.after, Annotation::kTrusted)
            << placement.cls << " (seed " << seed << ")";
      }
    }
    EXPECT_EQ(plan.find("Main")->after, Annotation::kUntrusted);
    EXPECT_LE(plan.crossings_after, plan.crossings_before);
    const auto replay = analysis::optimize_partition(app, facts, profile,
                                                     CostModel::paper());
    EXPECT_EQ(plan.digest, replay.digest) << "seed " << seed;
  }
}

// ---- msvlint --fix: apply + replay-verify ----------------------------------

TEST(Driver, FixVerifiesByteIdenticalReplayAndReducesCrossings) {
  // The fig06-style workload: all classes trusted, a quarter holding real
  // secrets. --fix must move the secret-free classes out, replay both
  // partitions twice, and prove byte-identical results with fewer
  // crossings.
  apps::msvlint::DriverOptions options;
  options.synthetic_classes = 12;
  options.synthetic_untrusted = 0.0;
  options.synthetic_secret = 0.25;
  options.fix = true;
  options.quiet = true;
  std::ostringstream out, err;
  EXPECT_EQ(apps::msvlint::run_driver(options, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("byte-identical across 2+2 runs"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("% fewer"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace msv
