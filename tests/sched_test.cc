// Tests for the deterministic discrete-event scheduler (src/sched):
// FIFO ordering, exact sleep deadlines, join/suspend/wake semantics,
// cancellation unwinding, the WaitQueue condition-variable analog, and
// the detached clock mode the GC helper model builds on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "sgx/tcs.h"
#include "support/error.h"

namespace msv {
namespace {

struct SchedFixture : ::testing::Test {
  SchedFixture() : env(CostModel::paper(), nullptr) {}
  Env env;
};

using SchedulerTest = SchedFixture;

TEST_F(SchedulerTest, TasksRunInSpawnOrder) {
  sched::Scheduler sched(env);
  std::vector<int> order;
  sched.spawn("a", [&] { order.push_back(1); });
  sched.spawn("b", [&] { order.push_back(2); });
  sched.spawn("c", [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.stats().spawned, 3u);
  EXPECT_EQ(sched.stats().completed, 3u);
}

TEST_F(SchedulerTest, YieldInterleavesFifo) {
  sched::Scheduler sched(env);
  std::vector<std::string> order;
  for (const char* name : {"a", "b"}) {
    sched.spawn(name, [&, name] {
      for (int i = 0; i < 2; ++i) {
        order.push_back(std::string(name) + std::to_string(i));
        sched.yield();
      }
    });
  }
  sched.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"a0", "b0", "a1", "b1"}));
}

TEST_F(SchedulerTest, SchedulingChargesZeroCycles) {
  sched::Scheduler sched(env);
  sched.spawn("a", [&] {
    for (int i = 0; i < 100; ++i) sched.yield();
  });
  sched.spawn("b", [&] {
    for (int i = 0; i < 100; ++i) sched.yield();
  });
  sched.run();
  EXPECT_EQ(env.clock.now(), 0u)
      << "context switches are free on the simulated timeline";
}

TEST_F(SchedulerTest, SleepAdvancesClockExactly) {
  sched::Scheduler sched(env);
  sched.spawn("sleeper", [&] { sched.sleep_for(12'345); });
  sched.run();
  EXPECT_EQ(env.clock.now(), 12'345u);
  EXPECT_EQ(sched.stats().idle_advanced_cycles, 12'345u);
}

TEST_F(SchedulerTest, SleepersWakeInDeadlineOrderWithFifoTies) {
  sched::Scheduler sched(env);
  std::vector<std::string> order;
  sched.spawn("late", [&] {
    sched.sleep_for(200);
    order.push_back("late");
  });
  sched.spawn("tie1", [&] {
    sched.sleep_for(100);
    order.push_back("tie1");
  });
  sched.spawn("tie2", [&] {
    sched.sleep_for(100);
    order.push_back("tie2");
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<std::string>{"tie1", "tie2", "late"}));
  EXPECT_EQ(env.clock.now(), 200u);
}

TEST_F(SchedulerTest, JoinBlocksUntilTargetFinishes) {
  sched::Scheduler sched(env);
  bool child_done = false;
  sched.spawn("parent", [&] {
    const sched::TaskId child = sched.spawn("child", [&] {
      sched.sleep_for(1'000);
      child_done = true;
    });
    sched.join(child);
    EXPECT_TRUE(child_done);
  });
  sched.run();
  EXPECT_TRUE(child_done);
}

TEST_F(SchedulerTest, WakeUnblocksSuspendedTask) {
  sched::Scheduler sched(env);
  bool resumed = false;
  const sched::TaskId waiter = sched.spawn("waiter", [&] {
    sched.suspend();
    resumed = true;
  });
  sched.spawn("waker", [&] { sched.wake(waiter); });
  sched.run();
  EXPECT_TRUE(resumed);
}

TEST_F(SchedulerTest, WakeWhileRunnableIsLatched) {
  sched::Scheduler sched(env);
  bool resumed = false;
  sched::TaskId waiter = sched::kNoTask;
  waiter = sched.spawn("waiter", [&] {
    // The wake below arrives while this task is READY — before this
    // suspend. It must be latched and consume the suspend, or the wakeup
    // is lost and the scheduler deadlocks.
    sched.yield();
    sched.suspend();
    resumed = true;
  });
  sched.spawn("waker", [&] { sched.wake(waiter); });
  sched.run();
  EXPECT_TRUE(resumed);
}

TEST_F(SchedulerTest, WakeCutsSleepShort) {
  sched::Scheduler sched(env);
  const sched::TaskId sleeper =
      sched.spawn("sleeper", [&] { sched.sleep_for(1'000'000); });
  sched.spawn("waker", [&] {
    sched.sleep_for(10);
    sched.wake(sleeper);
  });
  sched.run();
  EXPECT_EQ(env.clock.now(), 10u) << "the long sleep never ran to deadline";
}

// ---- Pre-suspension hook (the batching RMI layer's flush point) -----------

TEST_F(SchedulerTest, SuspendHookFiresBeforeYieldAndSleep) {
  sched::Scheduler sched(env);
  std::vector<std::string> events;
  sched.set_suspend_hook([&] { events.push_back("hook"); });
  sched.spawn("a", [&] {
    events.push_back("pre-yield");
    sched.yield();
    events.push_back("pre-sleep");
    sched.sleep_for(100);
    events.push_back("done");
  });
  sched.run();
  EXPECT_EQ(events, (std::vector<std::string>{"pre-yield", "hook",
                                              "pre-sleep", "hook", "done"}));
}

TEST_F(SchedulerTest, SuspendHookFiresOnSuspendAndJoin) {
  sched::Scheduler sched(env);
  int fires = 0;
  sched.set_suspend_hook([&] { ++fires; });
  const sched::TaskId worker = sched.spawn("w", [&] { sched.suspend(); });
  sched.spawn("waker", [&] {
    sched.wake(worker);
    sched.join(worker);  // parks through suspend() -> hook
  });
  sched.run();
  EXPECT_EQ(fires, 2);
}

TEST_F(SchedulerTest, SuspendHookIsReentrancyGuarded) {
  sched::Scheduler sched(env);
  int fires = 0;
  sched.set_suspend_hook([&] {
    ++fires;
    // A hook that itself suspends (the batch flush's bridge transition
    // sleeps through charge_transition) must not re-fire.
    sched.sleep_for(10);
  });
  sched.spawn("a", [&] { sched.yield(); });
  sched.run();
  EXPECT_EQ(fires, 1);
}

TEST_F(SchedulerTest, SuspendHookNeverFiresOutsideTasks) {
  sched::Scheduler sched(env);
  int fires = 0;
  sched.set_suspend_hook([&] { ++fires; });
  sched.spawn("a", [&] { sched.yield(); });
  sched.run();
  // Only the in-task yield fired it; clearing stops further firings.
  EXPECT_EQ(fires, 1);
  sched.set_suspend_hook(nullptr);
  sched.spawn("b", [&] { sched.yield(); });
  sched.run();
  EXPECT_EQ(fires, 1);
}

TEST_F(SchedulerTest, DeadlockIsReportedNotHung) {
  sched::Scheduler sched(env);
  sched.spawn("stuck", [&] { sched.suspend(); });
  EXPECT_THROW(sched.run(), RuntimeFault);
}

TEST_F(SchedulerTest, DaemonsDoNotKeepRunAlive) {
  sched::Scheduler sched(env);
  sched.spawn_daemon("daemon", [&] {
    for (;;) sched.suspend();
  });
  sched.spawn("work", [&] { sched.sleep_for(5); });
  sched.run();  // returns despite the parked daemon
  EXPECT_EQ(env.clock.now(), 5u);
  EXPECT_EQ(sched.live_tasks(), 0u);
}

TEST_F(SchedulerTest, TaskExceptionPropagatesOutOfRun) {
  sched::Scheduler sched(env);
  sched.spawn("thrower", [] { throw RuntimeFault("boom"); });
  EXPECT_THROW(sched.run(), RuntimeFault);
}

TEST_F(SchedulerTest, CancellationUnwindsFiberStacks) {
  auto sched = std::make_unique<sched::Scheduler>(env);
  // The destructor-observing object lives on the fiber stack; TaskCancelled
  // must unwind through it.
  auto destroyed = std::make_shared<bool>(false);
  struct Sentinel {
    std::shared_ptr<bool> flag;
    ~Sentinel() { *flag = true; }
  };
  sched->spawn_daemon("parked", [&, destroyed] {
    Sentinel s{destroyed};
    for (;;) sched->suspend();
  });
  sched->spawn("kick", [] {});
  sched->run();
  EXPECT_FALSE(*destroyed) << "daemon still parked after run()";
  sched.reset();  // destructor cancels
  EXPECT_TRUE(*destroyed) << "cancellation ran the fiber's destructors";
}

TEST_F(SchedulerTest, WaitQueueIsFifoAndRobustToSpuriousWakes) {
  sched::Scheduler sched(env);
  sched::WaitQueue q(sched);
  std::vector<int> order;
  sched::TaskId first = sched::kNoTask;
  for (int i = 0; i < 3; ++i) {
    const sched::TaskId id = sched.spawn("w" + std::to_string(i), [&, i] {
      q.wait();
      order.push_back(i);
    });
    if (i == 0) first = id;
  }
  sched.spawn("notifier", [&] {
    sched.yield();  // let all three park
    // A direct wake is spurious for a WaitQueue waiter: the task must
    // re-park until a notify actually removes it from the queue.
    sched.wake(first);
    sched.yield();
    EXPECT_EQ(q.waiters(), 3u);
    q.notify_one();
    q.notify_all();
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(SchedulerTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Env env(CostModel::paper(), nullptr);
    sched::Scheduler sched(env);
    std::vector<std::string> order;
    for (int t = 0; t < 4; ++t) {
      sched.spawn("t" + std::to_string(t), [&, t] {
        for (int i = 0; i < 3; ++i) {
          sched.sleep_for(static_cast<Cycles>(100 * (t + 1)));
          order.push_back(std::to_string(t) + "." + std::to_string(i));
        }
      });
    }
    sched.run();
    return std::pair(order, env.clock.now());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---- VirtualClock::measure_detached (the GC helper-thread model) -----------

TEST_F(SchedulerTest, MeasureDetachedCapturesWithoutAdvancing) {
  const Cycles before = env.clock.now();
  const Cycles cost = env.clock.measure_detached([&] {
    env.clock.advance(5'000);
    env.clock.advance(2'500);
  });
  EXPECT_EQ(cost, 7'500u);
  EXPECT_EQ(env.clock.now(), before) << "detached work is off-timeline";
}

TEST_F(SchedulerTest, MeasureDetachedNests) {
  const Cycles outer = env.clock.measure_detached([&] {
    env.clock.advance(100);
    const Cycles inner = env.clock.measure_detached([&] {
      env.clock.advance(40);
    });
    EXPECT_EQ(inner, 40u);
    env.clock.advance(1);
  });
  EXPECT_EQ(outer, 141u);
  EXPECT_EQ(env.clock.now(), 0u);
}

TEST_F(SchedulerTest, MeasureDetachedDefersTimers) {
  bool fired = false;
  env.clock.schedule_at(50, [&] { fired = true; });
  const Cycles cost = env.clock.measure_detached([&] {
    env.clock.advance(1'000);
  });
  EXPECT_EQ(cost, 1'000u);
  EXPECT_FALSE(fired) << "timers do not fire on the detached core";
  env.clock.advance(50);
  EXPECT_TRUE(fired);
}

// ---- TCS pool queueing under the scheduler (DESIGN.md §8) ------------------
//
// The pool's wakeup protocol parks waiters on the scheduler, so its FIFO
// and attribution contracts are really scheduler contracts — pinned here
// with the pool driven directly (no bridge), where the interleavings are
// explicit.

TEST_F(SchedulerTest, TcsPendingGrantDoesNotCloseTheFastPath) {
  // Regression (stress_tcs bursty-arrival find): a slot handed to a
  // queued waiter is counted in in_use_ from the instant of the grant,
  // but before the fix acquire()'s fast path also required
  // granted_.empty() — so a caller arriving while a grant sat unclaimed
  // (e.g. the queue drained during another task's nested ocall) queued
  // behind an unrelated future release even though a slot was genuinely
  // free. Timeline: A and B hold both slots until t=1000; C queues at
  // t=1; at t=1000 A's release grants C (unclaimed — C resumes last),
  // B's release frees a slot, and D's acquire at the same instant must
  // take that free slot without queueing.
  sched::Scheduler sched(env);
  sgx::TcsPool pool(env, sgx::TcsConfig{2, sgx::TcsConfig::OnExhaustion::kBlock});
  pool.attach_scheduler(&sched);
  for (const char* name : {"a", "b"}) {
    sched.spawn(name, [&] {
      pool.acquire();
      sched.sleep_for(1'000);
      pool.release();
    });
  }
  sched.spawn("c", [&] {
    sched.sleep_for(1);
    pool.acquire();  // queues: both slots held until t=1000
    sched.sleep_for(5'000);
    pool.release();
  });
  Cycles d_acquired_at = 0;
  sched.spawn("d", [&] {
    sched.sleep_for(1'000);
    pool.acquire();  // a slot is free; C's grant must not push D into the queue
    d_acquired_at = env.clock.now();
    sched.sleep_for(5'000);
    pool.release();
  });
  sched.run();
  EXPECT_EQ(pool.stats().acquisitions, 4u);
  EXPECT_EQ(pool.stats().waits, 1u) << "only C queued; D hit the fast path";
  EXPECT_EQ(pool.stats().wait_cycles, 999u)
      << "C's wait (t=1 .. t=1000) is the only queueing delay — D waiting "
         "for C's release would have inflated this by ~5000";
  EXPECT_EQ(d_acquired_at, 1'000u) << "D acquired the free slot immediately";
}

TEST_F(SchedulerTest, TcsWaitersWakeFifoWithExactAttribution) {
  // Three callers queue behind a single slot in arrival order; grants
  // must come back in the same order, and each waiter's queueing delay
  // lands in wait_cycles exactly (arrival -> grant claim, no rounding).
  sched::Scheduler sched(env);
  sgx::TcsPool pool(env, sgx::TcsConfig{1, sgx::TcsConfig::OnExhaustion::kBlock});
  pool.attach_scheduler(&sched);
  std::vector<std::string> grant_order;
  sched.spawn("holder", [&] {
    pool.acquire();
    sched.sleep_for(1'000);
    pool.release();
  });
  for (const char* name : {"w1", "w2", "w3"}) {
    sched.spawn(name, [&, name] {
      pool.acquire();
      grant_order.push_back(name);
      sched.sleep_for(100);
      pool.release();
    });
  }
  sched.run();
  EXPECT_EQ(grant_order, (std::vector<std::string>{"w1", "w2", "w3"}));
  EXPECT_EQ(pool.stats().waits, 3u);
  EXPECT_EQ(pool.stats().max_waiters, 3u);
  // w1 waited 0..1000, w2 0..1100, w3 0..1200.
  EXPECT_EQ(pool.stats().wait_cycles, 1'000u + 1'100u + 1'200u);
}

}  // namespace
}  // namespace msv
