// Tests for src/transform: bytecode transformer, reachability analysis and
// image builder (pruning, measurement, TCB accounting).
#include <gtest/gtest.h>

#include "apps/illustrative/bank.h"
#include "transform/image_builder.h"
#include "transform/reachability.h"
#include "transform/transformer.h"

namespace msv::xform {
namespace {

using model::Annotation;
using model::MethodKind;

TransformResult transform_bank() {
  return BytecodeTransformer().transform(apps::build_bank_app());
}

TEST(Transformer, NamesFollowThePaper) {
  EXPECT_EQ(relay_method_name("updateBalance"), "relay$updateBalance");
  EXPECT_EQ(relay_method_name("<init>"), "relay$init");
  EXPECT_EQ(transition_name("Account", "updateBalance", true),
            "ecall_relay_Account_updateBalance");
  EXPECT_EQ(transition_name("Person", "transfer", false),
            "ocall_relay_Person_transfer");
}

TEST(Transformer, TrustedSetHasConcreteTrustedAndProxyUntrusted) {
  const TransformResult r = transform_bank();
  const auto& account = r.trusted.cls("Account");
  EXPECT_FALSE(account.is_proxy());
  EXPECT_EQ(account.fields().size(), 2u);

  const auto& person = r.trusted.cls("Person");
  EXPECT_TRUE(person.is_proxy());
  ASSERT_EQ(person.fields().size(), 1u);
  EXPECT_EQ(person.fields()[0].name, "hash");
}

TEST(Transformer, UntrustedSetIsTheMirrorImage) {
  const TransformResult r = transform_bank();
  EXPECT_TRUE(r.untrusted.cls("Account").is_proxy());
  EXPECT_FALSE(r.untrusted.cls("Person").is_proxy());
  EXPECT_EQ(r.untrusted.main_class(), "Main");
  EXPECT_TRUE(r.trusted.main_class().empty())
      << "main lives in the untrusted image (§5.3)";
}

TEST(Transformer, ProxyMethodsAreStubsToTheRightTransitions) {
  const TransformResult r = transform_bank();
  const auto& account_proxy = r.untrusted.cls("Account");
  const auto* update = account_proxy.find_method("updateBalance");
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->kind(), MethodKind::kProxyStub);
  EXPECT_TRUE(update->proxy().via_ecall);
  EXPECT_EQ(update->proxy().relay_name, "ecall_relay_Account_updateBalance");

  const auto& person_proxy = r.trusted.cls("Person");
  const auto* transfer = person_proxy.find_method("transfer");
  ASSERT_NE(transfer, nullptr);
  EXPECT_FALSE(transfer->proxy().via_ecall) << "untrusted target -> ocall";
}

TEST(Transformer, RelayMethodsAddedToConcreteClasses) {
  const TransformResult r = transform_bank();
  const auto& account = r.trusted.cls("Account");
  const auto* relay = account.find_method("relay$updateBalance");
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->kind(), MethodKind::kRelay);
  EXPECT_TRUE(relay->is_static()) << "@CEntryPoint methods must be static";
  EXPECT_EQ(relay->relay().target_method, "updateBalance");
  // Constructor relay exists too (Listing 4's relayAccount).
  EXPECT_NE(account.find_method("relay$init"), nullptr);
}

TEST(Transformer, NeutralClassesUntouched) {
  model::AppModel app = apps::build_bank_app();
  app.add_class("StringUtils", Annotation::kNeutral)
      .add_static_method("pad", 1)
      .body(model::IrBuilder().load_local(0).ret().build());
  const TransformResult r = BytecodeTransformer().transform(app);
  for (const auto* set : {&r.trusted, &r.untrusted}) {
    const auto& c = set->cls("StringUtils");
    EXPECT_FALSE(c.is_proxy());
    EXPECT_EQ(c.find_method("pad")->kind(), MethodKind::kIr);
    EXPECT_EQ(c.find_method("relay$pad"), nullptr)
        << "neutral classes get no relays";
  }
}

TEST(Transformer, PrivateMethodsStrippedFromProxies) {
  model::AppModel app;
  auto& secret = app.add_class("Secret", Annotation::kTrusted);
  secret.add_constructor(0).body(model::IrBuilder().ret_void().build());
  secret.add_method("internal", 0).set_private().body(
      model::IrBuilder().ret_void().build());
  secret.add_method("api", 0).body(model::IrBuilder().ret_void().build());
  app.add_class("Main", Annotation::kUntrusted)
      .add_static_method("main", 0)
      .body(model::IrBuilder().ret_void().build());
  app.set_main_class("Main");

  const TransformResult r = BytecodeTransformer().transform(app);
  const auto& proxy = r.untrusted.cls("Secret");
  EXPECT_EQ(proxy.find_method("internal"), nullptr);
  EXPECT_NE(proxy.find_method("api"), nullptr);
}

TEST(Transformer, DefaultConstructorSynthesized) {
  model::AppModel app;
  auto& t = app.add_class("NoCtor", Annotation::kTrusted);
  t.add_method("work", 0).body(model::IrBuilder().ret_void().build());
  app.add_class("Main", Annotation::kUntrusted)
      .add_static_method("main", 0)
      .body(model::IrBuilder().ret_void().build());
  app.set_main_class("Main");
  const TransformResult r = BytecodeTransformer().transform(app);
  EXPECT_NE(r.trusted.cls("NoCtor").find_method("relay$init"), nullptr);
  EXPECT_NE(r.untrusted.cls("NoCtor").find_method(model::kConstructorName),
            nullptr);
}

TEST(Transformer, EdlListsEveryTransition) {
  const TransformResult r = transform_bank();
  EXPECT_TRUE(r.edl.has_ecall("ecall_relay_Account_updateBalance"));
  EXPECT_TRUE(r.edl.has_ecall("ecall_relay_Account_init"));
  EXPECT_TRUE(r.edl.has_ecall("ecall_relay_AccountRegistry_addAccount"));
  EXPECT_TRUE(r.edl.has_ocall("ocall_relay_Person_transfer"));
  EXPECT_TRUE(r.edl.has_ocall("ocall_relay_Main_main"));
  const std::string text = r.edl.to_edl_text();
  EXPECT_NE(text.find("trusted {"), std::string::npos);
}

TEST(Transformer, RejectsAlreadyTransformedInput) {
  const TransformResult r = transform_bank();
  EXPECT_THROW(BytecodeTransformer().transform(r.trusted), Error);
}

TEST(Reachability, WalksCallAndNewEdges) {
  const model::AppModel app = apps::build_bank_app();
  ReachabilityAnalysis analysis(app);
  const auto result = analysis.analyze({{"Main", "main"}});
  EXPECT_TRUE(result.method_reachable("Person", "transfer"));
  EXPECT_TRUE(result.method_reachable("Account", "updateBalance"));
  EXPECT_TRUE(result.class_reachable("AccountRegistry"));
  EXPECT_TRUE(result.instantiated.count("Person"));
}

TEST(Reachability, NativeCalleeHintsFollowed) {
  const model::AppModel app = apps::build_bank_app();
  ReachabilityAnalysis analysis(app);
  // addAccount is native; its declared callee Account.updateBalance must
  // become reachable even with no bytecode edge.
  const auto result = analysis.analyze({{"AccountRegistry", "addAccount"}});
  EXPECT_TRUE(result.method_reachable("Account", "updateBalance"));
}

TEST(Reachability, UnknownEntryPointThrows) {
  const model::AppModel app = apps::build_bank_app();
  ReachabilityAnalysis analysis(app);
  EXPECT_THROW(analysis.analyze({{"Ghost", "main"}}), ConfigError);
}

TEST(Reachability, UnreachableMethodNotMarked) {
  model::AppModel app;
  auto& c = app.add_class("C");
  c.add_method("used", 0).body(model::IrBuilder().ret_void().build());
  c.add_method("unused", 0).body(model::IrBuilder().ret_void().build());
  auto& m = app.add_class("Main");
  m.add_static_method("main", 0)
      .body(model::IrBuilder()
                .new_object("C", 0)
                .call("used", 0)
                .pop()
                .ret_void()
                .build());
  app.set_main_class("Main");
  const auto result = ReachabilityAnalysis(app).analyze({{"Main", "main"}});
  EXPECT_TRUE(result.method_reachable("C", "used"));
  EXPECT_FALSE(result.method_reachable("C", "unused"));
}

TEST(ImageBuilder, PrunesUnreachableProxies) {
  const TransformResult r = transform_bank();
  const NativeImage trusted = ImageBuilder().build(r.trusted, true);
  // §5.3: "proxy class Person will not be included inside the trusted
  // image since it is not reachable from any of the trusted classes."
  EXPECT_EQ(trusted.classes.find_class("Person"), nullptr);
  EXPECT_GE(trusted.pruned_proxy_count, 1u);
  EXPECT_NE(trusted.classes.find_class("Account"), nullptr);
}

TEST(ImageBuilder, UntrustedImageKeepsReachableProxies) {
  const TransformResult r = transform_bank();
  const NativeImage untrusted = ImageBuilder().build(r.untrusted, false);
  EXPECT_NE(untrusted.classes.find_class("Account"), nullptr);
  EXPECT_TRUE(untrusted.classes.cls("Account").is_proxy());
  EXPECT_NE(untrusted.classes.find_class("Main"), nullptr);
}

TEST(ImageBuilder, EntryPointsFollowSection53) {
  const TransformResult r = transform_bank();
  const NativeImage trusted = ImageBuilder().build(r.trusted, true);
  for (const auto& [cls, method] : trusted.entry_points) {
    EXPECT_EQ(method.rfind("relay$", 0), 0u)
        << "trusted entry points are relay methods, got " << cls << "."
        << method;
  }
  const NativeImage untrusted = ImageBuilder().build(r.untrusted, false);
  const bool has_main =
      std::any_of(untrusted.entry_points.begin(), untrusted.entry_points.end(),
                  [](const MethodRef& m) { return m.second == "main"; });
  EXPECT_TRUE(has_main);
}

TEST(ImageBuilder, MeasurementIsStableAndTamperSensitive) {
  const TransformResult r1 = transform_bank();
  const TransformResult r2 = transform_bank();
  const NativeImage a = ImageBuilder().build(r1.trusted, true);
  const NativeImage b = ImageBuilder().build(r2.trusted, true);
  EXPECT_EQ(a.measure(), b.measure()) << "same input -> same MRENCLAVE";

  NativeImage tampered = ImageBuilder().build(r1.trusted, true);
  tampered.code_bytes ^= 1;
  EXPECT_NE(tampered.measure(), a.measure());
}

TEST(ImageBuilder, SizeAccountingAddsUp) {
  const TransformResult r = transform_bank();
  const NativeImage img = ImageBuilder().build(r.trusted, true);
  EXPECT_GT(img.code_bytes, 0u);
  EXPECT_EQ(img.total_bytes(),
            img.code_bytes + img.runtime_code_bytes + img.image_heap_bytes);
  EXPECT_GT(img.method_count(), 0u);
}

TEST(ImageBuilder, ImageWithoutEntryPointsIsEmpty) {
  // An application with no @Trusted classes yields an empty (but valid)
  // trusted image.
  model::AppModel set;
  set.add_class("Lonely");
  const NativeImage img = ImageBuilder().build(set, true);
  EXPECT_EQ(img.class_count(), 0u);
  EXPECT_EQ(img.code_bytes, 0u);
}

TEST(ImageBuilder, ProxyClassesPrunedAtClassGranularityOnly) {
  const TransformResult r = transform_bank();
  const NativeImage untrusted = ImageBuilder().build(r.untrusted, false);
  // main never calls getBalance, but the Account proxy keeps the stub:
  // proxies expose the same methods as the original class (§5.2).
  const auto& proxy = untrusted.classes.cls("Account");
  EXPECT_NE(proxy.find_method("getBalance"), nullptr);
}

}  // namespace
}  // namespace msv::xform
