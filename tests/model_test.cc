// Tests for src/model: IR builder, app model construction and validation.
#include <gtest/gtest.h>

#include "apps/illustrative/bank.h"
#include "model/app_model.h"
#include "model/ir.h"
#include "support/error.h"

namespace msv::model {
namespace {

TEST(IrBuilder, EmitsInstructionsInOrder) {
  IrBody body = IrBuilder()
                    .locals(2)
                    .load_local(1)
                    .const_val(rt::Value(std::int32_t{5}))
                    .add()
                    .ret()
                    .build();
  ASSERT_EQ(body.code.size(), 4u);
  EXPECT_EQ(body.code[0].op, Op::kLoadLocal);
  EXPECT_EQ(body.code[0].a, 1);
  EXPECT_EQ(body.code[1].op, Op::kConst);
  EXPECT_EQ(body.consts.size(), 1u);
  EXPECT_EQ(body.code[2].op, Op::kAdd);
  EXPECT_EQ(body.code[3].op, Op::kReturn);
  EXPECT_EQ(body.local_count, 2u);
}

TEST(IrBuilder, InternsNames) {
  IrBody body = IrBuilder()
                    .new_object("Account", 0)
                    .call("getBalance", 0)
                    .new_object("Account", 1)
                    .build();
  EXPECT_EQ(body.names.size(), 2u);
  EXPECT_EQ(body.code[0].a, body.code[2].a) << "same class, same pool index";
}

TEST(IrBuilder, LabelsResolveForwardAndBackward) {
  IrBuilder b;
  const auto top = b.new_label();
  const auto end = b.new_label();
  b.bind(top)
      .load_local(0)
      .branch_false(end)
      .jump(top)
      .bind(end)
      .ret_void();
  IrBody body = b.build();
  EXPECT_EQ(body.code[1].op, Op::kBranchFalse);
  EXPECT_EQ(body.code[1].a, 3) << "forward label -> pc after jump";
  EXPECT_EQ(body.code[2].op, Op::kJump);
  EXPECT_EQ(body.code[2].a, 0) << "backward label -> loop head";
}

TEST(IrBuilder, UnboundLabelThrows) {
  IrBuilder b;
  const auto l = b.new_label();
  b.jump(l);
  EXPECT_THROW(b.build(), RuntimeFault);
}

TEST(AppModel, FieldAndMethodLookup) {
  AppModel app;
  ClassDecl& c = app.add_class("C");
  c.add_field("x");
  c.add_field("y");
  EXPECT_EQ(c.field_index("x"), 0);
  EXPECT_EQ(c.field_index("y"), 1);
  EXPECT_EQ(c.field_index("z"), -1);
  c.add_method("m", 2);
  EXPECT_NE(c.find_method("m"), nullptr);
  EXPECT_EQ(c.find_method("nope"), nullptr);
  EXPECT_EQ(app.find_class("D"), nullptr);
  EXPECT_THROW(app.cls("D"), ConfigError);
}

TEST(AppModel, DuplicatesRejected) {
  AppModel app;
  app.add_class("C");
  EXPECT_THROW(app.add_class("C"), ConfigError);
  ClassDecl& c = app.cls("C");
  c.add_method("m", 0);
  EXPECT_THROW(c.add_method("m", 1), ConfigError) << "no overloading";
  c.add_field("f");
  EXPECT_THROW(c.add_field("f"), RuntimeFault);
}

TEST(AppModel, EncapsulationEnforcedForAnnotatedClasses) {
  AppModel app;
  ClassDecl& t = app.add_class("T", Annotation::kTrusted);
  t.add_field("leaky", /*is_private=*/false);
  EXPECT_THROW(app.validate(), ConfigError);
}

TEST(AppModel, PublicFieldsFineOnNeutralClasses) {
  AppModel app;
  ClassDecl& n = app.add_class("N", Annotation::kNeutral);
  n.add_field("shared", /*is_private=*/false);
  app.validate();  // no throw
}

TEST(AppModel, MainMustBeStaticPublicAndNotTrusted) {
  {
    AppModel app;
    app.add_class("Main").add_method("main", 0);  // not static
    app.set_main_class("Main");
    EXPECT_THROW(app.validate(), ConfigError);
  }
  {
    AppModel app;
    app.add_class("Main", Annotation::kTrusted).add_static_method("main", 0);
    app.set_main_class("Main");
    EXPECT_THROW(app.validate(), ConfigError)
        << "SGX applications begin in the untrusted runtime";
  }
  {
    AppModel app;
    app.set_main_class("Ghost");
    EXPECT_THROW(app.validate(), ConfigError);
  }
}

TEST(AppModel, ConstructorConvenience) {
  AppModel app;
  ClassDecl& c = app.add_class("C");
  MethodDecl& ctor = c.add_constructor(1);
  EXPECT_TRUE(ctor.is_constructor());
  EXPECT_EQ(ctor.name(), kConstructorName);
}

TEST(AppModel, CodeBytesReflectBodyKind) {
  AppModel app;
  ClassDecl& c = app.add_class("C");
  MethodDecl& ir = c.add_method("ir_method", 0);
  ir.body(IrBuilder().ret_void().build());
  MethodDecl& native = c.add_method("native_method", 0);
  native.body_native([](NativeCall&) { return rt::Value(); }).code_size(4096);
  EXPECT_LT(ir.code_bytes(), native.code_bytes());
  EXPECT_EQ(native.code_bytes(), 4096u);
}

TEST(BankApp, BuildsAndValidates) {
  const AppModel app = apps::build_bank_app(/*with_audit=*/true);
  EXPECT_EQ(app.classes().size(), 6u);
  EXPECT_EQ(app.cls("Account").annotation(), Annotation::kTrusted);
  EXPECT_EQ(app.cls("Person").annotation(), Annotation::kUntrusted);
  EXPECT_EQ(app.main_class(), "Main");
}

}  // namespace
}  // namespace msv::model
