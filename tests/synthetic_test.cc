// Tests for src/apps/synthetic: the §6.5 program generator and the
// micro-benchmark models.
#include <gtest/gtest.h>

#include "apps/synthetic/generator.h"
#include "core/montsalvat.h"

namespace msv::apps::synthetic {
namespace {

TEST(Generator, ClassCountAndAnnotationSplit) {
  SyntheticSpec spec;
  spec.n_classes = 40;
  spec.untrusted_fraction = 0.25;
  const model::AppModel app = generate(spec);
  // 40 generated classes + Main.
  EXPECT_EQ(app.classes().size(), 41u);
  std::uint32_t untrusted = 0;
  for (const auto& c : app.classes()) {
    if (c.name() == "Main") continue;
    if (c.annotation() == model::Annotation::kUntrusted) ++untrusted;
  }
  EXPECT_EQ(untrusted, 10u);
}

TEST(Generator, FractionBoundsChecked) {
  SyntheticSpec spec;
  spec.untrusted_fraction = 1.5;
  EXPECT_THROW(generate(spec), Error);
}

TEST(Generator, DeterministicForSameSeed) {
  SyntheticSpec spec;
  spec.n_classes = 20;
  spec.untrusted_fraction = 0.5;
  const auto a = generate(spec);
  const auto b = generate(spec);
  for (std::size_t i = 0; i < a.classes().size(); ++i) {
    EXPECT_EQ(a.classes()[i].annotation(), b.classes()[i].annotation());
  }
}

TEST(Generator, CpuVariantRunsEndToEnd) {
  SyntheticSpec spec;
  spec.n_classes = 6;
  spec.untrusted_fraction = 0.5;
  spec.work = WorkKind::kCpu;
  spec.fft_mb = 1;
  core::PartitionedApp app(generate(spec));
  app.run_main();
  EXPECT_GT(app.now_seconds(), 0.0);
  EXPECT_GT(app.bridge().stats().ecalls, 0u) << "trusted classes were driven";
}

TEST(Generator, IoVariantWritesFiles) {
  SyntheticSpec spec;
  spec.n_classes = 6;
  spec.untrusted_fraction = 0.5;
  spec.work = WorkKind::kIo;
  core::PartitionedApp app(generate(spec));
  app.run_main();
  std::size_t files = 0;
  for (const auto& path : app.env().fs->list("out_")) {
    (void)path;
    ++files;
  }
  EXPECT_EQ(files, 6u);
  EXPECT_GT(app.bridge().stats().ocalls, 0u)
      << "in-enclave writers relay through the shim";
}

TEST(Generator, MoreUntrustedClassesRunFaster) {
  // The heart of Fig. 6: moving classes out of the enclave reduces total
  // runtime for both workload kinds.
  for (const WorkKind kind : {WorkKind::kCpu, WorkKind::kIo}) {
    auto run = [&](double fraction) {
      SyntheticSpec spec;
      spec.n_classes = 10;
      spec.untrusted_fraction = fraction;
      spec.work = kind;
      core::PartitionedApp app(generate(spec));
      app.run_main();
      return app.now_seconds();
    };
    const double all_trusted = run(0.0);
    const double all_untrusted = run(1.0);
    EXPECT_LT(all_untrusted, all_trusted)
        << (kind == WorkKind::kCpu ? "cpu" : "io");
  }
}

TEST(MicroApp, BuildsAndDrives) {
  const model::AppModel app_model = build_micro_app();
  core::PartitionedApp app(app_model);
  auto& u = app.untrusted_context();
  const rt::Value w = u.construct("Worker", {});
  u.invoke(w.as_ref(), "set", {rt::Value(std::int32_t{41})});
  EXPECT_EQ(u.invoke(w.as_ref(), "get", {}).as_i32(), 41);

  rt::ValueList items;
  for (int i = 0; i < 16; ++i) items.push_back(rt::Value(std::string(16, 'x')));
  u.invoke(w.as_ref(), "set_list", {rt::Value(std::move(items))});
}

TEST(MicroApp, SerializedCallCostsMoreThanPlainCall) {
  core::PartitionedApp app(build_micro_app());
  auto& u = app.untrusted_context();
  const rt::Value w = u.construct("Worker", {});

  const Cycles t0 = app.env().clock.now();
  for (int i = 0; i < 100; ++i) {
    u.invoke(w.as_ref(), "set", {rt::Value(std::int32_t{i})});
  }
  const Cycles plain = app.env().clock.now() - t0;

  rt::ValueList items;
  for (int i = 0; i < 64; ++i) items.push_back(rt::Value(std::string(16, 'x')));
  const rt::Value list(std::move(items));
  const Cycles t1 = app.env().clock.now();
  for (int i = 0; i < 100; ++i) {
    u.invoke(w.as_ref(), "set_list", {list});
  }
  const Cycles serialized = app.env().clock.now() - t1;
  EXPECT_GT(serialized, plain + plain / 10);
}

}  // namespace
}  // namespace msv::apps::synthetic
