// Tests for src/sgx: EPC paging, enclave lifecycle, transition bridge,
// EDL/Edger8r generation and attestation.
#include <gtest/gtest.h>

#include "sgx/attestation.h"
#include "sgx/bridge.h"
#include "sgx/edl.h"
#include "sgx/enclave.h"
#include "sgx/epc.h"
#include "sim/env.h"
#include "support/error.h"

namespace msv::sgx {
namespace {

Sha256::Digest test_measurement() { return Sha256::hash("trusted-image"); }

std::unique_ptr<Enclave> make_enclave(Env& env) {
  auto e = std::make_unique<Enclave>(env, "test", test_measurement(),
                                     /*image_bytes=*/1 << 20);
  e->init(test_measurement());
  return e;
}

TEST(Epc, HitsAreFree) {
  Env env;
  EpcModel epc(env);
  epc.access(1, 0);
  const Cycles after_fault = env.clock.now();
  epc.access(1, 0);
  EXPECT_EQ(env.clock.now(), after_fault) << "resident page costs nothing";
  EXPECT_EQ(epc.stats().faults, 1u);
  EXPECT_EQ(epc.stats().accesses, 2u);
}

TEST(Epc, MissChargesPageIn) {
  Env env;
  EpcModel epc(env);
  const Cycles before = env.clock.now();
  epc.access(1, 7);
  EXPECT_EQ(env.clock.now() - before, env.cost.epc_page_in_cycles);
}

TEST(Epc, EvictsLruWhenFull) {
  Env env;
  env.cost.epc_usable_bytes = 4 * env.cost.page_bytes;  // 4-page EPC
  EpcModel epc(env);
  ASSERT_EQ(epc.capacity_pages(), 4u);
  for (std::uint64_t p = 0; p < 4; ++p) epc.access(1, p);
  EXPECT_EQ(epc.resident_pages(), 4u);
  // Touch page 0 to make it MRU, then fault a 5th page: page 1 must go.
  epc.access(1, 0);
  epc.access(1, 4);
  EXPECT_EQ(epc.stats().evictions, 1u);
  const auto faults_before = epc.stats().faults;
  epc.access(1, 0);  // still resident
  EXPECT_EQ(epc.stats().faults, faults_before);
  epc.access(1, 1);  // was evicted -> faults again
  EXPECT_EQ(epc.stats().faults, faults_before + 1);
}

TEST(Epc, ReleaseRegionDropsPages) {
  Env env;
  EpcModel epc(env);
  epc.access(1, 0);
  epc.access(2, 0);
  epc.release_region(1);
  EXPECT_EQ(epc.resident_pages(), 1u);
}

TEST(Epc, RegionsDoNotCollide) {
  Env env;
  EpcModel epc(env);
  epc.access(1, 5);
  const auto faults = epc.stats().faults;
  epc.access(2, 5);
  EXPECT_EQ(epc.stats().faults, faults + 1) << "same page id, other region";
}

TEST(Epc, ShrinkMidRunChargesLazyEvictionExactlyOnce) {
  // Regression (stress_epc shrink-mid-run find): after set_limit drops
  // the capacity below the resident set, the pre-fix model drained the
  // excess only on the next *miss* — a hit on any resident page stayed
  // free and the set stayed physically over capacity indefinitely. The
  // drain must happen on the next access of any kind, each excess page
  // charging its page-out exactly once, and a drained page must fault
  // when touched again.
  Env env;
  env.cost.epc_usable_bytes = 8 * env.cost.page_bytes;  // 8-page EPC
  EpcModel epc(env);
  ASSERT_EQ(epc.capacity_pages(), 8u);
  for (std::uint64_t p = 0; p < 8; ++p) epc.access(1, p);
  ASSERT_EQ(epc.resident_pages(), 8u);
  ASSERT_EQ(epc.stats().evictions, 0u);

  epc.set_limit(4);  // shrink mid-run: 4 excess pages, evicted lazily
  EXPECT_EQ(epc.resident_pages(), 8u) << "eviction is lazy, not eager";

  // A HIT on the MRU page (page 7) must first drain the 4 LRU pages
  // (0..3), charging page-out per page — exactly once each.
  const Cycles before = env.clock.now();
  epc.access(1, 7);
  EXPECT_EQ(env.clock.now() - before, 4 * env.cost.epc_page_out_cycles)
      << "4 excess pages drain on the first post-shrink access";
  EXPECT_EQ(epc.stats().evictions, 4u);
  EXPECT_EQ(epc.resident_pages(), 4u);

  // Subsequent hits within the shrunken set are free again.
  const Cycles after_drain = env.clock.now();
  epc.access(1, 7);
  epc.access(1, 6);
  EXPECT_EQ(env.clock.now(), after_drain);
  EXPECT_EQ(epc.stats().evictions, 4u) << "no double-charged evictions";

  // A drained page is gone: touching it faults and evicts the new LRU.
  const auto faults_before = epc.stats().faults;
  epc.access(1, 0);
  EXPECT_EQ(epc.stats().faults, faults_before + 1);
  EXPECT_EQ(epc.stats().evictions, 5u);
  EXPECT_EQ(epc.resident_pages(), 4u);

  // Regrow: the limit lifts, faults refill without evicting.
  epc.set_limit(8);
  const auto evictions_before = epc.stats().evictions;
  for (std::uint64_t p = 8; p < 12; ++p) epc.access(1, p);
  EXPECT_EQ(epc.resident_pages(), 8u);
  EXPECT_EQ(epc.stats().evictions, evictions_before)
      << "regrown capacity absorbs new pages without eviction";

  // Conservation: every page that ever faulted in either left through a
  // counted exit (eviction/release/invalidation) or is still resident.
  EXPECT_TRUE(epc.stats_reconcile())
      << "faults=" << epc.stats().faults
      << " evictions=" << epc.stats().evictions
      << " resident=" << epc.resident_pages();
}

TEST(Epc, StatsReconcileAcrossReleaseAndInvalidate) {
  Env env;
  env.cost.epc_usable_bytes = 4 * env.cost.page_bytes;
  EpcModel epc(env);
  for (std::uint64_t p = 0; p < 6; ++p) epc.access(1, p);  // 2 evictions
  epc.access(2, 0);
  epc.release_region(2);
  EXPECT_EQ(epc.stats().released, 1u);
  EXPECT_TRUE(epc.stats_reconcile());
  epc.invalidate_all();
  EXPECT_EQ(epc.stats().invalidated, 3u);
  EXPECT_EQ(epc.resident_pages(), 0u);
  EXPECT_TRUE(epc.stats_reconcile());
  // Reserved-pressure shrink reconciles the same way as set_limit.
  for (std::uint64_t p = 0; p < 4; ++p) epc.access(3, p);
  epc.set_reserved_pages(2);
  epc.access(3, 3);  // hit; drains 2 pages first
  EXPECT_EQ(epc.resident_pages(), 2u);
  EXPECT_TRUE(epc.stats_reconcile());
}

TEST(Epc, OutOfRangeIndicesAreRejectedNotAliased) {
  // A region id >= 2^24 (or a page >= 2^40) would shift bits off the top
  // of the packed (region << 40) | page key and silently alias another
  // region's pages; the model must fault instead.
  Env env;
  sgx::EpcModel epc(env);
  EXPECT_THROW(epc.access(1ull << 24, 0), RuntimeFault);
  EXPECT_THROW(epc.access(0, 1ull << 40), RuntimeFault);
  EXPECT_NO_THROW(epc.access((1ull << 24) - 1, (1ull << 40) - 1));
}

TEST(Enclave, CreationChargesMeasurementTime) {
  Env env;
  const Cycles before = env.clock.now();
  Enclave e(env, "e", test_measurement(), /*image_bytes=*/1 << 20);
  const Cycles elapsed = env.clock.now() - before;
  EXPECT_GE(elapsed, env.cost.enclave_create_base_cycles);
}

TEST(Enclave, InitVerifiesMeasurement) {
  Env env;
  Enclave e(env, "e", test_measurement(), 4096);
  EXPECT_THROW(e.init(Sha256::hash("tampered-image")), SecurityFault);
  EXPECT_EQ(e.state(), EnclaveState::kCreated);
  e.init(test_measurement());
  EXPECT_EQ(e.state(), EnclaveState::kInitialized);
}

TEST(Enclave, DomainAppliesMeeFactor) {
  Env env;
  auto enclave = make_enclave(env);
  EnclaveDomain trusted(env, *enclave);
  UntrustedDomain untrusted(env);

  const Cycles t0 = env.clock.now();
  untrusted.charge_traffic(1 << 20);
  const Cycles plain = env.clock.now() - t0;

  const Cycles t1 = env.clock.now();
  trusted.charge_traffic(1 << 20);
  const Cycles shielded = env.clock.now() - t1;

  EXPECT_NEAR(static_cast<double>(shielded) / static_cast<double>(plain),
              env.cost.mee_traffic_factor, 0.01);
}

TEST(Bridge, EcallRunsHandlerOnTrustedSide) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  Side observed = Side::kUntrusted;
  const CallId probe = bridge.register_ecall("probe", [&](ByteReader&) {
    observed = bridge.side();
    return ByteBuffer();
  });
  EXPECT_EQ(bridge.side(), Side::kUntrusted);
  ByteBuffer resp;
  bridge.ecall(probe, ByteBuffer(), resp);
  EXPECT_EQ(observed, Side::kTrusted);
  EXPECT_EQ(bridge.side(), Side::kUntrusted);
}

TEST(Bridge, OcallOnlyFromTrustedSide) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  const CallId host_fn =
      bridge.register_ocall("host_fn", [](ByteReader&) { return ByteBuffer(); });
  ByteBuffer resp;
  EXPECT_THROW(bridge.ocall(host_fn, ByteBuffer(), resp), SecurityFault);
}

TEST(Bridge, NestedOcallFromEcall) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  bool ocall_ran = false;
  const CallId host_fn = bridge.register_ocall("host_fn", [&](ByteReader&) {
    ocall_ran = true;
    EXPECT_EQ(bridge.side(), Side::kUntrusted);
    return ByteBuffer();
  });
  const CallId enter =
      bridge.register_ecall("enter", [&, host_fn](ByteReader&) {
        ByteBuffer nested;
        bridge.ocall(host_fn, ByteBuffer(), nested);
        return ByteBuffer();
      });
  ByteBuffer resp;
  bridge.ecall(enter, ByteBuffer(), resp);
  EXPECT_TRUE(ocall_ran);
  EXPECT_EQ(bridge.stats().ecalls, 1u);
  EXPECT_EQ(bridge.stats().ocalls, 1u);
}

TEST(Bridge, EcallIntoUninitializedEnclaveFaults) {
  Env env;
  Enclave e(env, "e", test_measurement(), 4096);  // not init()ed
  TransitionBridge bridge(env, e);
  const CallId f =
      bridge.register_ecall("f", [](ByteReader&) { return ByteBuffer(); });
  ByteBuffer resp;
  EXPECT_THROW(bridge.ecall(f, ByteBuffer(), resp), SecurityFault);
}

TEST(Bridge, UnknownCallThrows) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  EXPECT_THROW(bridge.ecall_id("nope"), RuntimeFault);
  EXPECT_EQ(bridge.find_call("nope"), kNoCallId);
}

TEST(Bridge, DuplicateRegistrationThrows) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  bridge.register_ecall("f", [](ByteReader&) { return ByteBuffer(); });
  EXPECT_THROW(
      bridge.register_ecall("f", [](ByteReader&) { return ByteBuffer(); }),
      RuntimeFault);
}

TEST(Bridge, TransitionCostsCharged) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  const CallId f =
      bridge.register_ecall("f", [](ByteReader&) { return ByteBuffer(); });

  const Cycles before = env.clock.now();
  ByteBuffer resp;
  bridge.ecall(f, ByteBuffer(), resp);
  const Cycles cost = env.clock.now() - before;
  EXPECT_GE(cost, env.cost.ecall_cycles);
  EXPECT_LT(cost, env.cost.ecall_cycles + 10'000);
}

TEST(Bridge, PayloadBytesChargedAndCounted) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  const CallId f = bridge.register_ecall("f", [](ByteReader& r) {
    ByteBuffer out;
    out.put_u32(r.get_u32() + 1);
    return out;
  });

  ByteBuffer small;
  small.put_u32(1);
  ByteBuffer resp;
  bridge.ecall(f, small, resp);

  const Cycles t0 = env.clock.now();
  bridge.ecall(f, small, resp);
  const Cycles small_cost = env.clock.now() - t0;

  ByteBuffer big;
  big.put_u32(1);
  for (int i = 0; i < 100'000; ++i) big.put_u8(0);
  const Cycles t1 = env.clock.now();
  bridge.ecall(f, big, resp);
  const Cycles big_cost = env.clock.now() - t1;

  EXPECT_GT(big_cost, small_cost + 30'000) << "per-byte marshalling cost";
  EXPECT_EQ(bridge.stats().ecalls, 3u);
  EXPECT_EQ(bridge.stats().per_call.at("f").calls, 3u);
  EXPECT_GT(bridge.stats().bytes_in, 100'000u);
}

TEST(Bridge, SwitchlessSkipsTransitionCost) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  const CallId f =
      bridge.register_ecall("f", [](ByteReader&) { return ByteBuffer(); });

  const Cycles t0 = env.clock.now();
  ByteBuffer resp;
  bridge.ecall(f, ByteBuffer(), resp);
  const Cycles normal = env.clock.now() - t0;

  bridge.set_switchless(f, true);
  const Cycles t1 = env.clock.now();
  bridge.ecall(f, ByteBuffer(), resp);
  const Cycles switchless = env.clock.now() - t1;

  EXPECT_LT(switchless, normal / 5);
  EXPECT_EQ(bridge.stats().switchless_calls, 1u);
}

TEST(Bridge, HandlerExceptionRestoresSide) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  const CallId boom =
      bridge.register_ecall("boom", [](ByteReader&) -> ByteBuffer {
        throw RuntimeFault("inside");
      });
  ByteBuffer resp;
  EXPECT_THROW(bridge.ecall(boom, ByteBuffer(), resp), RuntimeFault);
  EXPECT_EQ(bridge.side(), Side::kUntrusted);
}

// The next two tests exist to pin the deprecated string shim to the CallId
// path (identical bytes, charges and per_call stats), so they call it on
// purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Bridge, CallIdDispatchMatchesStringApi) {
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);
  const CallId id = bridge.register_ecall("f", [](ByteReader& r) {
    ByteBuffer out;
    out.put_u32(r.get_u32() + 1);
    return out;
  });
  ASSERT_NE(id, kNoCallId);
  EXPECT_EQ(bridge.ecall_id("f"), id);
  EXPECT_EQ(bridge.find_call("f"), id);
  EXPECT_EQ(bridge.call_name(id), "f");
  EXPECT_EQ(bridge.find_call("nope"), kNoCallId);
  EXPECT_THROW(bridge.ocall_id("f"), RuntimeFault) << "no ocall slot filled";

  ByteBuffer req;
  req.put_u32(41);
  bridge.ecall("f", req);  // warm-up: EPC faults settle

  const Cycles t0 = env.clock.now();
  const ByteBuffer by_name = bridge.ecall("f", req);
  const Cycles name_cost = env.clock.now() - t0;

  ByteBuffer by_id;
  const Cycles t1 = env.clock.now();
  bridge.ecall(id, req, by_id);
  const Cycles id_cost = env.clock.now() - t1;

  // Same handler, same payload: identical bytes and identical simulated
  // charge — the interned-ID path is a host-only optimisation.
  ASSERT_EQ(by_name.size(), by_id.size());
  EXPECT_EQ(ByteReader(by_name).get_u32(), 42u);
  EXPECT_EQ(ByteReader(by_id).get_u32(), 42u);
  EXPECT_EQ(name_cost, id_cost);
}

TEST(Bridge, PerCallStatsSurviveIdTableMixedTraffic) {
  // Regression for the string-table -> flat-ID-table migration: per_call
  // must stay name-keyed and correct under mixed ecall / nested-ocall /
  // switchless traffic driven through both the string and the ID API.
  Env env;
  auto enclave = make_enclave(env);
  TransitionBridge bridge(env, *enclave);

  bridge.register_ocall("log", [](ByteReader& r) {
    r.get_u32();
    return ByteBuffer();
  });
  const CallId work_id =
      bridge.register_ecall("work", [&bridge](ByteReader& r) {
        ByteBuffer msg;
        msg.put_u32(r.get_u32());
        bridge.ocall("log", msg);  // nested ocall from trusted side
        ByteBuffer out;
        out.put_u32(1);
        return out;
      });
  const CallId ping_id =
      bridge.register_ecall("ping", [](ByteReader&) { return ByteBuffer(); });
  bridge.set_switchless(ping_id, true);

  ByteBuffer req;
  req.put_u32(9);
  bridge.ecall("work", req);  // string path
  ByteBuffer resp;
  bridge.ecall(work_id, req, resp);  // ID path
  bridge.ecall(work_id, req, resp);
  for (int i = 0; i < 4; ++i) bridge.ecall(ping_id, ByteBuffer(), resp);

  const BridgeStats& s = bridge.stats();
  EXPECT_EQ(s.ecalls, 7u);
  EXPECT_EQ(s.ocalls, 3u);
  EXPECT_EQ(s.switchless_calls, 4u);
  ASSERT_TRUE(s.per_call.count("work"));
  ASSERT_TRUE(s.per_call.count("log"));
  ASSERT_TRUE(s.per_call.count("ping"));
  EXPECT_EQ(s.per_call.at("work").calls, 3u);
  EXPECT_EQ(s.per_call.at("log").calls, 3u);
  EXPECT_EQ(s.per_call.at("ping").calls, 4u);
  EXPECT_EQ(s.per_call.at("work").bytes_in, 3 * req.size());
  EXPECT_EQ(s.per_call.at("work").bytes_out, 12u);  // 3 x put_u32 response
  EXPECT_EQ(s.per_call.at("ping").bytes_in, 0u);
}

#pragma GCC diagnostic pop

TEST(Edl, RendersTrustedAndUntrustedSections) {
  EdlSpec spec;
  spec.enclave_name = "demo";
  spec.add_ecall(EdlFunction{
      "ecall_relayAccount",
      "void",
      {{"int", "hash", EdlDirection::kIn, ""},
       {"const char*", "buf", EdlDirection::kIn, "len"},
       {"size_t", "len", EdlDirection::kIn, ""}},
      false});
  spec.add_ocall(EdlFunction{"ocall_write", "long", {}, true});
  const std::string text = spec.to_edl_text();
  EXPECT_NE(text.find("trusted {"), std::string::npos);
  EXPECT_NE(text.find("untrusted {"), std::string::npos);
  EXPECT_NE(text.find("ecall_relayAccount"), std::string::npos);
  EXPECT_NE(text.find("[in, size=len] const char* buf"), std::string::npos);
  EXPECT_NE(text.find("transition_using_threads"), std::string::npos);
  EXPECT_TRUE(spec.has_ecall("ecall_relayAccount"));
  EXPECT_FALSE(spec.has_ocall("ecall_relayAccount"));
}

TEST(Edl, Edger8rGeneratesBothStubs) {
  EdlSpec spec;
  spec.enclave_name = "demo";
  spec.add_ecall(EdlFunction{"ecall_f", "void", {}, false});
  spec.add_ocall(EdlFunction{"ocall_g", "void", {}, false});
  const EdgeRoutines gen = edger8r_generate(spec);
  EXPECT_EQ(gen.routine_count, 4u);
  EXPECT_NE(gen.trusted_source.find("ecall_f"), std::string::npos);
  EXPECT_NE(gen.untrusted_source.find("ocall_g"), std::string::npos);
  EXPECT_NE(gen.header.find("ecall_f"), std::string::npos);
}

TEST(Attestation, QuoteVerifies) {
  Env env;
  auto enclave = make_enclave(env);
  QuotingEnclave qe("platform-key");
  const Report report = QuotingEnclave::create_report(*enclave, "channel-pk");
  const Quote quote = qe.quote(report);
  EXPECT_TRUE(
      QuotingEnclave::verify(quote, "platform-key", test_measurement()));
}

TEST(Attestation, WrongKeyOrMeasurementRejected) {
  Env env;
  auto enclave = make_enclave(env);
  QuotingEnclave qe("platform-key");
  Quote quote = qe.quote(QuotingEnclave::create_report(*enclave, "data"));
  EXPECT_FALSE(QuotingEnclave::verify(quote, "other-key", test_measurement()));
  EXPECT_FALSE(QuotingEnclave::verify(quote, "platform-key",
                                      Sha256::hash("other-image")));
  // Tampered user data breaks the MAC.
  quote.report.user_data[0] ^= 1;
  EXPECT_FALSE(
      QuotingEnclave::verify(quote, "platform-key", test_measurement()));
}

}  // namespace
}  // namespace msv::sgx
