// Tests for src/sgx/sealing: sealed storage bound to the enclave identity.
#include <gtest/gtest.h>

#include "sgx/sealing.h"
#include "sim/env.h"
#include "support/error.h"

namespace msv::sgx {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

class SealingTest : public ::testing::Test {
 protected:
  SealingTest()
      : enclave_(env_, "kv", Sha256::hash("kv-image"), 4096),
        other_(env_, "other", Sha256::hash("other-image"), 4096),
        platform_("fuse-key") {
    enclave_.init(Sha256::hash("kv-image"));
    other_.init(Sha256::hash("other-image"));
  }

  Env env_;
  Enclave enclave_;
  Enclave other_;
  SealingPlatform platform_;
};

TEST_F(SealingTest, SealUnsealRoundTrip) {
  const auto blob = platform_.seal(enclave_, bytes("api_key=sk-123"), 1);
  EXPECT_EQ(platform_.unseal(enclave_, blob), bytes("api_key=sk-123"));
}

TEST_F(SealingTest, CiphertextHidesPlaintext) {
  const auto plain = bytes("very secret value padded out to a sentence");
  const auto blob = platform_.seal(enclave_, plain, 2);
  EXPECT_NE(blob.ciphertext, plain);
  // No obvious substring survives.
  const std::string ct(blob.ciphertext.begin(), blob.ciphertext.end());
  EXPECT_EQ(ct.find("secret"), std::string::npos);
}

TEST_F(SealingTest, DifferentIvsDifferentCiphertexts) {
  const auto a = platform_.seal(enclave_, bytes("same"), 1);
  const auto b = platform_.seal(enclave_, bytes("same"), 2);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST_F(SealingTest, OtherEnclaveCannotUnseal) {
  const auto blob = platform_.seal(enclave_, bytes("mine"), 3);
  EXPECT_THROW(platform_.unseal(other_, blob), SecurityFault);
}

TEST_F(SealingTest, OtherPlatformCannotUnseal) {
  const auto blob = platform_.seal(enclave_, bytes("mine"), 4);
  SealingPlatform other_platform("different-fuse-key");
  EXPECT_THROW(other_platform.unseal(enclave_, blob), SecurityFault);
}

TEST_F(SealingTest, TamperedBlobRejected) {
  auto blob = platform_.seal(enclave_, bytes("integrity matters"), 5);
  blob.ciphertext[3] ^= 1;
  EXPECT_THROW(platform_.unseal(enclave_, blob), SecurityFault);

  auto blob2 = platform_.seal(enclave_, bytes("integrity matters"), 6);
  blob2.iv[0] ^= 1;
  EXPECT_THROW(platform_.unseal(enclave_, blob2), SecurityFault);
}

TEST_F(SealingTest, PolicySwapRejected) {
  // Re-targeting the blob at another enclave must break the MAC.
  auto blob = platform_.seal(enclave_, bytes("payload"), 7);
  blob.mr_enclave = other_.measurement();
  EXPECT_THROW(platform_.unseal(other_, blob), SecurityFault);
}

TEST_F(SealingTest, SerializationRoundTrip) {
  const auto blob = platform_.seal(enclave_, bytes("persist me"), 8);
  const auto wire = blob.serialize();
  const SealedBlob restored = SealedBlob::deserialize(wire);
  EXPECT_EQ(platform_.unseal(enclave_, restored), bytes("persist me"));
}

TEST_F(SealingTest, EmptyPlaintextSupported) {
  const auto blob = platform_.seal(enclave_, {}, 9);
  EXPECT_TRUE(platform_.unseal(enclave_, blob).empty());
}

TEST_F(SealingTest, LargePayloadRoundTrip) {
  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131);
  }
  const auto blob = platform_.seal(enclave_, big, 10);
  EXPECT_EQ(platform_.unseal(enclave_, blob), big);
}

TEST_F(SealingTest, FieldBoundarySpliceRejected) {
  // Regression for the seal-mac-v1 splice: the old MAC hashed bare
  // iv || ciphertext, so sliding bytes across the field boundary left the
  // MAC input — and therefore the verdict — unchanged, and a spliced blob
  // decrypted to silent garbage. v2 length-frames every field.
  const auto blob = platform_.seal(enclave_, bytes("field framing"), 11);
  SealedBlob spliced = blob;
  spliced.ciphertext.insert(spliced.ciphertext.begin(), spliced.iv.back());
  spliced.iv.pop_back();
  EXPECT_THROW(platform_.unseal(enclave_, spliced), SecurityFault);
  // And the other direction: grow the iv by eating the ciphertext's head.
  SealedBlob spliced2 = blob;
  spliced2.iv.push_back(spliced2.ciphertext.front());
  spliced2.ciphertext.erase(spliced2.ciphertext.begin());
  EXPECT_THROW(platform_.unseal(enclave_, spliced2), SecurityFault);
}

TEST_F(SealingTest, DeserializeRejectsOversizedLength) {
  // A blob comes from untrusted storage: a huge length varint must fail
  // typed and bounded, not resize() toward 2^64 bytes.
  const auto wire = platform_.seal(enclave_, bytes("x"), 12).serialize();
  std::vector<std::uint8_t> huge(wire.begin(), wire.begin() + 32);
  for (int i = 0; i < 9; ++i) huge.push_back(0xFF);
  huge.push_back(0x7F);
  EXPECT_THROW(SealedBlob::deserialize(huge), SecurityFault);
}

TEST_F(SealingTest, DeserializeRejectsTruncationAndTrailingBytes) {
  auto wire = platform_.seal(enclave_, bytes("frame"), 13).serialize();
  auto trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(SealedBlob::deserialize(trailing), SecurityFault);
  wire.pop_back();  // clips the MAC
  EXPECT_THROW(SealedBlob::deserialize(wire), SecurityFault);
  EXPECT_THROW(SealedBlob::deserialize({}), SecurityFault);
}

TEST_F(SealingTest, FuzzCorpusEveryTruncationRejected) {
  // Exhaustive prefix corpus: every field is length-framed and the MAC is
  // fixed-width at the tail, so *every* strict prefix of a valid wire
  // blob must fail typed — there is no shorter blob that still parses.
  const auto wire = platform_.seal(enclave_, bytes("fuzz corpus"), 21)
                        .serialize();
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const std::vector<std::uint8_t> cut(wire.begin(), wire.begin() + n);
    EXPECT_THROW(SealedBlob::deserialize(cut), SecurityFault)
        << "prefix of " << n << " bytes parsed";
  }
  const auto ok = SealedBlob::deserialize(wire);
  EXPECT_EQ(platform_.unseal(enclave_, ok), bytes("fuzz corpus"));
}

TEST_F(SealingTest, FuzzCorpusNoBitFlipSurvivesToPlaintext) {
  // Every single-bit flip anywhere in the wire blob: the outcome must be
  // a typed rejection at deserialize OR at unseal (MAC/policy). No flip
  // may round-trip to the sealed plaintext — that would mean some wire
  // byte is neither parsed strictly nor authenticated.
  const auto plain = bytes("bit flip corpus payload");
  const auto wire = platform_.seal(enclave_, plain, 22).serialize();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = wire;
      mutated[i] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        const SealedBlob blob = SealedBlob::deserialize(mutated);
        const auto out = platform_.unseal(enclave_, blob);
        ADD_FAILURE() << "flip of bit " << bit << " at byte " << i
                      << " unsealed to "
                      << std::string(out.begin(), out.end());
      } catch (const SecurityFault&) {
        // rejected — the only sound outcome for a tampered blob
      }
    }
  }
}

TEST_F(SealingTest, GoldenBlobIsByteStable) {
  // Pins the wire format and the keystream/MAC endianness: a blob sealed
  // today must unseal under every future build (and on every host
  // endianness — the hashed counters are serialized little-endian).
  SealingPlatform gold("golden-fuse");
  Env env;
  Enclave enc(env, "gold", Sha256::hash("golden-image"), 4096);
  enc.init(Sha256::hash("golden-image"));
  const auto wire =
      gold.seal(enc, bytes("golden plaintext"), 0x1122334455667788ull)
          .serialize();
  EXPECT_EQ(Sha256::hex(Sha256::hash(
                std::string_view(reinterpret_cast<const char*>(wire.data()),
                                 wire.size()))),
            "c664dae0250e02e21a1caadccecfae5e1bfb6b536dc7500a4d897e55af11dd98");
}

}  // namespace
}  // namespace msv::sgx
