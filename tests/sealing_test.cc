// Tests for src/sgx/sealing: sealed storage bound to the enclave identity.
#include <gtest/gtest.h>

#include "sgx/sealing.h"
#include "sim/env.h"
#include "support/error.h"

namespace msv::sgx {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

class SealingTest : public ::testing::Test {
 protected:
  SealingTest()
      : enclave_(env_, "kv", Sha256::hash("kv-image"), 4096),
        other_(env_, "other", Sha256::hash("other-image"), 4096),
        platform_("fuse-key") {
    enclave_.init(Sha256::hash("kv-image"));
    other_.init(Sha256::hash("other-image"));
  }

  Env env_;
  Enclave enclave_;
  Enclave other_;
  SealingPlatform platform_;
};

TEST_F(SealingTest, SealUnsealRoundTrip) {
  const auto blob = platform_.seal(enclave_, bytes("api_key=sk-123"), 1);
  EXPECT_EQ(platform_.unseal(enclave_, blob), bytes("api_key=sk-123"));
}

TEST_F(SealingTest, CiphertextHidesPlaintext) {
  const auto plain = bytes("very secret value padded out to a sentence");
  const auto blob = platform_.seal(enclave_, plain, 2);
  EXPECT_NE(blob.ciphertext, plain);
  // No obvious substring survives.
  const std::string ct(blob.ciphertext.begin(), blob.ciphertext.end());
  EXPECT_EQ(ct.find("secret"), std::string::npos);
}

TEST_F(SealingTest, DifferentIvsDifferentCiphertexts) {
  const auto a = platform_.seal(enclave_, bytes("same"), 1);
  const auto b = platform_.seal(enclave_, bytes("same"), 2);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST_F(SealingTest, OtherEnclaveCannotUnseal) {
  const auto blob = platform_.seal(enclave_, bytes("mine"), 3);
  EXPECT_THROW(platform_.unseal(other_, blob), SecurityFault);
}

TEST_F(SealingTest, OtherPlatformCannotUnseal) {
  const auto blob = platform_.seal(enclave_, bytes("mine"), 4);
  SealingPlatform other_platform("different-fuse-key");
  EXPECT_THROW(other_platform.unseal(enclave_, blob), SecurityFault);
}

TEST_F(SealingTest, TamperedBlobRejected) {
  auto blob = platform_.seal(enclave_, bytes("integrity matters"), 5);
  blob.ciphertext[3] ^= 1;
  EXPECT_THROW(platform_.unseal(enclave_, blob), SecurityFault);

  auto blob2 = platform_.seal(enclave_, bytes("integrity matters"), 6);
  blob2.iv[0] ^= 1;
  EXPECT_THROW(platform_.unseal(enclave_, blob2), SecurityFault);
}

TEST_F(SealingTest, PolicySwapRejected) {
  // Re-targeting the blob at another enclave must break the MAC.
  auto blob = platform_.seal(enclave_, bytes("payload"), 7);
  blob.mr_enclave = other_.measurement();
  EXPECT_THROW(platform_.unseal(other_, blob), SecurityFault);
}

TEST_F(SealingTest, SerializationRoundTrip) {
  const auto blob = platform_.seal(enclave_, bytes("persist me"), 8);
  const auto wire = blob.serialize();
  const SealedBlob restored = SealedBlob::deserialize(wire);
  EXPECT_EQ(platform_.unseal(enclave_, restored), bytes("persist me"));
}

TEST_F(SealingTest, EmptyPlaintextSupported) {
  const auto blob = platform_.seal(enclave_, {}, 9);
  EXPECT_TRUE(platform_.unseal(enclave_, blob).empty());
}

TEST_F(SealingTest, LargePayloadRoundTrip) {
  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131);
  }
  const auto blob = platform_.seal(enclave_, big, 10);
  EXPECT_EQ(platform_.unseal(enclave_, blob), big);
}

}  // namespace
}  // namespace msv::sgx
