// Tests for src/apps/graphchi: RMAT generation, sharding invariants, and
// PageRank correctness on the engine.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/graphchi/engine.h"
#include "apps/graphchi/graph.h"
#include "apps/graphchi/sharder.h"
#include "shim/host_io.h"
#include "support/bytes.h"

namespace msv::apps::graphchi {
namespace {

class GraphchiTest : public ::testing::Test {
 protected:
  GraphchiTest() : domain_(env_), io_(env_, domain_) {}

  std::vector<Edge> make_graph(std::uint32_t v, std::uint64_t e,
                               std::uint64_t seed = 1) {
    Rng rng(seed);
    auto edges = generate_rmat(rng, v, e);
    write_edge_list(io_, "graph.bin", v, edges);
    return edges;
  }

  Env env_;
  UntrustedDomain domain_;
  shim::HostIo io_;
};

TEST_F(GraphchiTest, RmatRespectsBounds) {
  Rng rng(3);
  const auto edges = generate_rmat(rng, 1000, 5000);
  EXPECT_EQ(edges.size(), 5000u);
  for (const auto& e : edges) {
    EXPECT_LT(e.src, 1000u);
    EXPECT_LT(e.dst, 1000u);
    EXPECT_NE(e.src, e.dst) << "self loops are re-drawn";
  }
}

TEST_F(GraphchiTest, RmatIsSkewed) {
  // R-MAT with a=0.57 concentrates edges on low-numbered vertices.
  Rng rng(5);
  const auto edges = generate_rmat(rng, 1024, 20'000);
  std::uint64_t low = 0;
  for (const auto& e : edges) {
    if (e.src < 256) ++low;
  }
  EXPECT_GT(low, edges.size() / 3) << "first quarter gets >1/4 of sources";
}

TEST_F(GraphchiTest, EdgeListRoundTrip) {
  const auto edges = make_graph(500, 2000);
  const auto header = read_edge_list_header(io_, "graph.bin");
  EXPECT_EQ(header.nvertices, 500u);
  EXPECT_EQ(header.nedges, 2000u);
}

TEST_F(GraphchiTest, ShardingPartitionsAllEdges) {
  make_graph(600, 3000);
  FastSharder sharder(env_, domain_, io_);
  const auto sharding = sharder.shard("graph.bin", 4, "g");
  EXPECT_EQ(sharding.nshards, 4u);
  EXPECT_EQ(sharding.shard_paths.size(), 4u);
  EXPECT_EQ(sharder.stats().edges_read, 3000u);

  // Every edge lands in exactly one shard; intervals cover [0, V).
  std::uint64_t total = 0;
  for (const auto& path : sharding.shard_paths) {
    auto data = env_.fs->map(path);
    ByteReader r(data->data(), data->size());
    total += r.get_u64();
  }
  EXPECT_EQ(total, 3000u);
  EXPECT_EQ(sharding.intervals.front().first, 0u);
  EXPECT_EQ(sharding.intervals.back().second, 600u);
  for (std::size_t i = 1; i < sharding.intervals.size(); ++i) {
    EXPECT_EQ(sharding.intervals[i].first, sharding.intervals[i - 1].second);
  }
}

TEST_F(GraphchiTest, ShardsSortedBySourceAndIntervalCorrect) {
  make_graph(400, 2500);
  FastSharder sharder(env_, domain_, io_);
  const auto sharding = sharder.shard("graph.bin", 3, "g");
  for (std::uint32_t s = 0; s < 3; ++s) {
    auto data = env_.fs->map(sharding.shard_paths[s]);
    ByteReader r(data->data(), data->size());
    const std::uint64_t count = r.get_u64();
    std::uint32_t prev_src = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint32_t src = r.get_u32();
      const std::uint32_t dst = r.get_u32();
      EXPECT_GE(src, prev_src) << "shard ordered by source";
      prev_src = src;
      EXPECT_GE(dst, sharding.intervals[s].first);
      EXPECT_LT(dst, sharding.intervals[s].second);
    }
  }
}

TEST_F(GraphchiTest, DegreeFileMatchesGraph) {
  const auto edges = make_graph(300, 1500);
  FastSharder sharder(env_, domain_, io_);
  const auto sharding = sharder.shard("graph.bin", 2, "g");
  std::vector<std::uint32_t> expected(300, 0);
  for (const auto& e : edges) ++expected[e.src];
  auto data = env_.fs->map(sharding.degree_path);
  ByteReader r(data->data(), data->size());
  for (std::uint32_t v = 0; v < 300; ++v) {
    EXPECT_EQ(r.get_u32(), expected[v]) << "vertex " << v;
  }
}

TEST_F(GraphchiTest, PageRankMassConserved) {
  make_graph(500, 4000);
  FastSharder sharder(env_, domain_, io_);
  const auto sharding = sharder.shard("graph.bin", 3, "g");
  GraphChiEngine engine(env_, domain_, io_);
  PageRankProgram pagerank;
  const auto ranks = engine.run(sharding, pagerank, 8, "g");

  ASSERT_EQ(ranks.size(), 500u);
  for (const auto r : ranks) EXPECT_GE(r, 0.15 - 1e-9);
  // With damping d, total mass converges towards V when every vertex has
  // out-degree > 0; dangling vertices leak mass, so allow a band.
  const double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_GT(total, 500.0 * 0.2);
  EXPECT_LT(total, 500.0 * 1.2);
  EXPECT_EQ(engine.stats().edges_processed, 8u * 4000u);
}

TEST_F(GraphchiTest, PageRankMatchesInMemoryOracle) {
  const auto edges = make_graph(120, 900, /*seed=*/9);
  FastSharder sharder(env_, domain_, io_);
  const auto sharding = sharder.shard("graph.bin", 4, "g");
  GraphChiEngine engine(env_, domain_, io_);
  PageRankProgram pagerank;
  const auto ranks = engine.run(sharding, pagerank, 5, "g");

  // Oracle: dense synchronous PageRank.
  std::vector<std::uint32_t> outdeg(120, 0);
  for (const auto& e : edges) ++outdeg[e.src];
  std::vector<double> val(120, 1.0);
  for (int it = 0; it < 5; ++it) {
    std::vector<double> sum(120, 0.0);
    for (const auto& e : edges) {
      if (outdeg[e.src] > 0) sum[e.dst] += val[e.src] / outdeg[e.src];
    }
    for (std::size_t v = 0; v < 120; ++v) val[v] = 0.15 + 0.85 * sum[v];
  }
  for (std::size_t v = 0; v < 120; ++v) {
    EXPECT_NEAR(ranks[v], val[v], 1e-9) << "vertex " << v;
  }
}

TEST_F(GraphchiTest, ShardCountDoesNotChangeResult) {
  make_graph(200, 1200, /*seed=*/4);
  PageRankProgram pagerank;
  std::vector<double> base;
  for (const std::uint32_t shards : {1u, 2u, 5u}) {
    FastSharder sharder(env_, domain_, io_);
    const auto sharding =
        sharder.shard("graph.bin", shards, "g" + std::to_string(shards));
    GraphChiEngine engine(env_, domain_, io_);
    const auto ranks =
        engine.run(sharding, pagerank, 4, "g" + std::to_string(shards));
    if (base.empty()) {
      base = ranks;
    } else {
      for (std::size_t v = 0; v < base.size(); ++v) {
        EXPECT_NEAR(ranks[v], base[v], 1e-9);
      }
    }
  }
}

TEST_F(GraphchiTest, VertexDataPersisted) {
  make_graph(100, 500);
  FastSharder sharder(env_, domain_, io_);
  const auto sharding = sharder.shard("graph.bin", 2, "g");
  GraphChiEngine engine(env_, domain_, io_);
  PageRankProgram pagerank;
  const auto ranks = engine.run(sharding, pagerank, 2, "g");
  ASSERT_TRUE(env_.fs->exists("g.vdata"));
  auto data = env_.fs->map("g.vdata");
  ByteReader r(data->data(), data->size());
  for (std::uint32_t v = 0; v < 100; ++v) {
    EXPECT_DOUBLE_EQ(r.get_f64(), ranks[v]);
  }
}

}  // namespace
}  // namespace msv::apps::graphchi
