// Tests for src/support: clock/timers, byte buffers, hashes, stats, tables.
#include <gtest/gtest.h>

#include "support/bytes.h"
#include "support/clock.h"
#include "support/error.h"
#include "support/fnv.h"
#include "support/md5.h"
#include "support/rng.h"
#include "support/sha256.h"
#include "support/stats.h"
#include "support/table.h"

namespace msv {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock(1e9);
  clock.advance(500);
  clock.advance(1500);
  EXPECT_EQ(clock.now(), 2000u);
  EXPECT_DOUBLE_EQ(clock.seconds(), 2e-6);
}

TEST(VirtualClock, SecondsToCyclesUsesFrequency) {
  VirtualClock clock(2e9);
  EXPECT_EQ(clock.seconds_to_cycles(1.5), 3'000'000'000u);
}

TEST(VirtualClock, OneShotTimerFiresAtDeadline) {
  VirtualClock clock(1e9);
  Cycles fired_at = 0;
  clock.schedule_at(1000, [&] { fired_at = clock.now(); });
  clock.advance(999);
  EXPECT_EQ(fired_at, 0u);
  clock.advance(500);
  EXPECT_EQ(fired_at, 1000u);
  EXPECT_EQ(clock.now(), 1499u);
}

TEST(VirtualClock, PeriodicTimerFiresAtExactInstants) {
  VirtualClock clock(1e9);
  std::vector<Cycles> instants;
  clock.schedule_every(100, [&] { instants.push_back(clock.now()); });
  clock.advance(350);
  ASSERT_EQ(instants.size(), 3u);
  EXPECT_EQ(instants[0], 100u);
  EXPECT_EQ(instants[1], 200u);
  EXPECT_EQ(instants[2], 300u);
}

TEST(VirtualClock, CancelStopsPeriodicTimer) {
  VirtualClock clock(1e9);
  int fires = 0;
  const auto id = clock.schedule_every(10, [&] { ++fires; });
  clock.advance(25);
  EXPECT_EQ(fires, 2);
  clock.cancel(id);
  clock.advance(100);
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(clock.pending_timers(), 0u);
}

TEST(VirtualClock, TimersOrderedByDeadlineThenId) {
  VirtualClock clock(1e9);
  std::vector<int> order;
  clock.schedule_at(50, [&] { order.push_back(1); });
  clock.schedule_at(50, [&] { order.push_back(2); });
  clock.schedule_at(20, [&] { order.push_back(3); });
  clock.advance(60);
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
}

TEST(VirtualClock, TimerCanScheduleAnotherTimer) {
  VirtualClock clock(1e9);
  bool second_fired = false;
  clock.schedule_at(10, [&] {
    clock.schedule_at(clock.now() + 10, [&] { second_fired = true; });
  });
  clock.advance(30);
  EXPECT_TRUE(second_fired);
}

TEST(VirtualClock, PastDeadlineThrows) {
  VirtualClock clock(1e9);
  clock.advance(100);
  EXPECT_THROW(clock.schedule_at(50, [] {}), RuntimeFault);
}

TEST(ByteBuffer, PrimitivesRoundTrip) {
  ByteBuffer buf;
  buf.put_u8(0xab);
  buf.put_u16(0x1234);
  buf.put_u32(0xdeadbeef);
  buf.put_u64(0x0123456789abcdefull);
  buf.put_i32(-42);
  buf.put_i64(-1'000'000'000'000ll);
  buf.put_f64(3.14159);
  ByteReader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_i64(), -1'000'000'000'000ll);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(ByteBuffer, VarintRoundTrip) {
  ByteBuffer buf;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384,
                                  0xffffffffull, 0xffffffffffffffffull};
  for (const auto v : values) buf.put_varint(v);
  ByteReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(ByteBuffer, StringRoundTrip) {
  ByteBuffer buf;
  buf.put_string("hello");
  buf.put_string("");
  buf.put_string(std::string(1000, 'x'));
  ByteReader r(buf);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string(1000, 'x'));
}

TEST(ByteReader, TruncatedInputThrows) {
  ByteBuffer buf;
  buf.put_u16(7);
  ByteReader r(buf);
  EXPECT_THROW(r.get_u32(), RuntimeFault);
}

TEST(ByteReader, SeekAndPosition) {
  ByteBuffer buf;
  buf.put_u32(1);
  buf.put_u32(2);
  ByteReader r(buf);
  r.seek(4);
  EXPECT_EQ(r.get_u32(), 2u);
  r.seek(0);
  EXPECT_EQ(r.get_u32(), 1u);
  EXPECT_THROW(r.seek(100), RuntimeFault);
}

TEST(BufferArena, ReusesReleasedCapacity) {
  BufferArena arena;
  ByteBuffer b = arena.acquire();
  for (int i = 0; i < 64; ++i) b.put_u32(i);
  const std::uint8_t* storage = b.data();
  arena.release(std::move(b));
  EXPECT_EQ(arena.pooled(), 1u);

  ByteBuffer c = arena.acquire();
  EXPECT_EQ(arena.pooled(), 0u);
  EXPECT_EQ(c.size(), 0u) << "recycled buffers come back empty";
  c.put_u8(1);
  EXPECT_EQ(c.data(), storage) << "same allocation, no fresh malloc";
  EXPECT_EQ(arena.stats().acquires, 2u);
  EXPECT_EQ(arena.stats().reuses, 1u);
}

TEST(BufferArena, OversizedAndEmptyBuffersNotPooled) {
  BufferArena arena;
  arena.release(ByteBuffer());  // no storage to keep
  EXPECT_EQ(arena.pooled(), 0u);

  ByteBuffer huge = arena.acquire();
  for (int i = 0; i < (2 << 20); ++i) huge.put_u8(0);  // > 1 MiB cap
  arena.release(std::move(huge));
  EXPECT_EQ(arena.pooled(), 0u) << "huge payloads must not pin their storage";
}

TEST(BufferArena, LeaseReturnsBufferOnDestruction) {
  BufferArena arena;
  {
    ArenaLease lease(arena);
    lease->put_u32(7);
    EXPECT_EQ(arena.pooled(), 0u);
  }
  EXPECT_EQ(arena.pooled(), 1u);
  {
    ArenaLease lease(arena);
    EXPECT_EQ(arena.stats().reuses, 1u);
    ArenaLease moved(std::move(lease));
    moved->put_u8(1);
  }
  EXPECT_EQ(arena.pooled(), 1u) << "moved-from lease must not double-release";
}

// RFC 1321 test vectors.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(Md5::hash("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex(Md5::hash("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex(Md5::hash("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex(Md5::hash("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex(Md5::hash("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5, IncrementalMatchesOneShot) {
  Md5 h;
  h.update("mess");
  h.update("age ");
  h.update("digest");
  EXPECT_EQ(Md5::hex(h.finish()), "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(Md5, MultiBlockInput) {
  const std::string input(1000, 'z');
  Md5 one;
  one.update(input);
  Md5 chunked;
  for (std::size_t i = 0; i < input.size(); i += 77) {
    chunked.update(input.substr(i, 77));
  }
  EXPECT_EQ(one.finish(), chunked.finish());
}

// FIPS 180-4 test vectors.
TEST(Sha256, FipsVectors) {
  EXPECT_EQ(Sha256::hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      Sha256::hex(Sha256::hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("ab");
  h.update("c");
  EXPECT_EQ(Sha256::hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Fnv, KnownValues) {
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), kFnvOffset64);
  // Stability check (value computed once and frozen).
  EXPECT_EQ(fnv1a64("hello"), 0xa430d84680aabd0bull);
  EXPECT_NE(fnv1a64("hello"), fnv1a64("hellp"));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng.next_u64(), rng.next_u64());
}

TEST(Samples, SummaryStatistics) {
  Samples s;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), RuntimeFault);
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(5e-9), "5.0 ns");
  EXPECT_EQ(format_seconds(2.5e-6), "2.50 us");
  EXPECT_EQ(format_seconds(3.2e-3), "3.20 ms");
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MiB");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), RuntimeFault);
}

}  // namespace
}  // namespace msv
