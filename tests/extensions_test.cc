// Tests for the extension features: the tracing agent (§2.2), the
// sgx-perf-style transition profiler, and the multi-isolate proxy/mirror
// support (future work §7).
#include <gtest/gtest.h>

#include "apps/illustrative/bank.h"
#include "apps/synthetic/generator.h"
#include "core/montsalvat.h"
#include "core/multi_app.h"
#include "sgx/profiler.h"

namespace msv {
namespace {

using rt::Value;

// ---- Tracing agent ---------------------------------------------------------

TEST(TracingAgent, RecordsDynamicallyInvokedMethods) {
  core::NativeApp app(apps::build_bank_app());
  app.context().enable_tracing();
  app.run_main();
  const auto& traced = app.context().traced_methods();
  EXPECT_TRUE(traced.count({"Person", "transfer"}));
  EXPECT_TRUE(traced.count({"Account", "updateBalance"}));
  EXPECT_TRUE(traced.count({"Main", "main"}));
  EXPECT_FALSE(traced.count({"Account", "getOwner"}))
      << "never called by main";
}

TEST(TracingAgent, JsonFollowsReflectConfigShape) {
  core::NativeApp app(apps::build_bank_app());
  app.context().enable_tracing();
  app.run_main();
  const std::string json = app.context().trace_to_json();
  EXPECT_NE(json.find("{ \"name\": \"Account\", \"methods\": ["),
            std::string::npos);
  EXPECT_NE(json.find("{ \"name\": \"updateBalance\" }"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(TracingAgent, TraceFeedsExtraEntryPoints) {
  // The workflow the GraalVM agent exists for: a dry run discovers the
  // host-driven methods, whose trace keeps them from being pruned.
  model::AppModel app = apps::build_bank_app(/*with_audit=*/true);

  // The dry run happens in agent mode — the open world of a JVM.
  core::AppConfig agent_config;
  agent_config.root_everything = true;
  core::NativeApp dry_run(app, agent_config);
  dry_run.context().enable_tracing();
  dry_run.run_main();
  auto& ctx = dry_run.context();
  // The host also drives Vault during the dry run.
  const Value vault = ctx.construct("Vault", {});
  ctx.invoke(vault.as_ref(), "audit", {Value("x")});

  core::AppConfig config;
  for (const auto& m : ctx.traced_methods()) {
    config.extra_entry_points.push_back(m);
  }
  core::PartitionedApp partitioned(app, config);
  // Without the trace, Vault's proxy would be pruned and this would throw.
  const Value v = partitioned.untrusted_context().construct("Vault", {});
  partitioned.untrusted_context().invoke(v.as_ref(), "audit", {Value("y")});
  SUCCEED();
}

// ---- Transition profiler ---------------------------------------------------

TEST(Profiler, RanksCallsByOverheadAndRecommends) {
  core::PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const Value w = u.construct("Worker", {});
  for (int i = 0; i < 2000; ++i) {
    u.invoke(w.as_ref(), "set", {Value(std::int32_t{i})});
  }

  const auto profile =
      sgx::profile_transitions(app.bridge().stats(), app.env().cost,
                               /*min_calls=*/1000, /*small_payload=*/512);
  ASSERT_FALSE(profile.entries.empty());
  EXPECT_EQ(profile.entries.front().name, "ecall_relay_Worker_set")
      << "the hot call dominates the overhead ranking";
  EXPECT_TRUE(profile.entries.front().recommend_switchless);
  EXPECT_LT(profile.overhead_after_switchless_cycles,
            profile.total_overhead_cycles / 2);

  const std::string report =
      sgx::transition_report(profile, app.env().cost);
  EXPECT_NE(report.find("ecall_relay_Worker_set"), std::string::npos);
  EXPECT_NE(report.find("recommend"), std::string::npos);
}

TEST(Profiler, ColdCallsNotRecommended) {
  core::PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const Value w = u.construct("Worker", {});
  u.invoke(w.as_ref(), "set", {Value(std::int32_t{1})});
  const auto profile =
      sgx::profile_transitions(app.bridge().stats(), app.env().cost, 1000);
  for (const auto& e : profile.entries) {
    EXPECT_FALSE(e.recommend_switchless) << e.name;
  }
}

TEST(Profiler, NestedOcallOverheadExcludedFromSwitchlessParent) {
  // Regression: the profile is built from the bridge's measured per-call
  // transition cycles, which are exclusive. A switchless ecall issuing
  // nested ocalls must report only its own handshake+edge overhead; the
  // old constant model charged it a full hardware transition per call, so
  // the nested bridge time was effectively counted twice in the totals.
  Env env;
  sgx::Enclave enclave(env, "prof", Sha256::hash("img"), 1 << 20);
  enclave.init(Sha256::hash("img"));
  sgx::TransitionBridge bridge(env, enclave);
  const sgx::CallId log_id = bridge.register_ocall(
      "ocall_log", [](ByteReader&) { return ByteBuffer(); });
  const sgx::CallId tick_id =
      bridge.register_ecall("ecall_tick", [&, log_id](ByteReader&) {
        ByteBuffer nested;
        for (int i = 0; i < 3; ++i) bridge.ocall(log_id, ByteBuffer(), nested);
        return ByteBuffer();
      });
  bridge.set_switchless(tick_id, true);
  constexpr Cycles kCalls = 1500;
  ByteBuffer resp;
  for (Cycles i = 0; i < kCalls; ++i) {
    bridge.ecall(tick_id, ByteBuffer(), resp);
  }

  const auto profile = sgx::profile_transitions(bridge.stats(), env.cost,
                                                /*min_calls=*/1000,
                                                /*small_payload=*/512);
  const sgx::TransitionProfileEntry* parent = nullptr;
  const sgx::TransitionProfileEntry* nested = nullptr;
  for (const auto& e : profile.entries) {
    if (e.name == "ecall_tick") parent = &e;
    if (e.name == "ocall_log") nested = &e;
  }
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(parent->transition_overhead_cycles,
            kCalls * (env.cost.switchless_call_cycles +
                      env.cost.edge_call_cycles))
      << "parent must pay only its own handshake + edge dispatch";
  EXPECT_EQ(nested->transition_overhead_cycles,
            3 * kCalls * (env.cost.ocall_cycles + env.cost.edge_call_cycles))
      << "nested ocall time belongs to the ocall's own entry";
  EXPECT_EQ(profile.total_overhead_cycles,
            parent->transition_overhead_cycles +
                nested->transition_overhead_cycles);
}

// ---- Multi-isolate pairs (future work §7) ----------------------------------

class MultiIsolateTest : public ::testing::Test {
 protected:
  MultiIsolateTest() : app_(apps::build_bank_app(), 3) {}

  core::MultiIsolateApp app_;
};

TEST_F(MultiIsolateTest, ProxiesBindToTheirIsolate) {
  auto& u = app_.untrusted_context();
  const Value a0 = app_.construct_in(
      0, "Account", {Value("tenant0"), Value(std::int32_t{10})});
  const Value a1 = app_.construct_in(
      1, "Account", {Value("tenant1"), Value(std::int32_t{20})});
  const Value a2 = app_.construct_in(
      2, "Account", {Value("tenant2"), Value(std::int32_t{30})});

  EXPECT_EQ(app_.rmi().trusted_registry(0).size(), 1u);
  EXPECT_EQ(app_.rmi().trusted_registry(1).size(), 1u);
  EXPECT_EQ(app_.rmi().trusted_registry(2).size(), 1u);

  u.invoke(a1.as_ref(), "updateBalance", {Value(std::int32_t{5})});
  EXPECT_EQ(u.invoke(a0.as_ref(), "getBalance", {}).as_i32(), 10);
  EXPECT_EQ(u.invoke(a1.as_ref(), "getBalance", {}).as_i32(), 25);
  EXPECT_EQ(u.invoke(a2.as_ref(), "getBalance", {}).as_i32(), 30);
}

TEST_F(MultiIsolateTest, HeapsAreIndependent) {
  const Value a0 = app_.construct_in(
      0, "Account", {Value("t0"), Value(std::int32_t{1})});
  const Value a1 = app_.construct_in(
      1, "Account", {Value("t1"), Value(std::int32_t{2})});
  (void)a0;

  const auto gc0_before =
      app_.trusted_context(0).isolate().heap().stats().gc_count;
  const auto gc1_before =
      app_.trusted_context(1).isolate().heap().stats().gc_count;
  app_.collect_isolate(0);
  EXPECT_EQ(app_.trusted_context(0).isolate().heap().stats().gc_count,
            gc0_before + 1);
  EXPECT_EQ(app_.trusted_context(1).isolate().heap().stats().gc_count,
            gc1_before)
      << "collecting isolate 0 never pauses isolate 1 (§2.2)";

  // Mirrors survive their isolate's collection (registry roots).
  EXPECT_EQ(app_.untrusted_context()
                .invoke(a1.as_ref(), "getBalance", {})
                .as_i32(),
            2);
}

TEST_F(MultiIsolateTest, PlainNewTargetsIsolateZero) {
  auto& u = app_.untrusted_context();
  const Value p = u.construct("Account", {Value("x"), Value(std::int32_t{7})});
  EXPECT_EQ(app_.rmi().trusted_registry(0).size(), 1u);
  EXPECT_EQ(u.invoke(p.as_ref(), "getBalance", {}).as_i32(), 7);
}

TEST_F(MultiIsolateTest, DefaultIsolateCountValidated) {
  EXPECT_THROW(core::MultiIsolateApp(apps::build_bank_app(), 0), Error);
  EXPECT_THROW(app_.construct_in(9, "Account", {}), RuntimeFault);
  EXPECT_THROW(app_.trusted_context(9), RuntimeFault);
}

TEST_F(MultiIsolateTest, CrossIsolateProxyPassingRejected) {
  auto& u = app_.untrusted_context();
  const Value reg0 = app_.construct_in(0, "AccountRegistry", {});
  const Value acct1 = app_.construct_in(
      1, "Account", {Value("other"), Value(std::int32_t{1})});
  // A proxy of isolate 1's Account cannot flow into isolate 0's registry.
  EXPECT_THROW(u.invoke(reg0.as_ref(), "addAccount", {acct1}), SecurityFault);
  // Same-isolate passing works.
  const Value acct0 = app_.construct_in(
      0, "Account", {Value("own"), Value(std::int32_t{2})});
  u.invoke(reg0.as_ref(), "addAccount", {acct0});
  EXPECT_EQ(u.invoke(reg0.as_ref(), "count", {}).as_i32(), 1);
}

TEST_F(MultiIsolateTest, GcEvictionRoutedPerIsolate) {
  auto& u = app_.untrusted_context();
  {
    std::vector<Value> pool;
    for (int i = 0; i < 20; ++i) {
      pool.push_back(app_.construct_in(
          i % 3, "Account", {Value("p"), Value(std::int32_t{i})}));
    }
  }
  const Value keeper = app_.construct_in(
      1, "Account", {Value("keeper"), Value(std::int32_t{42})});

  u.isolate().heap().collect();
  app_.rmi().force_gc_scan();
  EXPECT_EQ(app_.rmi().trusted_registry(0).size(), 0u);
  EXPECT_EQ(app_.rmi().trusted_registry(1).size(), 1u) << "keeper survives";
  EXPECT_EQ(app_.rmi().trusted_registry(2).size(), 0u);
  EXPECT_EQ(u.invoke(keeper.as_ref(), "getBalance", {}).as_i32(), 42);
}

TEST_F(MultiIsolateTest, TrustedToUntrustedDirectionWorksPerIsolate) {
  // Each isolate's trusted code can reach out: Vault (trusted) builds an
  // untrusted Logger through the shared untrusted runtime.
  core::AppConfig config;
  config.extra_entry_points = {{"Vault", model::kConstructorName}};
  core::MultiIsolateApp app(apps::build_bank_app(/*with_audit=*/true), 2,
                            config);
  auto& u = app.untrusted_context();
  const Value v0 = app.construct_in(0, "Vault", {});
  const Value v1 = app.construct_in(1, "Vault", {});
  u.invoke(v0.as_ref(), "audit", {Value("a")});
  u.invoke(v1.as_ref(), "audit", {Value("b")});
  u.invoke(v1.as_ref(), "audit", {Value("c")});
  EXPECT_EQ(u.invoke(v0.as_ref(), "auditCount", {}).as_i32(), 1);
  EXPECT_EQ(u.invoke(v1.as_ref(), "auditCount", {}).as_i32(), 2);
  EXPECT_EQ(app.rmi().untrusted_registry().size(), 2u)
      << "one Logger mirror per Vault";
}

}  // namespace
}  // namespace msv
