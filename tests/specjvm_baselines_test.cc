// Tests for src/apps/specjvm and src/baselines: the JVM estimator model
// and the benchmark harness behaviours Table 1 depends on.
#include <gtest/gtest.h>

#include "apps/specjvm/harness.h"
#include "baselines/jvm.h"
#include "support/error.h"

namespace msv {
namespace {

using apps::specjvm::Benchmark;
using apps::specjvm::WorkloadSpec;
using baselines::JvmEstimator;

TEST(JvmEstimator, StartupIncludesClassLoading) {
  const CostModel cost;
  JvmEstimator jvm(cost);
  const auto few = jvm.estimate(10, 1'000'000, 0, false);
  const auto many = jvm.estimate(1000, 1'000'000, 0, false);
  EXPECT_EQ(many.startup - few.startup, 990 * cost.jvm_class_load_cycles);
}

TEST(JvmEstimator, SconeInflatesStartupAndCompute) {
  const CostModel cost;
  JvmEstimator jvm(cost);
  const Cycles work = 10'000'000'000ull;
  const auto plain = jvm.estimate(100, work, 0, false);
  const auto scone = jvm.estimate(100, work, 0, true);
  EXPECT_GT(scone.startup, plain.startup);
  EXPECT_GT(scone.compute, plain.compute);
}

TEST(JvmEstimator, GenerationalGcBeatsSerialGc) {
  const CostModel cost;
  JvmEstimator jvm(cost);
  const Cycles total = 20'000'000'000ull;
  const Cycles gc = 15'000'000'000ull;  // GC-dominated (Monte Carlo shape)
  const auto e = jvm.estimate(100, total, gc, false);
  EXPECT_LT(e.gc, gc / 5) << "HotSpot GC models far below serial semispace";
}

TEST(JvmEstimator, GcShareAboveTotalRejected) {
  JvmEstimator jvm(CostModel{});
  EXPECT_THROW(jvm.estimate(10, 100, 200, false), RuntimeFault);
}

TEST(JvmEstimator, GcDominatedWorkloadFavoursJvmDespiteStartup) {
  // The Table 1 Monte_Carlo inversion: when the NI run is dominated by
  // serial-GC work, the JVM estimate lands *below* the NI time even after
  // paying startup.
  const CostModel cost;
  JvmEstimator jvm(cost);
  const Cycles total = cost.seconds_to_cycles(6.0);
  const Cycles gc = cost.seconds_to_cycles(5.2);
  const auto scone = jvm.estimate(420, total, gc, true);
  EXPECT_LT(scone.total(), total);
}

TEST(SpecHarness, NamesAndDefaults) {
  for (const auto b : apps::specjvm::kAllBenchmarks) {
    EXPECT_STRNE(apps::specjvm::benchmark_name(b), "?");
    const auto spec = WorkloadSpec::defaults(b);
    EXPECT_GE(spec.iterations, 1u);
  }
}

TEST(SpecHarness, SgxRunSlowerThanNative) {
  WorkloadSpec spec = WorkloadSpec::defaults(Benchmark::kFft);
  spec.iterations = 2;  // keep the test fast
  const auto nosgx = run_native_image(Benchmark::kFft, spec, false);
  const auto sgx = run_native_image(Benchmark::kFft, spec, true);
  EXPECT_GT(sgx.seconds, nosgx.seconds);
  EXPECT_NEAR(nosgx.checksum, sgx.checksum, 1e-9)
      << "same real computation on both sides";
}

TEST(SpecHarness, MonteCarloTriggersManyCollections) {
  WorkloadSpec spec = WorkloadSpec::defaults(Benchmark::kMonteCarlo);
  spec.mc_samples = 400'000;  // scaled down for the test
  spec.heap_bytes = 8ull << 20;
  spec.churn_live_bytes = 3ull << 20;
  const auto run = run_native_image(Benchmark::kMonteCarlo, spec, false);
  EXPECT_GT(run.gc_count, 3u);
  EXPECT_GT(run.gc_cycles, 0u);
}

TEST(SpecHarness, ComputeKernelsBarelyCollect) {
  WorkloadSpec spec = WorkloadSpec::defaults(Benchmark::kSor);
  spec.iterations = 1;
  const auto run = run_native_image(Benchmark::kSor, spec, false);
  EXPECT_EQ(run.gc_count, 0u);
}

TEST(SpecHarness, AllModesOrdering) {
  WorkloadSpec spec = WorkloadSpec::defaults(Benchmark::kLu);
  spec.iterations = 2;
  const auto row = run_all_modes(Benchmark::kLu, spec);
  // Compute-bound kernel: native image beats the JVM everywhere, and the
  // in-enclave JVM is the slowest configuration (Fig. 12's shape).
  EXPECT_LT(row.nosgx_ni, row.nosgx_jvm);
  EXPECT_LT(row.sgx_ni, row.scone_jvm);
  EXPECT_GT(row.table1_gain(), 1.0);
}

}  // namespace
}  // namespace msv
