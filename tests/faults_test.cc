// Tests for the fault-injection and recovery layer (DESIGN.md §12):
// seeded deterministic fault plans, the polled injector, enclave loss /
// restart / epoch fencing, and the request server's recovery ladder
// (bounded retry, sealed-checkpoint restore, corruption fallback).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/illustrative/bank.h"
#include "core/multi_app.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "fleet/router.h"
#include "rmi/multi_isolate.h"
#include "sched/scheduler.h"
#include "server/server.h"
#include "sgx/enclave.h"
#include "sgx/sealing.h"
#include "sim/env.h"
#include "support/error.h"

namespace msv {
namespace {

using faults::FaultEvent;
using faults::FaultInjector;
using faults::FaultKind;
using faults::FaultPlan;
using faults::FaultPlanConfig;

// ---- Fault plans -----------------------------------------------------------

FaultPlanConfig busy_config(std::uint64_t seed) {
  FaultPlanConfig c;
  c.seed = seed;
  c.horizon = 1'000'000;
  c.enclave_losses = 3;
  c.transition_failures = 5;
  c.epc_spikes = 2;
  c.epc_spike_cycles = 100'000;
  c.tcs_bursts = 2;
  c.tcs_burst_cycles = 50'000;
  c.blob_corruptions = 2;
  return c;
}

TEST(FaultPlanTest, GenerateIsPureFunctionOfConfig) {
  const FaultPlan a = FaultPlan::generate(busy_config(42));
  const FaultPlan b = FaultPlan::generate(busy_config(42));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.digest(), b.digest());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
  EXPECT_NE(a.digest(), FaultPlan::generate(busy_config(43)).digest());
}

TEST(FaultPlanTest, GenerateCountsKindsAndClosesWindows) {
  const FaultPlanConfig cfg = busy_config(7);
  const FaultPlan plan = FaultPlan::generate(cfg);
  // 3 losses + 5 failures + 2*(start+end) EPC + 2*(start+end) TCS + 2.
  ASSERT_EQ(plan.size(), 18u);
  std::uint32_t losses = 0, failures = 0, corruptions = 0;
  std::uint32_t epc_open = 0, tcs_open = 0;
  Cycles prev = 0;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.at, prev) << "plan must be time-sorted";
    prev = e.at;
    EXPECT_LT(e.at, cfg.horizon) << "every event must land inside the horizon";
    switch (e.kind) {
      case FaultKind::kEnclaveLoss: ++losses; break;
      case FaultKind::kTransitionFailure: ++failures; break;
      case FaultKind::kBlobCorruption: ++corruptions; break;
      case FaultKind::kEpcPressureStart: ++epc_open; break;
      case FaultKind::kEpcPressureEnd:
        ASSERT_GT(epc_open, 0u) << "window end before its start";
        --epc_open;
        break;
      case FaultKind::kTcsSeizeStart: ++tcs_open; break;
      case FaultKind::kTcsSeizeEnd:
        ASSERT_GT(tcs_open, 0u) << "window end before its start";
        --tcs_open;
        break;
    }
  }
  EXPECT_EQ(losses, cfg.enclave_losses);
  EXPECT_EQ(failures, cfg.transition_failures);
  EXPECT_EQ(corruptions, cfg.blob_corruptions);
  EXPECT_EQ(epc_open, 0u) << "every EPC window must close inside the horizon";
  EXPECT_EQ(tcs_open, 0u) << "every TCS window must close inside the horizon";
}

TEST(FaultPlanTest, ManualAddKeepsTimeSortedAndStable) {
  FaultPlan plan;
  plan.add({300, FaultKind::kTransitionFailure, 0});
  plan.add({100, FaultKind::kEnclaveLoss, 0});
  plan.add({300, FaultKind::kBlobCorruption, 0});  // equal instant: after
  plan.add({200, FaultKind::kEpcPressureStart, 8});
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kEnclaveLoss);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kEpcPressureStart);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kTransitionFailure);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kBlobCorruption);
}

TEST(FaultPlanTest, DigestSeesEveryField) {
  FaultPlan a, b, c, d;
  a.add({100, FaultKind::kEpcPressureStart, 8});
  b.add({100, FaultKind::kEpcPressureStart, 9});   // magnitude differs
  c.add({101, FaultKind::kEpcPressureStart, 8});   // instant differs
  d.add({100, FaultKind::kEpcPressureStart, 8, 2});  // target differs
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(b.digest(), c.digest());
  EXPECT_NE(a.digest(), d.digest());
}

// ---- Fleet-scoped plans (DESIGN.md §14) ------------------------------------

TEST(FaultPlanTest, FleetEventsPartitionByTarget) {
  FaultPlanConfig cfg = busy_config(42);
  cfg.fleet_shards = 4;
  cfg.shard_losses = 6;
  cfg.shard_transition_failures = 4;
  const FaultPlan plan = FaultPlan::generate(cfg);
  EXPECT_EQ(plan.digest(), FaultPlan::generate(cfg).digest());
  std::size_t targeted = 0;
  for (const FaultEvent& e : plan.events()) {
    if (e.target != faults::kAnyTarget) {
      ++targeted;
      EXPECT_LT(e.target, 4u);
    }
  }
  EXPECT_EQ(targeted, 10u);
  // The per-shard projections partition the targeted events...
  std::size_t across_shards = 0;
  for (std::uint32_t k = 0; k < 4; ++k) {
    const FaultPlan mine = plan.for_target(k);
    for (const FaultEvent& e : mine.events()) EXPECT_EQ(e.target, k);
    across_shards += mine.size();
  }
  EXPECT_EQ(across_shards, targeted);
  // ...and with include_untargeted every projection carries the shared
  // single-enclave events too.
  const std::size_t untargeted = plan.size() - targeted;
  EXPECT_EQ(plan.for_target(0, /*include_untargeted=*/true).size(),
            plan.for_target(0).size() + untargeted);
}

TEST(FaultPlanTest, FleetCountsExtendTheSingleEnclavePrefix) {
  // Adding fleet events must not disturb the single-enclave schedule a
  // pre-fleet config would generate: same seed, same prefix.
  const FaultPlanConfig base = busy_config(9);
  FaultPlanConfig fleet = base;
  fleet.fleet_shards = 2;
  fleet.shard_losses = 3;
  const FaultPlan a = FaultPlan::generate(base);
  const FaultPlan b = FaultPlan::generate(fleet);
  ASSERT_EQ(b.size(), a.size() + 3);
  std::vector<FaultEvent> untargeted;
  for (const FaultEvent& e : b.events()) {
    if (e.target == faults::kAnyTarget) untargeted.push_back(e);
  }
  ASSERT_EQ(untargeted.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(untargeted[i].at, a.events()[i].at);
    EXPECT_EQ(untargeted[i].kind, a.events()[i].kind);
    EXPECT_EQ(untargeted[i].magnitude, a.events()[i].magnitude);
  }
}

// ---- Injector (polled directly, no app) ------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : enclave_(env_, "t", Sha256::hash("img"), 4096) {
    enclave_.init(Sha256::hash("img"));
  }

  Env env_;
  sgx::Enclave enclave_;
};

TEST_F(FaultInjectorTest, LossIsHeldUntilEcallEntry) {
  FaultPlan plan;
  plan.add({0, FaultKind::kEnclaveLoss, 0});
  FaultInjector injector(env_, std::move(plan));
  injector.arm(enclave_);
  // Due, but an ocall-side poll must not fire it: the loss surfaces
  // mid-ecall or not at all.
  EXPECT_NO_THROW(injector.on_transition_start());
  EXPECT_EQ(injector.stats().enclave_losses, 0u);
  EXPECT_EQ(injector.pending(), 1u);
  EXPECT_THROW(injector.on_ecall_entry(), sgx::EnclaveLostError);
  EXPECT_EQ(enclave_.state(), sgx::EnclaveState::kLost);
  EXPECT_EQ(injector.stats().enclave_losses, 1u);
  EXPECT_TRUE(injector.exhausted());
}

TEST_F(FaultInjectorTest, EventsQueueBehindAPendingLoss) {
  FaultPlan plan;
  plan.add({0, FaultKind::kEnclaveLoss, 0});
  plan.add({0, FaultKind::kTransitionFailure, 0});
  FaultInjector injector(env_, std::move(plan));
  injector.arm(enclave_);
  // The due transition failure waits behind the held loss...
  EXPECT_NO_THROW(injector.on_transition_start());
  EXPECT_EQ(injector.pending(), 2u);
  // ...fires the loss first at ecall entry, then the failure on the next
  // poll (one throw per poll: a consumed event never replays).
  EXPECT_THROW(injector.on_ecall_entry(), sgx::EnclaveLostError);
  EXPECT_THROW(injector.on_transition_start(), sgx::TransitionError);
  EXPECT_TRUE(injector.exhausted());
}

TEST_F(FaultInjectorTest, TransitionFailureFiresExactlyOnce) {
  FaultPlan plan;
  plan.add({0, FaultKind::kTransitionFailure, 0});
  FaultInjector injector(env_, std::move(plan));
  injector.arm(enclave_);
  EXPECT_THROW(injector.on_transition_start(), sgx::TransitionError);
  EXPECT_NO_THROW(injector.on_transition_start());
  EXPECT_EQ(injector.stats().transition_failures, 1u);
}

TEST_F(FaultInjectorTest, EpcPressureWindowOpensAndCloses) {
  // Enclave build/measure already advanced the clock: schedule relative.
  const Cycles t0 = env_.clock.now();
  FaultPlan plan;
  plan.add({t0, FaultKind::kEpcPressureStart, 0});  // 0 = resolve at arm
  plan.add({t0 + 1000, FaultKind::kEpcPressureEnd, 0});
  FaultInjector injector(env_, std::move(plan));
  injector.arm(enclave_);
  injector.on_transition_start();
  const std::uint64_t half =
      std::max<std::uint64_t>(1, enclave_.epc().capacity_pages() / 2);
  EXPECT_EQ(enclave_.epc().reserved_pages(), half);
  EXPECT_EQ(injector.stats().epc_spikes, 1u);
  env_.clock.advance(1000);
  injector.on_transition_start();
  EXPECT_EQ(enclave_.epc().reserved_pages(), 0u);
}

TEST_F(FaultInjectorTest, TcsSeizureWindowOpensAndCloses) {
  const Cycles t0 = env_.clock.now();
  FaultPlan plan;
  plan.add({t0, FaultKind::kTcsSeizeStart, 0});  // 0 = all slots but one
  plan.add({t0 + 1000, FaultKind::kTcsSeizeEnd, 0});
  FaultInjector injector(env_, std::move(plan));
  injector.arm(enclave_);
  injector.on_transition_start();
  EXPECT_EQ(enclave_.tcs().seized(), enclave_.tcs().slots() - 1);
  EXPECT_EQ(injector.stats().tcs_bursts, 1u);
  env_.clock.advance(1000);
  injector.on_transition_start();
  EXPECT_EQ(enclave_.tcs().seized(), 0u);
}

TEST_F(FaultInjectorTest, CorruptionWithoutTargetIsCountedNotEaten) {
  FaultPlan plan;
  plan.add({0, FaultKind::kBlobCorruption, 0});
  FaultInjector injector(env_, std::move(plan));
  injector.arm(enclave_);
  EXPECT_NO_THROW(injector.on_transition_start());
  EXPECT_EQ(injector.stats().blob_corruptions, 0u);
  EXPECT_EQ(injector.stats().skipped_corruptions, 1u);
}

TEST_F(FaultInjectorTest, FutureEventsAreNotFiredEarly) {
  FaultPlan plan;
  plan.add({env_.clock.now() + 5000, FaultKind::kTransitionFailure, 0});
  FaultInjector injector(env_, std::move(plan));
  injector.arm(enclave_);
  EXPECT_NO_THROW(injector.on_transition_start());
  EXPECT_EQ(injector.pending(), 1u);
  env_.clock.advance(5000);
  EXPECT_THROW(injector.on_transition_start(), sgx::TransitionError);
}

// ---- Enclave loss, restart and epoch fencing -------------------------------

TEST(EnclaveRecoveryTest, LostEnclaveFaultsEveryEcallUntilRestart) {
  core::MultiIsolateApp app(apps::build_bank_app(), 1, {});
  const rt::Value session =
      app.construct_in(0, "Account", {rt::Value("a"), rt::Value(5)});
  EXPECT_EQ(
      app.untrusted_context().invoke(session.as_ref(), "getBalance", {})
          .as_i32(),
      5);
  EXPECT_EQ(app.enclave().epoch(), 1u);
  // A healthy enclave must refuse a restart (nothing to recover from).
  EXPECT_THROW(app.restart_enclave(), RuntimeFault);

  app.enclave().mark_lost();
  EXPECT_THROW(
      app.untrusted_context().invoke(session.as_ref(), "getBalance", {}),
      sgx::EnclaveLostError);

  app.restart_enclave();
  EXPECT_EQ(app.enclave().state(), sgx::EnclaveState::kInitialized);
  EXPECT_EQ(app.enclave().epoch(), 2u);
  EXPECT_EQ(app.enclave().lost_count(), 1u);
  // The old proxy's mirror died with the old enclave heap: epoch fencing
  // turns the dangling route into a typed fault, not a wrong answer.
  EXPECT_THROW(
      app.untrusted_context().invoke(session.as_ref(), "getBalance", {}),
      rmi::StaleProxyError);
  // Fresh sessions against the restarted enclave work.
  const rt::Value fresh =
      app.construct_in(0, "Account", {rt::Value("a"), rt::Value(7)});
  EXPECT_EQ(
      app.untrusted_context().invoke(fresh.as_ref(), "getBalance", {})
          .as_i32(),
      7);
}

TEST(EnclaveRecoveryTest, SealedBlobSurvivesRestart) {
  // Same image => same measurement => same sealing key: a checkpoint
  // sealed before the loss unseals after the restart.
  core::MultiIsolateApp app(apps::build_bank_app(), 1, {});
  sgx::SealingPlatform sealer("fuse");
  const std::vector<std::uint8_t> secret = {1, 2, 3, 4};
  const sgx::SealedBlob blob = sealer.seal(app.enclave(), secret, 99);
  app.enclave().mark_lost();
  app.restart_enclave();
  EXPECT_EQ(sealer.unseal(app.enclave(), blob), secret);
}

// ---- Server recovery ladder ------------------------------------------------

server::ServerConfig recovery_config(std::uint32_t checkpoint_every) {
  server::ServerConfig cfg;
  cfg.recovery.enabled = true;
  cfg.recovery.checkpoint_every = checkpoint_every;
  return cfg;
}

server::Request deposit(std::int32_t amount) {
  server::Request r;
  r.op = server::RequestOp::kDeposit;
  r.amount = amount;
  return r;
}

server::Request read_balance() {
  server::Request r;
  r.op = server::RequestOp::kBalance;
  return r;
}

TEST(ServerRecoveryTest, RestartRestoresSealedCheckpoints) {
  core::MultiIsolateApp app(apps::build_bank_app(), 2, {});
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, recovery_config(2));
  srv.start();
  sched.spawn("clients", [&] {
    for (int i = 0; i < 4; ++i) {
      for (std::uint32_t t = 0; t < 2; ++t) {
        srv.submit_and_wait(t, deposit(10));
      }
    }
  });
  sched.run();
  EXPECT_EQ(srv.tenant_stats(0).checkpoints, 2u);  // after requests 2 and 4

  app.enclave().mark_lost();
  std::int64_t bal0 = -1, bal1 = -1;
  sched.spawn("reader", [&] {
    bal0 = srv.submit_and_wait(0, read_balance());
    bal1 = srv.submit_and_wait(1, read_balance());
  });
  sched.run();
  // The first post-loss request restarts the enclave once and restores
  // *both* tenants from their latest checkpoints (sealed at deposit 4).
  EXPECT_EQ(bal0, 40);
  EXPECT_EQ(bal1, 40);
  EXPECT_EQ(srv.restarts(), 1u);
  EXPECT_EQ(app.enclave().epoch(), 2u);
  EXPECT_EQ(srv.tenant_stats(0).restored, 1u);
  EXPECT_EQ(srv.tenant_stats(1).restored, 1u);
  EXPECT_EQ(srv.stats().failed, 0u);
  srv.stop();
}

TEST(ServerRecoveryTest, DepositsSinceLastCheckpointAreLost) {
  core::MultiIsolateApp app(apps::build_bank_app(), 1, {});
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, recovery_config(2));
  srv.start();
  sched.spawn("client", [&] {
    for (int i = 0; i < 3; ++i) srv.submit_and_wait(0, deposit(10));
  });
  sched.run();
  app.enclave().mark_lost();
  std::int64_t balance = -1;
  sched.spawn("reader",
              [&] { balance = srv.submit_and_wait(0, read_balance()); });
  sched.run();
  // Checkpoint sealed at deposit 2 (balance 20); deposit 3 is inside the
  // crash-consistency window and rolls back.
  EXPECT_EQ(balance, 20);
  EXPECT_EQ(srv.tenant_stats(0).restored, 1u);
  srv.stop();
}

TEST(ServerRecoveryTest, RetryAbsorbsTransientTransitionFailures) {
  core::MultiIsolateApp app(apps::build_bank_app(), 1, {});
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, recovery_config(0));
  srv.start();

  FaultPlan plan;
  plan.add({0, FaultKind::kTransitionFailure, 0});
  plan.add({0, FaultKind::kTransitionFailure, 0});
  FaultInjector injector(app.env(), std::move(plan));
  injector.arm(app.enclave());
  app.bridge().attach_fault_injector(&injector);

  std::int64_t balance = -1;
  sched.spawn("client", [&] {
    srv.submit_and_wait(0, deposit(10));
    balance = srv.submit_and_wait(0, read_balance());
  });
  sched.run();
  app.bridge().attach_fault_injector(nullptr);

  EXPECT_EQ(balance, 10);
  EXPECT_EQ(srv.tenant_stats(0).retries, 2u);
  EXPECT_EQ(srv.tenant_stats(0).completed, 2u);
  EXPECT_EQ(srv.tenant_stats(0).failed, 0u);
  EXPECT_EQ(injector.stats().transition_failures, 2u);
  srv.stop();
}

TEST(ServerRecoveryTest, RetryBudgetExhaustionFailsTheRequest) {
  core::MultiIsolateApp app(apps::build_bank_app(), 1, {});
  sched::Scheduler sched(app.env());
  server::ServerConfig cfg = recovery_config(0);
  cfg.recovery.max_attempts = 3;
  server::RequestServer srv(sched, app, cfg);
  srv.start();

  FaultPlan plan;
  for (int i = 0; i < 10; ++i) {
    plan.add({0, FaultKind::kTransitionFailure, 0});
  }
  FaultInjector injector(app.env(), std::move(plan));
  injector.arm(app.enclave());
  app.bridge().attach_fault_injector(&injector);

  sched.spawn("client", [&] {
    EXPECT_THROW(srv.submit_and_wait(0, deposit(10)),
                 server::RetriesExhaustedError);
  });
  sched.run();
  app.bridge().attach_fault_injector(nullptr);

  EXPECT_EQ(srv.tenant_stats(0).failed, 1u);
  EXPECT_EQ(srv.tenant_stats(0).retries, 3u);  // one per attempt
  EXPECT_EQ(srv.tenant_stats(0).completed, 0u);
  srv.stop();
}

TEST(ServerRecoveryTest, CorruptCheckpointIsRejectedAndFallsBack) {
  core::MultiIsolateApp app(apps::build_bank_app(), 1, {});
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, recovery_config(2));

  FaultPlan plan;
  plan.add({0, FaultKind::kBlobCorruption, 0});
  FaultInjector injector(app.env(), std::move(plan));
  injector.arm(app.enclave());
  srv.attach_fault_injector(injector);  // registers the blob corrupter
  srv.start();

  // Two deposits seal a checkpoint (balance 20)...
  sched.spawn("client", [&] {
    srv.submit_and_wait(0, deposit(10));
    srv.submit_and_wait(0, deposit(10));
  });
  sched.run();
  EXPECT_EQ(srv.tenant_stats(0).checkpoints, 1u);

  // ...then the corruption event flips one bit of the stored blob on the
  // next transition (an odd request, so no fresh checkpoint overwrites
  // the damage).
  app.bridge().attach_fault_injector(&injector);
  sched.spawn("client2", [&] { srv.submit_and_wait(0, read_balance()); });
  sched.run();
  app.bridge().attach_fault_injector(nullptr);
  EXPECT_EQ(injector.stats().blob_corruptions, 1u);

  app.enclave().mark_lost();
  std::int64_t balance = -1;
  sched.spawn("reader",
              [&] { balance = srv.submit_and_wait(0, read_balance()); });
  sched.run();
  // The tampered blob must fail authentication, never restore garbage:
  // the tenant falls back to a fresh session at the initial balance.
  EXPECT_EQ(balance, 0);
  EXPECT_EQ(srv.tenant_stats(0).checkpoint_corrupt, 1u);
  EXPECT_EQ(srv.tenant_stats(0).restored, 0u);
  EXPECT_EQ(srv.restarts(), 1u);
  srv.stop();
}

// ---- Fleet failover vs the restart ladder ----------------------------------

// The acceptance claim behind fig_fleet, in unit form: losing an enclave
// with a warm standby (replica promotion) must recover the shard at least
// 3x faster than the PR 5 restart-and-restore ladder. The recovery window
// is what ensure_recovered() bills — fence+flip for promotion vs a full
// enclave re-create and re-measure for restart.
TEST(FleetRecoveryTest, PromotionBeatsRestartLadderOnRecoveryLatency) {
  const auto recovery_window = [](bool replication) {
    const model::AppModel model = apps::build_bank_app();
    Env env;
    sched::Scheduler sched(env);
    fleet::FleetConfig cfg;
    cfg.shards = 1;
    cfg.tenants = 2;
    cfg.shard.replication = replication;
    cfg.shard.recovery.enabled = true;
    cfg.shard.recovery.checkpoint_every = 1;
    fleet::FleetRouter router(env, sched, model, cfg);
    router.start();
    sched.spawn("client", [&] {
      server::Request dep;
      dep.op = server::RequestOp::kDeposit;
      for (int i = 0; i < 3; ++i) router.submit_and_wait(0, dep);
      router.shard(0).active_app().enclave().mark_lost();
      router.submit_and_wait(0, dep);  // triggers the recovery path
    });
    sched.run();
    const Cycles window = router.shard(0).stats().last_recovery_cycles;
    router.stop();
    return window;
  };
  const Cycles promoted = recovery_window(true);
  const Cycles restarted = recovery_window(false);
  EXPECT_GT(restarted, 0u);
  EXPECT_LT(promoted * 3, restarted)
      << "promotion window " << promoted << " vs restart window "
      << restarted;
}

}  // namespace
}  // namespace msv
