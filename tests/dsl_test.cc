// Tests for src/dsl: the lexer, the parser/compiler, and programs written
// in the Montsalvat source language running through the full pipeline.
#include <gtest/gtest.h>

#include "core/montsalvat.h"
#include "dsl/lexer.h"
#include "dsl/parser.h"

namespace msv::dsl {
namespace {

using rt::Value;

// ---- Lexer -----------------------------------------------------------------

TEST(Lexer, TokenKinds) {
  const auto tokens = tokenize("class Foo @Trusted { x = 1 + 2.5; }");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "class");
  EXPECT_EQ(tokens[2].kind, TokenKind::kAnnotation);
  EXPECT_EQ(tokens[2].text, "Trusted");
  EXPECT_TRUE(tokens[3].is_punct("{"));
  EXPECT_EQ(tokens[6].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[6].int_value, 1);
  EXPECT_EQ(tokens[8].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[8].float_value, 2.5);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(Lexer, StringsWithEscapes) {
  const auto tokens = tokenize(R"("line\n\"quoted\"")");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].string_value, "line\n\"quoted\"");
}

TEST(Lexer, CommentsSkippedAndLinesCounted) {
  const auto tokens = tokenize("// comment\nfoo\n// more\nbar");
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[0].line, 2);
  EXPECT_EQ(tokens[1].text, "bar");
  EXPECT_EQ(tokens[1].line, 4);
}

TEST(Lexer, TwoCharOperators) {
  const auto tokens = tokenize("a == b <= c != d >= e");
  EXPECT_TRUE(tokens[1].is_punct("=="));
  EXPECT_TRUE(tokens[3].is_punct("<="));
  EXPECT_TRUE(tokens[5].is_punct("!="));
  EXPECT_TRUE(tokens[7].is_punct(">="));
}

TEST(Lexer, ErrorsCarryLineNumbers) {
  try {
    tokenize("ok\n\"unterminated");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(tokenize("what is #this"), ParseError);
  EXPECT_THROW(tokenize("@ lonely"), ParseError);
}

// ---- Parser / compiler -----------------------------------------------------

rt::Value run_main_native(const std::string& source) {
  core::NativeApp app(parse_program(source));
  return app.run_main();
}

TEST(Parser, ArithmeticAndControlFlow) {
  // Compute 10! iteratively and return it from main.
  const char* source = R"(
    class Main {
      static method main() {
        acc = 1;
        i = 1;
        while (i <= 10) {
          acc = acc * i;
          i = i + 1;
        }
        return acc;
      }
    }
    main Main;
  )";
  EXPECT_EQ(run_main_native(source).as_i32(), 3628800);
}

TEST(Parser, IfElseAndComparisons) {
  const char* source = R"(
    class Main {
      static method main() {
        a = 7;
        b = 3;
        if (a > b) { r = "gt"; } else { r = "le"; }
        if (a != 7) { r = "broken"; }
        if (!(a < b)) { r = @str_concat(r, "!"); }
        return r;
      }
    }
    main Main;
  )";
  EXPECT_EQ(run_main_native(source).as_string(), "gt!");
}

TEST(Parser, ObjectsFieldsAndMethodChaining) {
  const char* source = R"(
    class Counter {
      field n;
      ctor(start) { this.n = start; }
      method bump() { this.n = this.n + 1; return this; }
      method get() { return this.n; }
    }
    class Main {
      static method main() {
        c = new Counter(40);
        return c.bump().bump().get();
      }
    }
    main Main;
  )";
  EXPECT_EQ(run_main_native(source).as_i32(), 42);
}

TEST(Parser, UnaryMinusAndPrecedence) {
  const char* source = R"(
    class Main {
      static method main() { return -3 + 2 * 5; }
    }
    main Main;
  )";
  EXPECT_EQ(run_main_native(source).as_i32(), 7);
}

TEST(Parser, SyntaxErrorsReported) {
  EXPECT_THROW(parse_program("class {"), ParseError);
  EXPECT_THROW(parse_program("class C @Bogus {}"), ParseError);
  EXPECT_THROW(parse_program("class C { junk }"), ParseError);
  EXPECT_THROW(parse_program("class C { method m() { x = ; } }"), ParseError);
  EXPECT_THROW(parse_program("main;"), ParseError);
}

TEST(Parser, CompileErrorsReported) {
  // Unknown variable.
  EXPECT_THROW(parse_program(R"(
    class Main { static method main() { return ghost; } }
    main Main;
  )"),
               ParseError);
  // Unknown field.
  EXPECT_THROW(parse_program(R"(
    class C { method m() { this.nope = 1; } }
    class Main { static method main() { } }
    main Main;
  )"),
               ParseError);
  // `this` in a static method.
  EXPECT_THROW(parse_program(R"(
    class Main { static method main() { return this; } }
    main Main;
  )"),
               ParseError);
}

TEST(Parser, ValidationStillApplies) {
  // The compiled model goes through the same validation: a @Trusted main
  // class is rejected (§5.3).
  EXPECT_THROW(parse_program(R"(
    class Main @Trusted { static method main() { } }
    main Main;
  )"),
               Error);
}

TEST(Parser, AnnotatedProgramRunsPartitioned) {
  const char* source = R"(
    class Secret @Trusted {
      field value;
      ctor(v) { this.value = v; }
      method reveal(token) {
        if (token == 42) { return this.value; }
        return "denied";
      }
    }
    class Main @Untrusted {
      static method main() {
        s = new Secret("the-key");
        @print(s.reveal(41));
      }
    }
    main Main;
  )";
  core::PartitionedApp app(parse_program(source));
  app.run_main();
  auto& u = app.untrusted_context();
  const Value s = u.construct("Secret", {Value("classified")});
  EXPECT_EQ(u.invoke(s.as_ref(), "reveal", {Value(std::int32_t{41})})
                .as_string(),
            "denied");
  EXPECT_EQ(u.invoke(s.as_ref(), "reveal", {Value(std::int32_t{42})})
                .as_string(),
            "classified");
  EXPECT_GT(app.bridge().stats().ecalls, 0u);
}

TEST(Parser, GreaterThanSwapsOperandsCorrectly) {
  const char* source = R"(
    class Main {
      static method main() {
        a = 0;
        if (5 > 2) { a = a + 1; }
        if (2 > 5) { a = a + 10; }
        if (5 >= 5) { a = a + 100; }
        if (4 >= 5) { a = a + 1000; }
        return a;
      }
    }
    main Main;
  )";
  EXPECT_EQ(run_main_native(source).as_i32(), 101);
}

}  // namespace
}  // namespace msv::dsl
