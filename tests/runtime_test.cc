// Tests for src/runtime: handles, heap + semispace GC, weak references,
// isolates and value conversion.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/isolate.h"
#include "sgx/enclave.h"
#include "sim/domain.h"
#include "sim/env.h"
#include "support/error.h"

namespace msv::rt {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest()
      : domain_(env_),
        iso_(env_, domain_, Isolate::Config{"test-iso", 1ull << 20}) {}

  Env env_;
  UntrustedDomain domain_;
  Isolate iso_;
};

TEST_F(RuntimeTest, HandleTableBasics) {
  HandleTable t;
  const auto a = t.create(8);
  const auto b = t.create(16);
  EXPECT_EQ(t.get(a), 8u);
  EXPECT_EQ(t.get(b), 16u);
  EXPECT_EQ(t.live(), 2u);
  t.release(a);
  EXPECT_EQ(t.live(), 1u);
  EXPECT_THROW(t.get(a), RuntimeFault);
  const auto c = t.create(24);  // reuses the freed slot
  EXPECT_EQ(c, a);
}

TEST_F(RuntimeTest, AllocAndAccessInstance) {
  Heap& heap = iso_.heap();
  const ObjAddr obj = heap.alloc_instance(/*class_id=*/7, /*field_count=*/3);
  EXPECT_EQ(heap.kind(obj), ObjectKind::kInstance);
  EXPECT_EQ(heap.class_id(obj), 7u);
  EXPECT_EQ(heap.count(obj), 3u);
  EXPECT_NE(heap.identity_hash(obj), 0u);

  heap.set_slot(obj, 0, SlotValue::from_i32(-5));
  heap.set_slot(obj, 1, SlotValue::from_f64(2.5));
  heap.set_slot(obj, 2, SlotValue::from_bool(true));
  EXPECT_EQ(heap.slot(obj, 0).as_i32(), -5);
  EXPECT_DOUBLE_EQ(heap.slot(obj, 1).as_f64(), 2.5);
  EXPECT_TRUE(heap.slot(obj, 2).as_bool());
  EXPECT_EQ(heap.slot(obj, 0).tag, SlotTag::kI32);
}

TEST_F(RuntimeTest, StringsRoundTrip) {
  Heap& heap = iso_.heap();
  const ObjAddr s = heap.alloc_string("montsalvat");
  EXPECT_EQ(heap.kind(s), ObjectKind::kString);
  EXPECT_EQ(heap.string_at(s), "montsalvat");
  EXPECT_EQ(heap.count(s), 10u);
}

TEST_F(RuntimeTest, SlotIndexOutOfRangeThrows) {
  Heap& heap = iso_.heap();
  const ObjAddr obj = heap.alloc_instance(1, 2);
  EXPECT_THROW(heap.slot(obj, 2), RuntimeFault);
  EXPECT_THROW(heap.set_slot(obj, 99, SlotValue::null()), RuntimeFault);
}

TEST_F(RuntimeTest, NullDereferenceThrows) {
  EXPECT_THROW(iso_.heap().kind(kNullAddr), RuntimeFault);
}

TEST_F(RuntimeTest, GcPreservesReachableGraph) {
  Heap& heap = iso_.heap();
  const GcRef root = iso_.make_ref(heap.alloc_instance(1, 2));
  {
    // child reachable only through root
    const ObjAddr child = heap.alloc_string("payload");
    heap.set_slot(root.address(), 0, SlotValue::from_ref(child));
  }
  heap.set_slot(root.address(), 1, SlotValue::from_i32(42));

  const auto gcs_before = heap.stats().gc_count;
  heap.collect();
  EXPECT_EQ(heap.stats().gc_count, gcs_before + 1);

  // The root handle was forwarded and the graph survived.
  EXPECT_EQ(heap.slot(root.address(), 1).as_i32(), 42);
  const ObjAddr child = heap.slot(root.address(), 0).as_ref();
  EXPECT_EQ(heap.string_at(child), "payload");
}

TEST_F(RuntimeTest, GcReclaimsGarbage) {
  Heap& heap = iso_.heap();
  const GcRef keep = iso_.make_ref(heap.alloc_instance(1, 1));
  for (int i = 0; i < 1000; ++i) heap.alloc_string("garbage-garbage");
  const std::uint64_t used_before = heap.used_bytes();
  heap.collect();
  EXPECT_LT(heap.used_bytes(), used_before / 10);
  EXPECT_EQ(heap.kind(keep.address()), ObjectKind::kInstance);
}

TEST_F(RuntimeTest, GcPreservesIdentityHash) {
  Heap& heap = iso_.heap();
  const GcRef obj = iso_.make_ref(heap.alloc_instance(1, 0));
  const std::uint32_t hash = heap.identity_hash(obj.address());
  heap.collect();
  EXPECT_EQ(heap.identity_hash(obj.address()), hash);
}

TEST_F(RuntimeTest, GcHandlesCycles) {
  Heap& heap = iso_.heap();
  const GcRef a = iso_.make_ref(heap.alloc_instance(1, 1));
  const GcRef b = iso_.make_ref(heap.alloc_instance(1, 1));
  heap.set_slot(a.address(), 0, SlotValue::from_ref(b.address()));
  heap.set_slot(b.address(), 0, SlotValue::from_ref(a.address()));
  heap.collect();
  EXPECT_EQ(heap.slot(a.address(), 0).as_ref(), b.address());
  EXPECT_EQ(heap.slot(b.address(), 0).as_ref(), a.address());
}

TEST_F(RuntimeTest, SharedObjectCopiedOnce) {
  Heap& heap = iso_.heap();
  const GcRef a = iso_.make_ref(heap.alloc_instance(1, 1));
  const GcRef b = iso_.make_ref(heap.alloc_instance(1, 1));
  const ObjAddr shared = heap.alloc_string("shared");
  heap.set_slot(a.address(), 0, SlotValue::from_ref(shared));
  heap.set_slot(b.address(), 0, SlotValue::from_ref(shared));
  heap.collect();
  EXPECT_EQ(heap.slot(a.address(), 0).as_ref(),
            heap.slot(b.address(), 0).as_ref());
}

TEST_F(RuntimeTest, AllocationTriggersGcWhenFull) {
  // 64 KiB heap -> 32 KiB semispace; allocate far more garbage than that.
  UntrustedDomain domain(env_);
  Isolate small(env_, domain, Isolate::Config{"small", 64 << 10});
  for (int i = 0; i < 10'000; ++i) small.heap().alloc_string("0123456789abcdef");
  EXPECT_GT(small.heap().stats().gc_count, 0u);
}

TEST_F(RuntimeTest, OutOfMemoryWhenLiveSetTooLarge) {
  UntrustedDomain domain(env_);
  Isolate small(env_, domain, Isolate::Config{"small", 64 << 10});
  std::vector<GcRef> pins;
  EXPECT_THROW(
      {
        for (int i = 0; i < 10'000; ++i) {
          pins.push_back(
              small.make_ref(small.heap().alloc_string("0123456789abcdef")));
        }
      },
      OutOfMemoryError);
}

TEST_F(RuntimeTest, WeakRefClearedWhenReferentDies) {
  Heap& heap = iso_.heap();
  WeakRefTable& weak = iso_.weak_refs();
  const ObjAddr doomed = heap.alloc_instance(1, 0);
  const auto w = weak.add(doomed, /*payload=*/777);
  EXPECT_FALSE(weak.is_cleared(w));
  heap.collect();  // no root -> dies
  EXPECT_TRUE(weak.is_cleared(w));
  EXPECT_EQ(weak.entry(w).payload, 777u);
}

TEST_F(RuntimeTest, WeakRefForwardedWhenReferentSurvives) {
  Heap& heap = iso_.heap();
  WeakRefTable& weak = iso_.weak_refs();
  const GcRef keep = iso_.make_ref(heap.alloc_instance(1, 0));
  const auto w = weak.add(keep.address(), 1);
  heap.collect();
  EXPECT_FALSE(weak.is_cleared(w));
  EXPECT_EQ(weak.entry(w).target, keep.address());
}

TEST_F(RuntimeTest, WeakRefDoesNotKeepObjectAlive) {
  Heap& heap = iso_.heap();
  WeakRefTable& weak = iso_.weak_refs();
  weak.add(heap.alloc_string("weakly-held"), 2);
  const std::uint64_t used_before = heap.used_bytes();
  heap.collect();
  EXPECT_LT(heap.used_bytes(), used_before);
  EXPECT_EQ(weak.cleared_count(), 1u);
}

TEST_F(RuntimeTest, RemoveIfCompactsWeakTable) {
  Heap& heap = iso_.heap();
  WeakRefTable& weak = iso_.weak_refs();
  const GcRef keep = iso_.make_ref(heap.alloc_instance(1, 0));
  weak.add(keep.address(), 1);
  weak.add(heap.alloc_string("dies"), 2);
  heap.collect();
  weak.remove_if([](const WeakEntry& e) { return e.target == kNullAddr; });
  EXPECT_EQ(weak.size(), 1u);
  EXPECT_EQ(weak.entry(0).payload, 1u);
}

TEST_F(RuntimeTest, GcRefSharesRootSlot) {
  const GcRef a = iso_.make_ref(iso_.heap().alloc_instance(1, 0));
  const std::size_t live = iso_.handles().live();
  const GcRef b = a;  // copy shares the root
  EXPECT_EQ(iso_.handles().live(), live);
  EXPECT_TRUE(a.same_object(b));
}

TEST_F(RuntimeTest, GcRefReleasesRootOnDestruction) {
  const std::size_t live_before = iso_.handles().live();
  {
    const GcRef r = iso_.make_ref(iso_.heap().alloc_instance(1, 0));
    EXPECT_EQ(iso_.handles().live(), live_before + 1);
  }
  EXPECT_EQ(iso_.handles().live(), live_before);
}

TEST_F(RuntimeTest, ValueFieldRoundTrip) {
  const GcRef obj = iso_.new_instance(1, 5);
  iso_.set_field(obj, 0, Value(std::int32_t{41}));
  iso_.set_field(obj, 1, Value("alice"));
  iso_.set_field(obj, 2, Value(ValueList{Value(1), Value("x")}));
  iso_.set_field(obj, 3, Value(3.25));
  iso_.set_field(obj, 4, Value(obj));

  EXPECT_EQ(iso_.get_field(obj, 0).as_i32(), 41);
  EXPECT_EQ(iso_.get_field(obj, 1).as_string(), "alice");
  const Value list = iso_.get_field(obj, 2);
  ASSERT_EQ(list.as_list().size(), 2u);
  EXPECT_EQ(list.as_list()[0].as_i32(), 1);
  EXPECT_EQ(list.as_list()[1].as_string(), "x");
  EXPECT_DOUBLE_EQ(iso_.get_field(obj, 3).as_f64(), 3.25);
  EXPECT_TRUE(iso_.get_field(obj, 4).as_ref().same_object(obj));
}

TEST_F(RuntimeTest, NeutralValuesAreCopies) {
  // Stored strings are snapshots: mutating the Value after the store must
  // not affect the heap (neutral classes "may evolve independently", §5.1).
  const GcRef obj = iso_.new_instance(1, 1);
  std::string s = "original";
  iso_.set_field(obj, 0, Value(s));
  s[0] = 'X';
  EXPECT_EQ(iso_.get_field(obj, 0).as_string(), "original");
}

TEST_F(RuntimeTest, CrossIsolateReferenceRejected) {
  UntrustedDomain domain2(env_);
  Isolate other(env_, domain2, Isolate::Config{"other", 1 << 20});
  const GcRef foreign = other.new_instance(1, 0);
  const GcRef obj = iso_.new_instance(1, 1);
  EXPECT_THROW(iso_.set_field(obj, 0, Value(foreign)), SecurityFault);
}

TEST_F(RuntimeTest, FieldSurvivesGcDuringStringStore) {
  UntrustedDomain domain(env_);
  Isolate small(env_, domain, Isolate::Config{"small", 256 << 10});
  const GcRef obj = small.new_instance(1, 1);
  // Repeatedly storing strings forces collections mid set_field.
  for (int i = 0; i < 5'000; ++i) {
    small.set_field(obj, 0, Value(std::string(64, 'a' + (i % 26))));
  }
  EXPECT_GT(small.heap().stats().gc_count, 0u);
  EXPECT_EQ(small.get_field(obj, 0).as_string()[0], 'a' + (4999 % 26));
}

TEST_F(RuntimeTest, EnclaveGcAboutAnOrderOfMagnitudeSlower) {
  // Fig. 5a: the same GC work inside an enclave costs ~10x more.
  auto run_gc = [](Env& env, MemoryDomain& domain) {
    Isolate iso(env, domain, Isolate::Config{"gc-iso", 32 << 20});
    std::vector<GcRef> live;
    for (int i = 0; i < 20'000; ++i) {
      live.push_back(iso.make_ref(iso.heap().alloc_string(
          "some live payload kept across the collection....")));
    }
    const Cycles before = env.clock.now();
    iso.heap().collect();
    return env.clock.now() - before;
  };

  Env env_out;
  UntrustedDomain out(env_out);
  const Cycles outside = run_gc(env_out, out);

  Env env_in;
  sgx::Enclave enclave(env_in, "e", Sha256::hash("img"), 1 << 20);
  enclave.init(Sha256::hash("img"));
  sgx::EnclaveDomain in(env_in, enclave);
  const Cycles inside = run_gc(env_in, in);

  const double ratio = static_cast<double>(inside) / static_cast<double>(outside);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 20.0);
}

TEST_F(RuntimeTest, ImageHeapStartupTouchesPages) {
  Env env;
  sgx::Enclave enclave(env, "e", Sha256::hash("img"), 1 << 20);
  enclave.init(Sha256::hash("img"));
  sgx::EnclaveDomain domain(env, enclave);
  const auto faults_before = enclave.epc().stats().faults;
  Isolate iso(env, domain,
              Isolate::Config{"with-image", 1 << 20, /*image_heap=*/64 << 10});
  EXPECT_EQ(enclave.epc().stats().faults, faults_before + 16);
}

TEST_F(RuntimeTest, ValueTypeChecksThrow) {
  Value v(std::int32_t{1});
  EXPECT_THROW(v.as_string(), RuntimeFault);
  EXPECT_THROW(v.as_bool(), RuntimeFault);
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(v.as_i64(), 1) << "i32 widens to i64";
  EXPECT_DOUBLE_EQ(v.as_f64(), 1.0) << "i32 widens to f64";
}

TEST_F(RuntimeTest, ValuePayloadBytes) {
  EXPECT_EQ(Value(std::int32_t{1}).payload_bytes(), 4u);
  EXPECT_EQ(Value("abcd").payload_bytes(), 8u);
  const Value list(ValueList{Value(std::int32_t{1}), Value("ab")});
  EXPECT_EQ(list.payload_bytes(), 4u + 4u + 6u);
}

// ---- Deep neutral-object graphs ----------------------------------------
//
// Checkpoints and RMI arguments legally carry 100k-deep nested lists, so
// every graph walk (including ~Value) uses an explicit work-list. These
// tests fail by crashing the process (native stack overflow) on the old
// recursive walks.

// [[[...leaf...]]] nested `depth` times, built iteratively.
Value deep_chain(std::size_t depth, Value leaf) {
  Value cur = std::move(leaf);
  for (std::size_t i = 0; i < depth; ++i) {
    ValueList wrap;
    wrap.push_back(std::move(cur));
    cur = Value(std::move(wrap));
  }
  return cur;
}

// Walks down single-element lists, checks the leaf, returns the depth.
std::size_t chain_depth(const Value& v, std::int32_t expect_leaf) {
  std::size_t depth = 0;
  const Value* cur = &v;
  while (cur->type() == ValueType::kList) {
    EXPECT_EQ(cur->as_list().size(), 1u);
    cur = &cur->as_list()[0];
    ++depth;
  }
  EXPECT_EQ(cur->as_i32(), expect_leaf);
  return depth;
}

TEST_F(RuntimeTest, DeepValueChainDestructsWithoutNativeRecursion) {
  constexpr std::size_t kDepth = 300'000;
  {
    const Value v = deep_chain(kDepth, Value(std::int32_t{7}));
    EXPECT_EQ(chain_depth(v, 7), kDepth);
    EXPECT_EQ(v.payload_bytes(), 4u * kDepth + 4u);
  }  // ~Value drains 300k uniquely-owned frames here
}

TEST_F(RuntimeTest, SiblingSharedDeepChainDrainsOnLastOwner) {
  // Two siblings share one deep chain: neither copy is uniquely owned
  // when the first dies, so the drain must trigger for the *last* sibling
  // destroyed, not just the stack head.
  constexpr std::size_t kDepth = 200'000;
  {
    Value chain = deep_chain(kDepth, Value(std::int32_t{3}));
    ValueList sibs;
    sibs.push_back(chain);             // shares the chain head
    sibs.push_back(std::move(chain));  // same head again
    const Value parent(std::move(sibs));
  }
}

TEST_F(RuntimeTest, DeepValueDebugStringIsIterative) {
  constexpr std::size_t kDepth = 100'000;
  const Value v = deep_chain(kDepth, Value(std::int32_t{3}));
  const std::string s = v.to_debug_string();
  ASSERT_EQ(s.size(), 2 * kDepth + 1);
  EXPECT_EQ(s[0], '[');
  EXPECT_EQ(s[kDepth], '3');
  EXPECT_EQ(s[s.size() - 1], ']');
}

TEST_F(RuntimeTest, DeepListRoundTripsThroughHeapSlots) {
  // to_slot materializes one heap array per nesting level; from_slot walks
  // them back out. 100k levels needs a larger heap than the fixture's 1MB
  // but must never need a larger native stack.
  constexpr std::size_t kDepth = 100'000;
  Isolate big(env_, domain_, Isolate::Config{"deep-iso", 64ull << 20});
  const GcRef holder = big.new_instance(1, 1);
  big.set_field(holder, 0, deep_chain(kDepth, Value(std::int32_t{41})));
  const Value back = big.get_field(holder, 0);
  EXPECT_EQ(chain_depth(back, 41), kDepth);
}

}  // namespace
}  // namespace msv::rt
