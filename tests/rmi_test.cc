// Unit tests for src/rmi: registry, hasher, wire encoding and the
// ProxyRuntime details not already covered end-to-end.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <set>

#include "apps/synthetic/generator.h"
#include "core/montsalvat.h"
#include "rmi/batch.h"
#include "rmi/hasher.h"
#include "rmi/registry.h"
#include "rmi/wire.h"

namespace msv::rmi {
namespace {

using rt::Value;

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest()
      : domain_(env_), iso_(env_, domain_, rt::Isolate::Config{"r", 1 << 20}) {}

  Env env_;
  UntrustedDomain domain_;
  rt::Isolate iso_;
};

TEST_F(RegistryTest, AddGetRemove) {
  MirrorProxyRegistry reg(iso_);
  const rt::GcRef obj = iso_.new_instance(1, 0);
  reg.add(42, obj);
  EXPECT_TRUE(reg.contains(42));
  EXPECT_TRUE(reg.get(42).same_object(obj));
  EXPECT_EQ(reg.size(), 1u);
  reg.remove(42);
  EXPECT_FALSE(reg.contains(42));
  EXPECT_THROW(reg.get(42), RuntimeFault);
}

TEST_F(RegistryTest, RemoveIsIdempotent) {
  MirrorProxyRegistry reg(iso_);
  reg.remove(7);  // no throw
  EXPECT_EQ(reg.stats().removes, 0u);
}

TEST_F(RegistryTest, HashCollisionDetected) {
  MirrorProxyRegistry reg(iso_);
  reg.add(1, iso_.new_instance(1, 0));
  EXPECT_THROW(reg.add(1, iso_.new_instance(1, 0)), RuntimeFault);
}

TEST_F(RegistryTest, ReverseLookupByIdentity) {
  MirrorProxyRegistry reg(iso_);
  const rt::GcRef a = iso_.new_instance(1, 0);
  const rt::GcRef b = iso_.new_instance(1, 0);
  reg.add(11, a);
  EXPECT_EQ(reg.hash_for(a), std::optional<std::int64_t>(11));
  EXPECT_FALSE(reg.hash_for(b).has_value());
}

TEST_F(RegistryTest, ReverseLookupSurvivesGc) {
  MirrorProxyRegistry reg(iso_);
  const rt::GcRef a = iso_.new_instance(1, 0);
  reg.add(99, a);
  iso_.heap().collect();  // moves the object
  EXPECT_EQ(reg.hash_for(a), std::optional<std::int64_t>(99));
  EXPECT_TRUE(reg.get(99).same_object(a));
}

TEST_F(RegistryTest, StrongRefKeepsMirrorAlive) {
  MirrorProxyRegistry reg(iso_);
  reg.add(5, iso_.new_instance(1, 0));
  const std::uint64_t used_before = iso_.heap().used_bytes();
  iso_.heap().collect();
  EXPECT_EQ(iso_.heap().used_bytes(), used_before)
      << "the registry's strong reference is a GC root";
  reg.remove(5);
  iso_.heap().collect();
  EXPECT_LT(iso_.heap().used_bytes(), used_before);
}

TEST(ProxyHasher, IdentitySchemeReturnsIdentityHash) {
  ProxyHasher h(HashScheme::kIdentityHash, "side-a");
  EXPECT_EQ(h.next(12345), 12345);
}

TEST(ProxyHasher, Md5SchemeMixesAndNeverRepeats) {
  ProxyHasher h(HashScheme::kMd5, "side-a");
  // Same identity hash twice: the counter makes the results distinct
  // (this is exactly the collision MD5 hashing avoids, §5.2).
  const auto a = h.next(1);
  const auto b = h.next(1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 1);
}

TEST(ProxyHasher, DomainsAreIndependent) {
  ProxyHasher ha(HashScheme::kMd5, "side-a");
  ProxyHasher hb(HashScheme::kMd5, "side-b");
  EXPECT_NE(ha.next(1), hb.next(1));
}

TEST(Wire, PrimitivesRoundTrip) {
  ByteBuffer buf;
  const RefEncoder no_refs = [](ByteBuffer&, const rt::GcRef&) {
    FAIL() << "no refs in this test";
  };
  encode_value(buf, Value(), no_refs);
  encode_value(buf, Value(true), no_refs);
  encode_value(buf, Value(std::int32_t{-7}), no_refs);
  encode_value(buf, Value(std::int64_t{1} << 40), no_refs);
  encode_value(buf, Value(2.5), no_refs);
  encode_value(buf, Value("wire"), no_refs);
  encode_value(buf, Value(rt::ValueList{Value(std::int32_t{1}), Value("x")}),
               no_refs);

  ByteReader r(buf);
  const RefDecoder no_ref_decode = [](ByteReader&, WireTag) -> Value {
    throw RuntimeFault("no refs");
  };
  EXPECT_TRUE(decode_value(r, no_ref_decode).is_null());
  EXPECT_TRUE(decode_value(r, no_ref_decode).as_bool());
  EXPECT_EQ(decode_value(r, no_ref_decode).as_i32(), -7);
  EXPECT_EQ(decode_value(r, no_ref_decode).as_i64(), std::int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(decode_value(r, no_ref_decode).as_f64(), 2.5);
  EXPECT_EQ(decode_value(r, no_ref_decode).as_string(), "wire");
  const Value list = decode_value(r, no_ref_decode);
  EXPECT_EQ(list.as_list().size(), 2u);
  EXPECT_TRUE(r.done());
}

TEST(Wire, ElementCountRecursesIntoLists) {
  EXPECT_EQ(element_count(Value(std::int32_t{1})), 1u);
  const Value nested(rt::ValueList{
      Value(std::int32_t{1}),
      Value(rt::ValueList{Value("a"), Value("b")}),
  });
  // outer list (1) + int (1) + inner list (1) + 2 strings.
  EXPECT_EQ(element_count(nested), 5u);
}

TEST(Wire, SerializationChargesScaleWithSize) {
  Env env;
  UntrustedDomain domain(env);
  const Cycles t0 = env.clock.now();
  charge_serialize(env, domain, 10, 100);
  const Cycles small = env.clock.now() - t0;
  const Cycles t1 = env.clock.now();
  charge_serialize(env, domain, 1000, 10'000);
  const Cycles big = env.clock.now() - t1;
  EXPECT_GT(big, small * 20);
}

TEST(Wire, AllTagsByteIdenticalAcrossCodecs) {
  // Every WireTag through all three codec paths: the generic tagged codec,
  // the seed-shape compat codec (legacy benchmark baseline) and — where it
  // applies — the primitive fixed-layout fast path. The buffers must be
  // byte-identical; since every serialize charge is a function of
  // (elements, bytes) only, byte identity is what guarantees identical
  // simulated cycles on the fast and legacy paths.
  Env env;
  UntrustedDomain domain(env);
  rt::Isolate iso(env, domain, rt::Isolate::Config{"w", 1 << 20});
  const rt::GcRef obj = iso.new_instance(1, 0);

  const std::vector<Value> values = {
      Value(),
      Value(true),
      Value(std::int32_t{-7}),
      Value(std::int64_t{1} << 40),
      Value(2.5),
      Value("wire"),
      Value(rt::ValueList{Value(std::int32_t{1}), Value("x"),
                          Value(rt::ValueList{Value(false)})}),
      Value(obj),  // rotates through the three ref tags below
      Value(obj),
      Value(obj),
  };

  // The runtime's classifier picks the ref tag; here a counter stands in
  // for it so all three ref forms appear. Both codecs delegate refs to
  // this same closure shape, so their ref bytes must match too.
  const std::array<WireTag, 3> ref_tags = {WireTag::kRefOwnedByEncoder,
                                           WireTag::kRefOwnedByDecoder,
                                           WireTag::kNeutralObject};
  auto ref_encoder_with = [&ref_tags](int* counter) {
    return RefEncoder([&ref_tags, counter](ByteBuffer& out, const rt::GcRef&) {
      out.put_u8(static_cast<std::uint8_t>(ref_tags[*counter % 3]));
      out.put_i64(42);
      ++*counter;
    });
  };
  int generic_refs = 0;
  int compat_refs = 0;
  const RefEncoder generic_enc = ref_encoder_with(&generic_refs);
  const RefEncoder compat_enc = ref_encoder_with(&compat_refs);
  const RefDecoder ref_dec = [](ByteReader& in, WireTag) -> Value {
    return Value(in.get_i64());
  };

  std::set<WireTag> seen;
  for (const Value& v : values) {
    ByteBuffer generic;
    ByteBuffer compat_b;
    encode_value(generic, v, generic_enc);
    encode_value_compat(compat_b, v, compat_enc);
    ASSERT_EQ(generic.size(), compat_b.size());
    EXPECT_EQ(std::memcmp(generic.data(), compat_b.data(), generic.size()), 0);
    seen.insert(static_cast<WireTag>(generic.data()[0]));

    const bool prim = is_primitive(v);
    ByteBuffer fixed;
    EXPECT_EQ(encode_primitive(fixed, v), prim);
    if (prim) {
      ASSERT_EQ(fixed.size(), generic.size());
      EXPECT_EQ(std::memcmp(fixed.data(), generic.data(), fixed.size()), 0);
    } else {
      EXPECT_TRUE(fixed.empty()) << "fast encoder must write nothing";
    }

    ByteReader rg(generic);
    ByteReader rc(compat_b);
    ByteReader rp(generic);
    const Value dg = decode_value(rg, ref_dec);
    const Value dc = decode_value_compat(rc, ref_dec);
    EXPECT_TRUE(rg.done());
    EXPECT_TRUE(rc.done());
    EXPECT_EQ(dg.type(), dc.type());
    Value dp;
    EXPECT_EQ(decode_primitive(rp, dp), prim);
    if (prim) {
      EXPECT_EQ(dp.type(), dg.type());
    } else {
      EXPECT_EQ(rp.position(), 0u) << "reader untouched for generic takeover";
    }

    // Identical bytes + elements => identical simulated charge.
    const std::uint64_t elems = element_count(v);
    const Cycles t0 = env.clock.now();
    charge_serialize(env, domain, elems, generic.size());
    const Cycles fast_charge = env.clock.now() - t0;
    const Cycles t1 = env.clock.now();
    charge_serialize(env, domain, elems, compat_b.size());
    EXPECT_EQ(env.clock.now() - t1, fast_charge);
  }
  EXPECT_EQ(seen.size(), 10u) << "every WireTag must lead some encoding";
}

TEST(Wire, DeepListRoundTripsWithoutNativeRecursion) {
  // A 100k-deep nested list is a legal RMI argument: both codecs must
  // walk it with explicit work-lists. On the old recursive codecs this
  // test dies of native stack overflow rather than failing an assertion.
  constexpr std::size_t kDepth = 100'000;
  Value deep(std::int32_t{9});
  for (std::size_t i = 0; i < kDepth; ++i) {
    rt::ValueList wrap;
    wrap.push_back(std::move(deep));
    deep = Value(std::move(wrap));
  }
  EXPECT_EQ(element_count(deep), kDepth + 1);
  EXPECT_EQ(deep.payload_bytes(), 4u * kDepth + 4u);

  const RefEncoder no_refs = [](ByteBuffer&, const rt::GcRef&) {
    FAIL() << "no refs in this test";
  };
  const RefDecoder no_ref_decode = [](ByteReader&, WireTag) -> Value {
    throw RuntimeFault("no refs");
  };

  ByteBuffer tagged;
  encode_value(tagged, deep, no_refs);
  ByteBuffer legacy;
  encode_value_compat(legacy, deep, no_refs);
  ASSERT_EQ(tagged.bytes(), legacy.bytes()) << "codecs must stay byte-equal";

  for (const bool compat : {false, true}) {
    ByteReader r(tagged);
    Value back = compat ? decode_value_compat(r, no_ref_decode)
                        : decode_value(r, no_ref_decode);
    EXPECT_TRUE(r.done());
    std::size_t depth = 0;
    const Value* cur = &back;
    while (cur->type() == rt::ValueType::kList) {
      ASSERT_EQ(cur->as_list().size(), 1u);
      cur = &cur->as_list()[0];
      ++depth;
    }
    EXPECT_EQ(depth, kDepth);
    EXPECT_EQ(cur->as_i32(), 9);
    ByteBuffer again;
    encode_value(again, back, no_refs);
    EXPECT_EQ(again.bytes(), tagged.bytes());
  }  // `back` chains destruct iteratively here
}

TEST(Wire, LyingListCountIsRejectedNotAllocated) {
  // A corrupt (or hostile) frame can claim a list of 2^40 elements with
  // no payload behind it. Each element needs at least one tag byte, so a
  // count beyond the remaining input is rejected before any allocation.
  const RefDecoder no_ref_decode = [](ByteReader&, WireTag) -> Value {
    throw RuntimeFault("no refs");
  };
  for (const std::uint64_t lie :
       {std::uint64_t{1} << 40, std::uint64_t{5}, std::uint64_t{1}}) {
    ByteBuffer buf;
    buf.put_u8(static_cast<std::uint8_t>(WireTag::kList));
    buf.put_varint(lie);  // claims elements that are not there
    ByteReader r(buf);
    EXPECT_THROW(decode_value(r, no_ref_decode), RuntimeFault);
    ByteReader rc(buf);
    EXPECT_THROW(decode_value_compat(rc, no_ref_decode), RuntimeFault);
  }

  // Nested: a well-formed outer list whose inner list lies.
  ByteBuffer buf;
  buf.put_u8(static_cast<std::uint8_t>(WireTag::kList));
  buf.put_varint(2);
  buf.put_u8(static_cast<std::uint8_t>(WireTag::kNull));
  buf.put_u8(static_cast<std::uint8_t>(WireTag::kList));
  buf.put_varint(100);
  ByteReader r(buf);
  EXPECT_THROW(decode_value(r, no_ref_decode), RuntimeFault);

  // An honest empty list still decodes.
  ByteBuffer ok;
  ok.put_u8(static_cast<std::uint8_t>(WireTag::kList));
  ok.put_varint(0);
  ByteReader ro(ok);
  EXPECT_EQ(decode_value(ro, no_ref_decode).as_list().size(), 0u);
  EXPECT_TRUE(ro.done());
}

TEST(ProxyRuntimeTest, FastAndLegacyPathsChargeIdenticalCycles) {
  // End-to-end cycle-identity check behind the abl_rmi_fastpath gate: the
  // same mixed primitive/generic call sequence under fast_rmi on and off
  // must land on the same simulated clock and the same transition stats.
  std::array<std::uint64_t, 2> total_cycles{};
  std::array<std::uint64_t, 2> fast_calls{};
  std::array<sgx::BridgeStats, 2> bridge_stats;
  for (const bool fast : {false, true}) {
    core::AppConfig config;
    config.fast_rmi = fast;
    core::PartitionedApp app(apps::synthetic::build_micro_app(), config);
    auto& u = app.untrusted_context();
    const Value w = u.construct("Worker", {});
    for (int i = 0; i < 25; ++i) {
      u.invoke(w.as_ref(), "set", {Value(std::int32_t{i})});
      u.invoke(w.as_ref(), "get", {});
      u.invoke(w.as_ref(), "set_list",
               {Value(rt::ValueList{Value(std::int32_t{i}), Value("s")})});
    }
    total_cycles[fast] = app.env().clock.now();
    fast_calls[fast] = app.rmi().stats().fast_path_calls;
    bridge_stats[fast] = app.bridge().stats();
  }
  EXPECT_EQ(total_cycles[0], total_cycles[1]);
  EXPECT_EQ(fast_calls[0], 0u) << "legacy mode must not take the fast path";
  // 25 sets + 25 gets + the zero-arg construct relay: all-primitive
  // signatures every one.
  EXPECT_EQ(fast_calls[1], 51u);
  EXPECT_EQ(bridge_stats[0].ecalls, bridge_stats[1].ecalls);
  EXPECT_EQ(bridge_stats[0].ocalls, bridge_stats[1].ocalls);
  EXPECT_EQ(bridge_stats[0].bytes_in, bridge_stats[1].bytes_in);
  EXPECT_EQ(bridge_stats[0].bytes_out, bridge_stats[1].bytes_out);
}

// --- ProxyRuntime behaviours through the public pipeline -------------------

TEST(ProxyRuntimeTest, StaticProxyMethodNeedsNoHash) {
  model::AppModel app;
  auto& util = app.add_class("TrustedUtil", model::Annotation::kTrusted);
  util.add_field("unused");
  util.add_static_method("seal", 1).body_native([](model::NativeCall& call) {
    return Value("sealed:" + call.args[0].as_string());
  });
  app.add_class("Main", model::Annotation::kUntrusted)
      .add_static_method("main", 0)
      .body(model::IrBuilder().ret_void().build());
  app.set_main_class("Main");

  core::AppConfig config;
  config.extra_entry_points = {{"TrustedUtil", "seal"}};
  core::PartitionedApp papp(app, config);
  const Value sealed = papp.untrusted_context().invoke_static(
      "TrustedUtil", "seal", {Value("data")});
  EXPECT_EQ(sealed.as_string(), "sealed:data");
  EXPECT_GT(papp.bridge().stats().ecalls, 0u);
}

TEST(ProxyRuntimeTest, NeutralObjectsCopiedAcrossBoundary) {
  // A neutral class instance passed to a trusted method arrives as a field
  // by field copy that evolves independently (§5.1).
  model::AppModel app;
  auto& box = app.add_class("Box", model::Annotation::kNeutral);
  box.add_field("content", /*is_private=*/false);
  box.add_constructor(1).body(model::IrBuilder()
                                  .locals(2)
                                  .load_local(0)
                                  .load_local(1)
                                  .put_field(0)
                                  .ret_void()
                                  .build());
  box.add_method("content", 0).body(
      model::IrBuilder().locals(1).load_local(0).get_field(0).ret().build());

  auto& keeper = app.add_class("Keeper", model::Annotation::kTrusted);
  keeper.add_field("box");
  keeper.add_constructor(0).body_native(
      [](model::NativeCall&) { return Value(); });
  keeper.add_method("keep", 1).body_native([](model::NativeCall& call) {
    call.isolate.set_field(call.self, 0, call.args[0]);
    return Value();
  });
  keeper.add_method("peek", 0)
      .body_native([](model::NativeCall& call) {
        const rt::GcRef kept = call.isolate.get_field(call.self, 0).as_ref();
        return call.ctx.invoke(kept, "content", {});
      })
      .calls("Box", "content");

  auto& main_cls = app.add_class("Main", model::Annotation::kUntrusted);
  main_cls.add_static_method("main", 0)
      .body(model::IrBuilder()
                .locals(1)
                .const_val(Value("original"))
                .new_object("Box", 1)
                .store_local(0)
                .new_object("Keeper", 0)
                .load_local(0)
                .call("keep", 1)
                .pop()
                .ret_void()
                .build());
  app.set_main_class("Main");

  core::AppConfig config;
  config.extra_entry_points = {{"Keeper", model::kConstructorName}};
  core::PartitionedApp papp(app, config);
  auto& u = papp.untrusted_context();

  const Value keeper_proxy = u.construct("Keeper", {});
  const Value local_box = u.construct("Box", {Value("original")});
  u.invoke(keeper_proxy.as_ref(), "keep", {local_box});

  // Mutate the untrusted copy; the enclave copy must be unaffected.
  u.isolate().set_field(local_box.as_ref(), 0, Value("tampered"));
  EXPECT_EQ(u.invoke(keeper_proxy.as_ref(), "peek", {}).as_string(),
            "original");
}

TEST(ProxyRuntimeTest, IdentityHashSchemeWorksOnSmallRuns) {
  core::AppConfig config;
  config.hash_scheme = rmi::HashScheme::kIdentityHash;  // prototype default
  core::PartitionedApp app(apps::synthetic::build_micro_app(), config);
  auto& u = app.untrusted_context();
  const Value w = u.construct("Worker", {});
  u.invoke(w.as_ref(), "set", {Value(std::int32_t{9})});
  EXPECT_EQ(u.invoke(w.as_ref(), "get", {}).as_i32(), 9);
}

TEST(ProxyRuntimeTest, GcPumpSkipsWhenNested) {
  // pump_gc from inside an enclave context must be a no-op (the helper
  // cannot run "within" the relayed call); this exercises the guard.
  core::PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const Value driver = u.construct("Driver", {});
  // call_sink runs inside the enclave and issues nested ocalls, each of
  // which triggers the auto-pump path with a non-untrusted side.
  u.invoke(driver.as_ref(), "call_sink", {Value(std::int64_t{100})});
  SUCCEED();
}

TEST(ProxyRuntimeTest, RmiStatsAccumulate) {
  core::PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const Value w = u.construct("Worker", {});
  for (int i = 0; i < 10; ++i) {
    u.invoke(w.as_ref(), "set", {Value(std::int32_t{i})});
  }
  EXPECT_EQ(app.rmi().stats().proxies_created, 1u);
  EXPECT_GE(app.rmi().stats().remote_invocations, 10u);
  EXPECT_GE(app.rmi().stats().mirrors_registered, 1u);
  // Unbatched accounting: one RMI-layer transition per logical call (10
  // sets + the construct relay).
  EXPECT_EQ(app.rmi().stats().transitions, 11u);
  EXPECT_EQ(app.rmi().stats().batched_calls, 0u);
  EXPECT_EQ(app.rmi().stats().batch_flushes, 0u);
}

// ---- Batch wire codec (rmi/batch.h) ---------------------------------------

TEST(BatchCodec, MixedEntriesRoundTrip) {
  ByteBuffer frame;
  encode_batch_header(frame, 3);
  const std::uint8_t a[] = {1, 2, 3};
  const std::uint8_t b[] = {0xff};
  encode_batch_entry(frame, 7, a, sizeof a);
  encode_batch_entry(frame, 9, b, sizeof b);
  encode_batch_entry(frame, 7, nullptr, 0);
  const auto entries = decode_batch_request(frame, BatchLimits{});
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].call_id, 7u);
  ASSERT_EQ(entries[0].size, 3u);
  EXPECT_EQ(std::memcmp(entries[0].data, a, sizeof a), 0);
  EXPECT_EQ(entries[1].call_id, 9u);
  ASSERT_EQ(entries[1].size, 1u);
  EXPECT_EQ(entries[1].data[0], 0xff);
  EXPECT_EQ(entries[2].call_id, 7u);
  EXPECT_EQ(entries[2].size, 0u);

  ByteBuffer resp;
  encode_batch_header(resp, 2);
  encode_batch_result(resp, true, a, sizeof a);
  const char* err = "boom";
  encode_batch_result(resp, false,
                      reinterpret_cast<const std::uint8_t*>(err), 4);
  const auto results = decode_batch_response(resp, 2, BatchLimits{});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  ASSERT_EQ(results[0].size, 3u);
  EXPECT_EQ(std::memcmp(results[0].data, a, sizeof a), 0);
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(results[1].data),
                        results[1].size),
            "boom");
}

TEST(BatchCodec, MalformedFramesRaiseTypedErrors) {
  BatchLimits limits;
  limits.max_calls = 4;
  limits.max_entry_bytes = 16;
  limits.max_frame_bytes = 64;
  const std::uint8_t p[] = {1};

  // Truncated: the header promises an entry that never arrives.
  ByteBuffer truncated;
  encode_batch_header(truncated, 2);
  encode_batch_entry(truncated, 1, p, sizeof p);
  EXPECT_THROW(decode_batch_request(truncated, limits), BatchCodecError);

  // Entry length pointing past the end of the frame.
  ByteBuffer lying;
  encode_batch_header(lying, 1);
  lying.put_varint(1);   // call id
  lying.put_varint(12);  // nbytes, but no payload follows
  EXPECT_THROW(decode_batch_request(lying, limits), BatchCodecError);

  // Zero calls is impossible — a flush never dispatches an empty batch.
  ByteBuffer empty;
  encode_batch_header(empty, 0);
  EXPECT_THROW(decode_batch_request(empty, limits), BatchCodecError);

  // Count over max_calls is rejected before any entry is touched.
  ByteBuffer many;
  encode_batch_header(many, 5);
  EXPECT_THROW(decode_batch_request(many, limits), BatchCodecError);

  // One entry over max_entry_bytes.
  const std::vector<std::uint8_t> big(17, 0xaa);
  ByteBuffer oversized;
  encode_batch_header(oversized, 1);
  encode_batch_entry(oversized, 1, big.data(), big.size());
  EXPECT_THROW(decode_batch_request(oversized, limits), BatchCodecError);

  // Whole frame over max_frame_bytes, rejected before parsing anything.
  const std::vector<std::uint8_t> huge(70, 0xbb);
  EXPECT_THROW(decode_batch_request(huge.data(), huge.size(), limits),
               BatchCodecError);

  // Trailing garbage after the last entry.
  ByteBuffer trailing;
  encode_batch_header(trailing, 1);
  encode_batch_entry(trailing, 1, p, sizeof p);
  trailing.put_u8(0);
  EXPECT_THROW(decode_batch_request(trailing, limits), BatchCodecError);

  // A response whose count disagrees with the request's entry count would
  // silently drop calls.
  ByteBuffer resp;
  encode_batch_header(resp, 1);
  encode_batch_result(resp, true, p, sizeof p);
  EXPECT_THROW(decode_batch_response(resp, 2, limits), BatchCodecError);

  // Response status must be 0 or 1.
  ByteBuffer badstatus;
  encode_batch_header(badstatus, 1);
  badstatus.put_u8(2);
  badstatus.put_varint(0);
  EXPECT_THROW(decode_batch_response(badstatus, 1, limits), BatchCodecError);
}

TEST(BatchCodec, FuzzCorpusTruncationsAndMutationsAreTypedOrSound) {
  // Fuzz-shaped corpus over the attacker-reachable frame decoders: every
  // strict byte-prefix of a valid request/response frame, plus
  // deterministic single-byte mutations at every offset. The decoder must
  // either throw BatchCodecError or return views that point inside the
  // frame and respect the limits — never crash, never alias past the end.
  BatchLimits limits;
  limits.max_calls = 8;
  limits.max_entry_bytes = 64;
  limits.max_frame_bytes = 256;

  ByteBuffer req;
  encode_batch_header(req, 3);
  const std::uint8_t p0[] = {0x01, 0x7f, 0x80, 0xff};
  const std::uint8_t p1[] = {0x00};
  encode_batch_entry(req, 1, p0, sizeof p0);
  encode_batch_entry(req, 200, p1, sizeof p1);  // two-byte varint call id
  encode_batch_entry(req, 3, nullptr, 0);

  ByteBuffer resp;
  encode_batch_header(resp, 3);
  encode_batch_result(resp, true, p0, sizeof p0);
  const char* err = "nope";
  encode_batch_result(resp, false,
                      reinterpret_cast<const std::uint8_t*>(err), 4);
  encode_batch_result(resp, true, nullptr, 0);

  // Every strict prefix is a truncation and must fail typed.
  for (std::size_t n = 0; n < req.size(); ++n) {
    EXPECT_THROW(decode_batch_request(req.data(), n, limits), BatchCodecError)
        << "request prefix of " << n << " bytes";
  }
  for (std::size_t n = 0; n < resp.size(); ++n) {
    EXPECT_THROW(decode_batch_response(resp.data(), n, 3, limits),
                 BatchCodecError)
        << "response prefix of " << n << " bytes";
  }

  // Deterministic xorshift64 so the corpus replays byte-identically.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  const auto next_byte = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<std::uint8_t>(rng);
  };
  const auto in_bounds = [](const std::vector<std::uint8_t>& frame,
                            const std::uint8_t* data, std::size_t n) {
    return n == 0 ||
           (data >= frame.data() && data + n <= frame.data() + frame.size());
  };

  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < req.size(); ++i) {
      auto mut = req.bytes();
      mut[i] = next_byte();
      try {
        const auto entries = decode_batch_request(mut.data(), mut.size(),
                                                  limits);
        EXPECT_LE(entries.size(), limits.max_calls);
        for (const auto& e : entries) {
          EXPECT_LE(e.size, limits.max_entry_bytes);
          EXPECT_TRUE(in_bounds(mut, e.data, e.size));
        }
      } catch (const BatchCodecError&) {
        // rejection is the other sound outcome
      }
    }
    for (std::size_t i = 0; i < resp.size(); ++i) {
      auto mut = resp.bytes();
      mut[i] = next_byte();
      try {
        const auto results = decode_batch_response(mut.data(), mut.size(), 3,
                                                   limits);
        EXPECT_EQ(results.size(), 3u);  // count mismatch must have thrown
        for (const auto& r : results) {
          EXPECT_TRUE(in_bounds(mut, r.data, r.size));
        }
      } catch (const BatchCodecError&) {
      }
    }
  }
}

// ---- Batched & async RMI through the public pipeline ----------------------

TEST(ProxyRuntimeTest, AsyncBatchingPipelinesAndFlushesOnce) {
  core::PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const Value w = u.construct("Worker", {});
  auto& rmi = app.rmi();
  rmi.set_batching(true);
  const model::ClassDecl& cls = u.class_of(w.as_ref());
  const model::MethodDecl* set = cls.find_method("set");
  const model::MethodDecl* get = cls.find_method("get");
  ASSERT_NE(set, nullptr);
  ASSERT_NE(get, nullptr);
  const RmiStats before = rmi.stats();
  const std::uint64_t ecalls_before = app.bridge().stats().ecalls;

  std::vector<RmiFuture> futures;
  for (int i = 0; i < 8; ++i) {
    std::vector<Value> args{Value(std::int32_t{i})};
    futures.push_back(rmi.invoke_proxy_async(u, w.as_ref(), cls, *set, args));
  }
  EXPECT_EQ(rmi.pending_batch_calls(), 8u);
  for (const auto& f : futures) EXPECT_FALSE(f.ready());

  // get() on the tail future forces the flush; strict program order means
  // every set executed before the read.
  std::vector<Value> no_args;
  RmiFuture tail = rmi.invoke_proxy_async(u, w.as_ref(), cls, *get, no_args);
  EXPECT_EQ(tail.get().as_i32(), 7);
  EXPECT_EQ(rmi.pending_batch_calls(), 0u);
  for (const auto& f : futures) EXPECT_TRUE(f.ready());

  // Satellite accounting contract: 9 logical calls, ONE transition.
  const RmiStats& s = rmi.stats();
  EXPECT_EQ(s.remote_invocations - before.remote_invocations, 9u);
  EXPECT_EQ(s.batched_calls - before.batched_calls, 9u);
  EXPECT_EQ(s.batch_flushes - before.batch_flushes, 1u);
  EXPECT_EQ(s.transitions - before.transitions, 1u);
  EXPECT_EQ(app.bridge().stats().ecalls - ecalls_before, 1u);
}

TEST(ProxyRuntimeTest, SyncCallAndNonPrimitiveArgsFlushPendingBatch) {
  core::PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const Value w = u.construct("Worker", {});
  auto& rmi = app.rmi();
  rmi.set_batching(true);
  const model::ClassDecl& cls = u.class_of(w.as_ref());
  const model::MethodDecl* set = cls.find_method("set");

  std::vector<Value> a1{Value(std::int32_t{3})};
  std::vector<Value> a2{Value(std::int32_t{5})};
  RmiFuture f1 = rmi.invoke_proxy_async(u, w.as_ref(), cls, *set, a1);
  RmiFuture f2 = rmi.invoke_proxy_async(u, w.as_ref(), cls, *set, a2);
  EXPECT_EQ(rmi.pending_batch_calls(), 2u);

  // A synchronous call is a dependency fence: the batch flushes first, so
  // the read observes both queued writes in order.
  EXPECT_EQ(u.invoke(w.as_ref(), "get", {}).as_i32(), 5);
  EXPECT_EQ(rmi.pending_batch_calls(), 0u);
  EXPECT_TRUE(f1.ready());
  EXPECT_TRUE(f2.ready());

  // Non-primitive arguments cannot prove independence: the conservative
  // rule runs them synchronously (already-resolved future, no pending).
  std::vector<Value> largs{
      Value(rt::ValueList{Value(std::int32_t{1}), Value("x")})};
  RmiFuture lf = rmi.invoke_proxy_async(u, w.as_ref(), cls,
                                        *cls.find_method("set_list"), largs);
  EXPECT_TRUE(lf.ready());
  EXPECT_EQ(rmi.pending_batch_calls(), 0u);
  lf.get();
}

TEST(ProxyRuntimeTest, BatchOfOneIsCycleIdenticalToSync) {
  // The batch-size-1 honesty contract (also asserted by abl_rmi_batch):
  // enqueue + immediate get replays the unbatched wire path exactly, so
  // the simulated clock lands on the same instant.
  std::array<Cycles, 2> cycles{};
  for (const bool batched : {false, true}) {
    core::PartitionedApp app(apps::synthetic::build_micro_app());
    auto& u = app.untrusted_context();
    const Value w = u.construct("Worker", {});
    const model::ClassDecl& cls = u.class_of(w.as_ref());
    const model::MethodDecl* set = cls.find_method("set");
    if (batched) app.rmi().set_batching(true);
    for (int i = 0; i < 5; ++i) {
      std::vector<Value> args{Value(std::int32_t{i})};
      if (batched) {
        app.rmi().invoke_proxy_async(u, w.as_ref(), cls, *set, args).get();
      } else {
        app.rmi().invoke_proxy(u, w.as_ref(), cls, *set, args);
      }
    }
    cycles[batched] = app.env().clock.now();
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

}  // namespace
}  // namespace msv::rmi
