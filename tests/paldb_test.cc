// Tests for src/apps/paldb: store format round trips, the write/read I/O
// asymmetry (§6.5), and enclave-vs-host cost behaviour.
#include <gtest/gtest.h>

#include "apps/paldb/store.h"
#include "sgx/bridge.h"
#include "sgx/enclave.h"
#include "shim/enclave_shim.h"
#include "shim/host_io.h"
#include "support/error.h"

namespace msv::apps::paldb {
namespace {

class PaldbTest : public ::testing::Test {
 protected:
  PaldbTest() : domain_(env_), io_(env_, domain_) {}

  void write_store(const std::string& path, int n) {
    StoreWriter writer(env_, io_, path);
    for (int i = 0; i < n; ++i) {
      writer.put("key" + std::to_string(i), "value" + std::to_string(i));
    }
    writer.close();
  }

  Env env_;
  UntrustedDomain domain_;
  shim::HostIo io_;
};

TEST_F(PaldbTest, WriteThenReadBack) {
  write_store("s.paldb", 100);
  StoreReader reader(env_, io_, "s.paldb");
  EXPECT_EQ(reader.key_count(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto v = reader.get("key" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << "key" << i;
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
  EXPECT_EQ(reader.stats().hits, 100u);
}

TEST_F(PaldbTest, MissingKeyReturnsNothing) {
  write_store("s.paldb", 10);
  StoreReader reader(env_, io_, "s.paldb");
  EXPECT_FALSE(reader.get("nope").has_value());
  EXPECT_FALSE(reader.get("").has_value());
}

TEST_F(PaldbTest, EmptyStoreIsValid) {
  {
    StoreWriter writer(env_, io_, "empty.paldb");
    writer.close();
  }
  StoreReader reader(env_, io_, "empty.paldb");
  EXPECT_EQ(reader.key_count(), 0u);
  EXPECT_FALSE(reader.get("k").has_value());
}

TEST_F(PaldbTest, LargeValuesSurvive) {
  {
    StoreWriter writer(env_, io_, "big.paldb");
    writer.put("big", std::string(100'000, 'x'));
    writer.put("small", "y");
    writer.close();
  }
  StoreReader reader(env_, io_, "big.paldb");
  EXPECT_EQ(reader.get("big")->size(), 100'000u);
  EXPECT_EQ(*reader.get("small"), "y");
}

TEST_F(PaldbTest, DuplicateKeyRejectedAtClose) {
  StoreWriter writer(env_, io_, "dup.paldb");
  writer.put("k", "v1");
  writer.put("k", "v2");
  EXPECT_THROW(writer.close(), RuntimeFault);
}

TEST_F(PaldbTest, WriteOnceEnforced) {
  StoreWriter writer(env_, io_, "once.paldb");
  writer.put("k", "v");
  writer.close();
  EXPECT_THROW(writer.put("k2", "v2"), RuntimeFault);
  EXPECT_THROW(writer.close(), RuntimeFault);
}

TEST_F(PaldbTest, StagingFilesRemovedAfterClose) {
  write_store("clean.paldb", 5);
  EXPECT_FALSE(io_.exists("clean.paldb.keys.tmp"));
  EXPECT_FALSE(io_.exists("clean.paldb.values.tmp"));
  EXPECT_TRUE(io_.exists("clean.paldb"));
}

TEST_F(PaldbTest, CorruptMagicRejected) {
  {
    const auto f = env_.fs->open("bad.paldb", vfs::OpenMode::kWrite);
    const std::string junk(64, 'j');
    f->write(junk.data(), junk.size());
  }
  EXPECT_THROW(StoreReader(env_, io_, "bad.paldb"), RuntimeFault);
}

TEST_F(PaldbTest, WritesDoRegularIoReadsUseMmap) {
  const auto writes_before = io_.stats().writes;
  write_store("asym.paldb", 1000);
  const auto writes_during = io_.stats().writes - writes_before;
  EXPECT_GE(writes_during, 2000u) << "two write()s per put, plus the merge";

  const auto maps_before = io_.stats().maps;
  const auto writes_after_build = io_.stats().writes;
  StoreReader reader(env_, io_, "asym.paldb");
  for (int i = 0; i < 1000; ++i) reader.get("key" + std::to_string(i));
  EXPECT_EQ(io_.stats().maps, maps_before + 1) << "reads go through mmap";
  EXPECT_EQ(io_.stats().writes, writes_after_build) << "reads never write";
}

TEST_F(PaldbTest, EnclaveReaderPaysMoreThanHostReader) {
  write_store("cost.paldb", 2000);

  // Host-side reads.
  const Cycles t0 = env_.clock.now();
  {
    StoreReader reader(env_, io_, "cost.paldb");
    for (int i = 0; i < 2000; ++i) reader.get("key" + std::to_string(i));
  }
  const Cycles host_cost = env_.clock.now() - t0;

  // The same reads issued from inside an enclave (mapped pages copied in,
  // MEE on every probe).
  Env enclave_env;
  sgx::Enclave enclave(enclave_env, "e", Sha256::hash("img"), 4096);
  enclave.init(Sha256::hash("img"));
  sgx::EnclaveDomain trusted(enclave_env, enclave);
  UntrustedDomain untrusted(enclave_env);
  shim::HostIo host(enclave_env, untrusted);
  sgx::TransitionBridge bridge(enclave_env, enclave);
  shim::EnclaveShim shim(enclave_env, bridge, host, trusted);
  shim.register_ocalls();

  // Copy the store into the enclave test's fs.
  {
    auto data = env_.fs->map("cost.paldb");
    auto f = enclave_env.fs->open("cost.paldb", vfs::OpenMode::kWrite);
    f->write(data->data(), data->size());
  }

  // Reads must run "inside": wrap in an ecall.
  const sgx::CallId read_all =
      bridge.register_ecall("read_all", [&](ByteReader&) {
        StoreReader reader(enclave_env, shim, "cost.paldb");
        for (int i = 0; i < 2000; ++i) reader.get("key" + std::to_string(i));
        return ByteBuffer();
      });
  const Cycles t1 = enclave_env.clock.now();
  ByteBuffer read_resp;
  bridge.ecall(read_all, ByteBuffer(), read_resp);
  const Cycles enclave_cost = enclave_env.clock.now() - t1;

  // The read-side penalty is real but modest — which is exactly why the
  // paper's RUWT scheme (reads outside) barely improves on NoPart (§6.5).
  EXPECT_GT(enclave_cost, host_cost + host_cost / 4);
}

}  // namespace
}  // namespace msv::apps::paldb
