// Tests for the fleet health stack (DESIGN.md §16): SLO window/burn-rate
// edge cases (empty window, min-samples guard, epoch bump across a clock
// jump), flight-recorder ring bounding and snapshot-on-loss round-trips,
// sampling-profiler two-run determinism, and the overhead-when-off
// contract (arming the whole stack must not move the virtual clock).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "apps/illustrative/bank.h"
#include "fleet/router.h"
#include "fleet/shard.h"
#include "sched/scheduler.h"
#include "sim/env.h"
#include "support/clock.h"
#include "telemetry/flight.h"
#include "telemetry/sampler.h"
#include "telemetry/slo.h"
#include "telemetry/telemetry.h"

namespace msv {
namespace {

using fleet::FleetConfig;
using fleet::FleetRouter;
using telemetry::FlightBus;
using telemetry::FlightEventKind;
using telemetry::HealthState;
using telemetry::MetricsRegistry;
using telemetry::PostMortem;
using telemetry::SampleProfiler;
using telemetry::SloConfig;
using telemetry::SloMonitor;
using telemetry::SloSnapshot;

// ---- SLO monitor -----------------------------------------------------------

SloConfig tight_slo() {
  SloConfig cfg;
  cfg.window_cycles = 1000;
  cfg.fast_windows = 1;
  cfg.slow_windows = 4;
  cfg.p99_target_cycles = 100;
  cfg.max_slow_fraction = 0.1;  // 1 slow in 10 is budgeted
  cfg.degraded_burn = 1.0;
  cfg.critical_burn = 8.0;
  cfg.min_samples = 1;
  return cfg;
}

TEST(SloMonitorTest, EmptyWindowStaysHealthy) {
  VirtualClock clock;
  SloMonitor mon(clock, tight_slo(), "shard");
  EXPECT_EQ(mon.health(0), HealthState::kHealthy);
  const SloSnapshot snap = mon.evaluate(0);
  EXPECT_EQ(snap.fast_total, 0u);
  EXPECT_EQ(snap.slow_total, 0u);
  EXPECT_EQ(snap.window_p99, 0u);
  EXPECT_STREQ(snap.dominant, "none");
  EXPECT_TRUE(mon.timeline().empty());
  EXPECT_EQ(mon.first_entered(0, HealthState::kDegraded), 0u);
  // Idle time passing changes nothing: an empty window is evidence of
  // health, not a breach.
  clock.advance(50'000);
  EXPECT_EQ(mon.health(0), HealthState::kHealthy);
  EXPECT_TRUE(mon.timeline().empty());
}

TEST(SloMonitorTest, MinSamplesGuardWithholdsJudgement) {
  VirtualClock clock;
  SloConfig cfg = tight_slo();
  cfg.min_samples = 8;
  SloMonitor mon(clock, cfg, "shard");
  // Seven straight errors: burn is catastrophic but the sample floor is
  // not met, so the state machine must not whipsaw on a thin window.
  for (int i = 0; i < 7; ++i) {
    clock.advance(10);
    mon.record_error(0);
    EXPECT_EQ(mon.health(0), HealthState::kHealthy);
  }
  EXPECT_TRUE(mon.timeline().empty());
  // The eighth event crosses the floor and the burn (1.0 error rate vs a
  // 0.01 budget) pages straight through degraded to critical.
  clock.advance(10);
  mon.record_error(0);
  EXPECT_EQ(mon.health(0), HealthState::kCritical);
  ASSERT_EQ(mon.timeline().size(), 1u);
  EXPECT_EQ(mon.timeline()[0].from, HealthState::kHealthy);
  EXPECT_EQ(mon.timeline()[0].to, HealthState::kCritical);
  EXPECT_EQ(mon.timeline()[0].reason, "error");
}

TEST(SloMonitorTest, BurnEscalatesStepwiseAndFastWindowRecovers) {
  VirtualClock clock;
  SloMonitor mon(clock, tight_slo(), "shard");
  // One fast completion: zero burn, healthy.
  clock.advance(10);
  mon.record_latency(0, 50);
  EXPECT_EQ(mon.health(0), HealthState::kHealthy);
  // 1 slow of 2 completions: slow rate 0.5 vs budget 0.1 = burn 5.0 —
  // past degraded (1.0), short of critical (8.0).
  clock.advance(10);
  mon.record_latency(0, 500);
  EXPECT_EQ(mon.health(0), HealthState::kDegraded);
  // Keep the slow stream coming until 4 of 5 are slow: burn 8.0 pages.
  for (int i = 0; i < 3; ++i) {
    clock.advance(10);
    mon.record_latency(0, 500);
  }
  EXPECT_EQ(mon.health(0), HealthState::kCritical);
  EXPECT_GT(mon.first_entered(0, HealthState::kDegraded), 0u);
  EXPECT_GE(mon.first_entered(0, HealthState::kCritical),
            mon.first_entered(0, HealthState::kDegraded));
  EXPECT_EQ(mon.keys_at_least(HealthState::kCritical), 1u);
  // Recovery keys off the fast window alone: jump past the slow window
  // and show one good completion — the slow window's memory of the storm
  // must not hold the shard hostage.
  clock.advance(tight_slo().window_cycles * 10);
  mon.record_latency(0, 50);
  EXPECT_EQ(mon.health(0), HealthState::kHealthy);
  // Timeline: healthy->degraded, degraded->critical, critical->healthy.
  ASSERT_EQ(mon.timeline().size(), 3u);
  EXPECT_EQ(mon.timeline()[2].from, HealthState::kCritical);
  EXPECT_EQ(mon.timeline()[2].to, HealthState::kHealthy);
}

TEST(SloMonitorTest, EpochBumpForgivesAcrossClockJump) {
  VirtualClock clock;
  SloMonitor mon(clock, tight_slo(), "shard");
  clock.advance(10);
  for (int i = 0; i < 5; ++i) mon.record_error(0);
  ASSERT_EQ(mon.health(0), HealthState::kCritical);
  // Promotion: the new authority starts with a clean error budget. The
  // bump itself renders judgement on nothing (empty window = withheld),
  // so the state holds until fresh evidence arrives...
  mon.note_epoch(0, 2);
  EXPECT_EQ(mon.health(0), HealthState::kCritical);
  // ...even across the recovery ladder's dead-time jump: the stale
  // buckets are gone, so none of the old errors can be attributed to the
  // fresh enclave after the jump.
  clock.advance(tight_slo().window_cycles * 3);
  mon.record_latency(0, 50);
  EXPECT_EQ(mon.health(0), HealthState::kHealthy);
  // The bump is an annotation (from == to) on the timeline and the
  // report carries the new epoch.
  bool saw_epoch = false;
  for (const auto& ev : mon.timeline()) {
    if (ev.reason == "epoch=2") {
      saw_epoch = true;
      EXPECT_EQ(ev.from, ev.to);
    }
  }
  EXPECT_TRUE(saw_epoch);
  const std::string report = mon.report(clock.hz());
  EXPECT_NE(report.find("epoch=2"), std::string::npos);
  EXPECT_NE(report.find("critical -> healthy"), std::string::npos);
}

TEST(SloMonitorTest, ReportIsByteDeterministic) {
  const auto drive = [](VirtualClock& clock, SloMonitor& mon) {
    for (int i = 0; i < 20; ++i) {
      clock.advance(137);
      mon.record_latency(i % 3, i % 4 == 0 ? 500 : 50);
      if (i % 5 == 0) mon.record_shed(1);
    }
    mon.note_epoch(2, 1);
    clock.advance(9999);
    mon.evaluate(0);
  };
  VirtualClock c1, c2;
  SloMonitor m1(c1, tight_slo(), "shard");
  SloMonitor m2(c2, tight_slo(), "shard");
  drive(c1, m1);
  drive(c2, m2);
  const std::string r1 = m1.report(c1.hz());
  EXPECT_FALSE(r1.empty());
  EXPECT_EQ(r1, m2.report(c2.hz()));
}

TEST(SloMonitorTest, PublishExportsPerKeyStateAndTransitions) {
  VirtualClock clock;
  SloMonitor mon(clock, tight_slo(), "shard");
  clock.advance(10);
  for (int i = 0; i < 5; ++i) mon.record_error(0);
  mon.record_latency(1, 50);
  MetricsRegistry m;
  mon.publish(m);
  const auto* sick = m.find("msv_slo_health", {{"shard", "0"}});
  ASSERT_NE(sick, nullptr);
  EXPECT_EQ(sick->gauge.value, 2.0);  // critical
  const auto* fine = m.find("msv_slo_health", {{"shard", "1"}});
  ASSERT_NE(fine, nullptr);
  EXPECT_EQ(fine->gauge.value, 0.0);
  const auto* crit = m.find("msv_slo_critical_total", {{"shard", "0"}});
  ASSERT_NE(crit, nullptr);
  EXPECT_EQ(crit->counter.value, 1u);
  EXPECT_EQ(mon.keys_at_least(HealthState::kDegraded), 1u);
}

// ---- Flight recorder -------------------------------------------------------

TEST(FlightRecorderTest, RingEvictsFifoAndCountsEvictions) {
  Env env;
  FlightBus bus(env.telemetry, /*ring_capacity=*/4);
  telemetry::FlightRecorder& rec = bus.recorder("e1");
  for (int i = 0; i < 10; ++i) {
    env.clock.advance(10);
    rec.record(FlightEventKind::kBridge, "ev" + std::to_string(i), i);
  }
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.evicted(), 6u);
  // Strictly FIFO: the survivors are the newest four, oldest first.
  EXPECT_EQ(rec.events().front().name, "ev6");
  EXPECT_EQ(rec.events().back().name, "ev9");
  EXPECT_EQ(rec.events().back().a, 9);
}

TEST(FlightRecorderTest, SnapshotFreezesRingAndBundleRenders) {
  Env env;
  FlightBus bus(env.telemetry, /*ring_capacity=*/8);
  telemetry::FlightRecorder& rec = bus.recorder("e1");
  env.clock.advance(100);
  rec.record(FlightEventKind::kFault, "fault.enclave_loss");
  const PostMortem& pm =
      bus.snapshot("e1", "enclave_lost", {{"shard", "3"}});
  EXPECT_EQ(pm.seq, 1u);
  EXPECT_EQ(pm.reason, "enclave_lost");
  EXPECT_EQ(pm.at, 100u);
  ASSERT_EQ(pm.events.size(), 1u);
  // The snapshot is a frozen copy: later traffic must not leak into it.
  rec.record(FlightEventKind::kLifecycle, "restart");
  EXPECT_EQ(bus.post_mortems()[0].events.size(), 1u);
  EXPECT_EQ(bus.post_mortems()[0].events[0].name, "fault.enclave_loss");
  // Snapshotting a silent enclave is legal — forensics must not depend
  // on the victim having been chatty.
  const PostMortem& ghost = bus.snapshot("ghost", "restart");
  EXPECT_EQ(ghost.seq, 2u);
  EXPECT_TRUE(ghost.events.empty());
  const std::string bundle = bus.bundle_json(env.clock.hz());
  EXPECT_NE(bundle.find("msv-postmortem-v1"), std::string::npos);
  EXPECT_NE(bundle.find("enclave_lost"), std::string::npos);
  EXPECT_NE(bundle.find("fault.enclave_loss"), std::string::npos);
  EXPECT_NE(bundle.find("\"shard\""), std::string::npos);
}

// ---- Fleet integration -----------------------------------------------------

struct HealthRig {
  explicit HealthRig(FleetConfig cfg)
      : model(apps::build_bank_app()),
        sched(env),
        router(env, sched, model, cfg) {}

  Env env;
  model::AppModel model;
  sched::Scheduler sched;
  FleetRouter router;  // destroyed first: stop() runs while sched is alive
};

FleetConfig health_fleet() {
  FleetConfig cfg;
  cfg.shards = 2;
  cfg.tenants = 8;
  cfg.shard.replication = true;
  cfg.shard.recovery.enabled = true;
  cfg.shard.recovery.checkpoint_every = 1;
  cfg.shard.initial_balance = 100;
  return cfg;
}

// Deposits across every tenant with one mid-stream enclave loss; the
// workload every armed-vs-disarmed comparison below reruns verbatim.
Cycles run_loss_storm(HealthRig& rig) {
  rig.router.start();
  rig.sched.spawn("client", [&rig] {
    server::Request dep;
    dep.op = server::RequestOp::kDeposit;
    dep.amount = 7;
    for (std::uint32_t t = 0; t < 8; ++t) {
      for (int i = 0; i < 3; ++i) rig.router.submit_and_wait(t, dep);
    }
    const std::uint32_t victim = rig.router.shard_of(1);
    rig.router.shard(victim).active_app().enclave().mark_lost();
    for (std::uint32_t t = 0; t < 8; ++t) {
      for (int i = 0; i < 3; ++i) rig.router.submit_and_wait(t, dep);
    }
  });
  rig.sched.run();
  rig.router.stop();
  return rig.env.clock.now();
}

TEST(FlightStormTest, EnclaveLossLeavesAPostMortemRoundTrip) {
  HealthRig rig(health_fleet());
  FlightBus bus(rig.env.telemetry);
  rig.env.telemetry.set_flight(&bus);
  run_loss_storm(rig);
  rig.env.telemetry.set_flight(nullptr);
  // The loss froze the victim's ring the instant it died, and the
  // warm-standby promotion that served the failover snapshotted too.
  std::set<std::string> reasons;
  for (const PostMortem& pm : bus.post_mortems()) reasons.insert(pm.reason);
  EXPECT_TRUE(reasons.count("enclave_lost")) << "loss must snapshot";
  EXPECT_TRUE(reasons.count("promotion")) << "promotion must snapshot";
  // Round-trip: the enclave_lost snapshot carries the victim's bridge
  // traffic from before the loss.
  for (const PostMortem& pm : bus.post_mortems()) {
    if (pm.reason != "enclave_lost") continue;
    EXPECT_FALSE(pm.events.empty())
        << "the victim served traffic before dying; its ring cannot be "
           "empty";
    EXPECT_GT(pm.ring_recorded, 0u);
  }
  const std::string bundle = bus.bundle_json(rig.env.clock.hz());
  EXPECT_NE(bundle.find("msv-postmortem-v1"), std::string::npos);
  EXPECT_NE(bundle.find("enclave_lost"), std::string::npos);
  EXPECT_NE(bundle.find("promotion"), std::string::npos);
}

TEST(HealthOverheadTest, ArmingTheStackNeverMovesTheClock) {
  // Disarmed baseline.
  HealthRig base(health_fleet());
  const Cycles base_clock = run_loss_storm(base);

  // Fully armed: SLO monitor (observe mode), flight bus, profiler.
  FleetConfig cfg = health_fleet();
  cfg.slo_enabled = true;
  HealthRig armed(cfg);
  FlightBus bus(armed.env.telemetry);
  armed.env.telemetry.set_flight(&bus);
  SampleProfiler sampler(armed.env.clock, armed.env.telemetry.tracer(),
                         /*interval_cycles=*/100'000);
  armed.sched.set_sampler(&sampler);
  const Cycles armed_clock = run_loss_storm(armed);
  armed.sched.set_sampler(nullptr);
  armed.env.telemetry.set_flight(nullptr);

  // The whole stack observes; none of it is allowed to charge cycles.
  EXPECT_EQ(armed_clock, base_clock);
  // And it genuinely observed something while costing nothing.
  EXPECT_GT(sampler.samples(), 0u);
  EXPECT_FALSE(bus.post_mortems().empty());
  ASSERT_NE(armed.router.slo(), nullptr);
  EXPECT_FALSE(armed.router.slo()->timeline().empty());
}

TEST(SamplerTest, TwoArmedRunsFoldIdentically) {
  const auto run_armed = [](std::string* folded, std::uint64_t* samples) {
    HealthRig rig(health_fleet());
    telemetry::TraceConfig tc;
    tc.mode = telemetry::TraceMode::kFull;
    rig.env.telemetry.configure(tc);
    SampleProfiler sampler(rig.env.clock, rig.env.telemetry.tracer(),
                           /*interval_cycles=*/50'000);
    rig.sched.set_sampler(&sampler);
    const Cycles end = run_loss_storm(rig);
    rig.sched.set_sampler(nullptr);
    *folded = sampler.folded();
    *samples = sampler.samples();
    return end;
  };
  std::string f1, f2;
  std::uint64_t s1 = 0, s2 = 0;
  const Cycles c1 = run_armed(&f1, &s1);
  const Cycles c2 = run_armed(&f2, &s2);
  EXPECT_GT(s1, 0u);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(c1, c2);
  EXPECT_FALSE(f1.empty());
  EXPECT_EQ(f1, f2) << "profiles must be byte-identical at a seed";
}

// ---- Router SLO enforcement ------------------------------------------------

// An SLO config under which a single completion pages: everything lands
// in one absolute window and any latency exceeds the 1-cycle target.
FleetConfig paging_fleet(bool enforce) {
  FleetConfig cfg = health_fleet();
  cfg.slo_enabled = true;
  cfg.slo_enforce = enforce;
  cfg.slo.window_cycles = 1ull << 40;
  cfg.slo.p99_target_cycles = 1;
  cfg.slo.min_samples = 1;
  return cfg;
}

TEST(FleetSloTest, EnforceShedsSubmissionsToACriticalShard) {
  HealthRig rig(paging_fleet(/*enforce=*/true));
  rig.router.start();
  const std::uint32_t tenant = 0;
  const std::uint32_t k = rig.router.shard_of(tenant);
  rig.sched.spawn("client", [&] {
    server::Request dep;
    dep.op = server::RequestOp::kDeposit;
    dep.amount = 5;
    // The completion's latency (far beyond 1 cycle) pages the shard
    // critical the moment it is recorded.
    rig.router.submit_and_wait(tenant, dep);
    ASSERT_NE(rig.router.slo(), nullptr);
    EXPECT_EQ(rig.router.slo()->health(k), HealthState::kCritical);
    // Enforcement: admission to the critical shard closes.
    EXPECT_FALSE(rig.router.submit(tenant, dep));
  });
  rig.sched.run();
  const fleet::FleetStats stats = rig.router.stats();
  EXPECT_GT(stats.shed_slo, 0u);
  EXPECT_GE(stats.shed, stats.shed_slo) << "shed_slo folds into total shed";
  rig.router.stop();
}

TEST(FleetSloTest, ObserveModeNeverSheds) {
  HealthRig rig(paging_fleet(/*enforce=*/false));
  rig.router.start();
  const std::uint32_t tenant = 0;
  rig.sched.spawn("client", [&] {
    server::Request dep;
    dep.op = server::RequestOp::kDeposit;
    dep.amount = 5;
    rig.router.submit_and_wait(tenant, dep);
    // Observe mode: the monitor pages but the router keeps admitting.
    EXPECT_TRUE(rig.router.submit(tenant, dep));
  });
  rig.sched.run();
  EXPECT_EQ(rig.router.stats().shed_slo, 0u);
  rig.router.stop();
}

TEST(FleetSloTest, MigrationHintPointsOffTheSickShard) {
  HealthRig rig(paging_fleet(/*enforce=*/false));
  rig.router.start();
  // All shards healthy: no hint.
  EXPECT_FALSE(rig.router.migration_hint().has_value());
  // Page exactly one shard by driving one tenant's traffic at it.
  const std::uint32_t tenant = 0;
  const std::uint32_t sick = rig.router.shard_of(tenant);
  rig.sched.spawn("client", [&] {
    server::Request dep;
    dep.op = server::RequestOp::kDeposit;
    dep.amount = 5;
    for (int i = 0; i < 5; ++i) rig.router.submit_and_wait(tenant, dep);
  });
  rig.sched.run();
  const std::optional<FleetRouter::MigrationHint> hint =
      rig.router.migration_hint();
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->from_shard, sick);
  EXPECT_NE(hint->to_shard, sick);
  // The hint names a tenant actually resident on the sick shard.
  EXPECT_EQ(rig.router.shard_of(hint->tenant), sick);
  rig.router.stop();
}

}  // namespace
}  // namespace msv
