// Tests for src/kernels: correctness of the real computations and the
// cost-model properties the evaluation relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/kernels.h"
#include "sgx/enclave.h"
#include "sim/domain.h"

namespace msv::kernels {
namespace {

struct Domains {
  Env env_out;
  UntrustedDomain out{env_out};
  Env env_in;
  std::unique_ptr<sgx::Enclave> enclave;
  std::unique_ptr<sgx::EnclaveDomain> in;

  Domains() {
    enclave = std::make_unique<sgx::Enclave>(env_in, "k",
                                             Sha256::hash("img"), 4096);
    enclave->init(Sha256::hash("img"));
    in = std::make_unique<sgx::EnclaveDomain>(env_in, *enclave);
  }
};

TEST(Fft, Deterministic) {
  Env env;
  UntrustedDomain d(env);
  Rng r1(1), r2(1);
  const auto a = fft(env, d, 1 << 12, r1);
  const auto b = fft(env, d, 1 << 12, r2);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.ops, b.ops);
}

TEST(Fft, ParsevalEnergyPreserved) {
  // The DFT preserves energy up to scaling: sum |X|^2 = n * sum |x|^2.
  // Re-run the transform manually on a copy to check the library's FFT is
  // a real FFT, not a cost stub.
  const std::uint64_t n = 256;  // complex points
  Rng rng(7);
  std::vector<double> re(n), im(n, 0.0);
  double in_energy = 0;
  for (auto& v : re) {
    v = rng.next_double() - 0.5;
  }
  for (std::uint64_t i = 0; i < n; ++i) in_energy += re[i] * re[i];

  // Naive DFT as the oracle.
  double out_energy = 0;
  for (std::uint64_t k = 0; k < n; ++k) {
    double xr = 0, xi = 0;
    for (std::uint64_t t = 0; t < n; ++t) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * t) /
                         static_cast<double>(n);
      xr += re[t] * std::cos(ang) - im[t] * std::sin(ang);
      xi += re[t] * std::sin(ang) + im[t] * std::cos(ang);
    }
    out_energy += xr * xr + xi * xi;
  }
  EXPECT_NEAR(out_energy, static_cast<double>(n) * in_energy,
              1e-6 * out_energy);

  // And the library FFT on the same seed produces a matching spectrum
  // energy (it fills from the same RNG sequence).
  Env env;
  UntrustedDomain d(env);
  Rng rng2(7);
  const auto r = fft(env, d, 2 * n, rng2);
  EXPECT_TRUE(std::isfinite(r.checksum));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  Env env;
  UntrustedDomain d(env);
  Rng rng(1);
  EXPECT_THROW(fft(env, d, 1000, rng), RuntimeFault);
}

TEST(Fft, CostScalesSuperlinearly) {
  Env env;
  UntrustedDomain d(env);
  Rng rng(1);
  const Cycles t0 = env.clock.now();
  fft(env, d, 1 << 12, rng);
  const Cycles small = env.clock.now() - t0;
  const Cycles t1 = env.clock.now();
  fft(env, d, 1 << 16, rng);
  const Cycles big = env.clock.now() - t1;
  EXPECT_GT(big, small * 16) << "n log n growth";
}

TEST(Kernels, EnclaveRunsCostMore) {
  for (int k = 0; k < 3; ++k) {
    Domains d;
    Rng rng_out(9), rng_in(9);
    Cycles out_cost, in_cost;
    auto run = [&](Env& env, MemoryDomain& dom, Rng& rng) {
      const Cycles before = env.clock.now();
      switch (k) {
        case 0:
          fft(env, dom, 1 << 14, rng);
          break;
        case 1:
          sor(env, dom, 64, 10, rng);
          break;
        default:
          sparse_matmult(env, dom, 500, 5000, 5, rng);
          break;
      }
      return env.clock.now() - before;
    };
    out_cost = run(d.env_out, d.out, rng_out);
    in_cost = run(d.env_in, *d.in, rng_in);
    EXPECT_GT(in_cost, out_cost) << "kernel " << k;
    EXPECT_LT(in_cost, out_cost * 8) << "compute-bound: MEE hits traffic only";
  }
}

TEST(Sor, ConvergesTowardSmoothField) {
  Env env;
  UntrustedDomain d(env);
  Rng rng(3);
  const auto r = sor(env, d, 32, 200, rng);
  EXPECT_TRUE(std::isfinite(r.checksum));
  EXPECT_GT(r.ops, 0u);
}

TEST(Lu, PivotProductIsDeterminantMagnitude) {
  Env env;
  UntrustedDomain d(env);
  Rng rng(5);
  const auto r = lu(env, d, 32, rng);
  EXPECT_TRUE(std::isfinite(r.checksum));
  EXPECT_NE(r.checksum, 0.0) << "random diagonally-boosted matrix is regular";
}

TEST(MonteCarlo, EstimatesPi) {
  Env env;
  UntrustedDomain d(env);
  Rng rng(11);
  const auto r = monte_carlo(env, d, 200'000, rng);
  EXPECT_NEAR(r.checksum, M_PI, 0.02);
  EXPECT_GT(r.alloc_bytes, 0u) << "MC generates allocation pressure";
}

TEST(SparseMatmult, StableUnderIterations) {
  Env env;
  UntrustedDomain d(env);
  Rng rng(13);
  const auto r = sparse_matmult(env, d, 1000, 10'000, 10, rng);
  EXPECT_TRUE(std::isfinite(r.checksum));
}

TEST(Mpegaudio, ProcessesFrames) {
  Env env;
  UntrustedDomain d(env);
  Rng rng(17);
  const auto r = mpegaudio(env, d, 500, rng);
  EXPECT_TRUE(std::isfinite(r.checksum));
  EXPECT_GT(r.ops, 500u * 64);
}

}  // namespace
}  // namespace msv::kernels
