// Tests for the enclave fleet (DESIGN.md §14): consistent-hash ring
// properties, tenant-state byte-format stability, replica promotion with
// epoch fencing (stale proxies fault, deposits count exactly once), and
// hot-tenant migration behind the coalescing drain fence.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "apps/illustrative/bank.h"
#include "core/multi_app.h"
#include "fleet/load.h"
#include "fleet/ring.h"
#include "fleet/router.h"
#include "fleet/shard.h"
#include "rmi/multi_isolate.h"
#include "sched/scheduler.h"
#include "server/tenant_state.h"
#include "sim/env.h"
#include "support/error.h"

namespace msv {
namespace {

using fleet::FleetConfig;
using fleet::FleetRouter;
using fleet::HashRing;

// ---- Consistent-hash ring --------------------------------------------------

TEST(HashRingTest, AssignmentIsPureFunctionOfSeedAndMemberSet) {
  HashRing a(0x5eed, 16);
  HashRing b(0x5eed, 16);
  // Insertion order must not matter.
  for (std::uint32_t n : {0u, 1u, 2u, 3u}) a.add_node(n);
  for (std::uint32_t n : {3u, 1u, 0u, 2u}) b.add_node(n);
  for (std::uint32_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.owner_of(key), b.owner_of(key));
  }
  // A different seed shuffles ownership.
  HashRing c(0x5eee, 16);
  for (std::uint32_t n : {0u, 1u, 2u, 3u}) c.add_node(n);
  std::uint32_t moved = 0;
  for (std::uint32_t key = 0; key < 1000; ++key) {
    if (a.owner_of(key) != c.owner_of(key)) ++moved;
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, NodeAddMovesOnlyKeysOntoTheNewNode) {
  HashRing ring(42, 32);
  for (std::uint32_t n = 0; n < 4; ++n) ring.add_node(n);
  std::map<std::uint32_t, std::uint32_t> before;
  for (std::uint32_t key = 0; key < 2000; ++key) {
    before[key] = ring.owner_of(key);
  }
  ring.add_node(4);
  std::uint32_t moved = 0;
  for (std::uint32_t key = 0; key < 2000; ++key) {
    const std::uint32_t now = ring.owner_of(key);
    if (now != before[key]) {
      EXPECT_EQ(now, 4u) << "churn may only flow onto the new node";
      ++moved;
    }
  }
  // Expected churn is ~1/5 of the keyspace; assert a generous envelope
  // (the point is "bounded", not "exact").
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 2000u / 2);
}

TEST(HashRingTest, NodeRemoveMovesOnlyThatNodesKeys) {
  HashRing ring(42, 32);
  for (std::uint32_t n = 0; n < 5; ++n) ring.add_node(n);
  std::map<std::uint32_t, std::uint32_t> before;
  for (std::uint32_t key = 0; key < 2000; ++key) {
    before[key] = ring.owner_of(key);
  }
  ring.remove_node(2);
  for (std::uint32_t key = 0; key < 2000; ++key) {
    if (before[key] != 2) {
      EXPECT_EQ(ring.owner_of(key), before[key])
          << "keys not owned by the removed node must not move";
    } else {
      EXPECT_NE(ring.owner_of(key), 2u);
    }
  }
  EXPECT_FALSE(ring.has_node(2));
  EXPECT_EQ(ring.node_count(), 4u);
}

// ---- Tenant-state byte format ----------------------------------------------

// Golden bytes: u32 LE tenant, LEB128 varint seq, i32 LE balance. The
// sealed checkpoint stream (and with it every PR 5 trace digest) depends
// on this layout never drifting.
TEST(TenantStateTest, CheckpointPayloadLayoutIsStable) {
  const std::vector<std::uint8_t> payload =
      server::TenantState::encode_payload(/*tenant=*/7, /*seq=*/300,
                                          /*balance=*/-2);
  const std::vector<std::uint8_t> expected = {
      0x07, 0x00, 0x00, 0x00,  // tenant, u32 LE
      0xac, 0x02,              // seq 300, LEB128
      0xfe, 0xff, 0xff, 0xff,  // balance -2, i32 LE
  };
  EXPECT_EQ(payload, expected);
  const auto decoded = server::TenantState::decode_payload(payload, 7);
  EXPECT_EQ(decoded.seq, 300u);
  EXPECT_EQ(decoded.balance, -2);
  EXPECT_THROW(server::TenantState::decode_payload(payload, 8),
               SecurityFault);
}

// ---- Zipf CDF --------------------------------------------------------------

TEST(FleetLoadTest, ZipfCdfIsSkewedAndClosed) {
  const std::vector<double> cdf = fleet::FleetLoad::zipf_cdf(64, 1.1);
  ASSERT_EQ(cdf.size(), 64u);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
  // The head tenant carries an order of magnitude more than the uniform
  // share — the skew that makes one shard hot.
  EXPECT_GT(cdf[0], 10.0 / 64.0);
}

// ---- Fleet rig -------------------------------------------------------------

struct FleetRig {
  explicit FleetRig(FleetConfig cfg)
      : model(apps::build_bank_app()),
        sched(env),
        router(env, sched, model, cfg) {}

  Env env;
  model::AppModel model;
  sched::Scheduler sched;
  FleetRouter router;  // destroyed first: stop() runs while sched is alive
};

FleetConfig small_fleet(bool replication) {
  FleetConfig cfg;
  cfg.shards = 2;
  cfg.tenants = 8;
  cfg.shard.replication = replication;
  cfg.shard.recovery.enabled = true;
  cfg.shard.recovery.checkpoint_every = 1;
  cfg.shard.initial_balance = 100;
  return cfg;
}

// ---- Replica promotion -----------------------------------------------------

TEST(FleetShardTest, FenceProxiesMakesEveryMintedProxyStale) {
  core::MultiIsolateApp app(apps::build_bank_app(), 1);
  const rt::Value session = app.construct_in(
      0, "Account", {rt::Value("t"), rt::Value(10)});
  EXPECT_EQ(app.untrusted_context()
                .invoke(session.as_ref(), "getBalance", {})
                .as_i32(),
            10);
  app.rmi().fence_proxies();
  EXPECT_THROW(app.untrusted_context().invoke(session.as_ref(),
                                              "getBalance", {}),
               rmi::StaleProxyError);
}

TEST(FleetShardTest, PlannedPromotionCountsEveryDepositExactlyOnce) {
  FleetRig rig(small_fleet(/*replication=*/true));
  rig.router.start();
  const std::uint32_t tenant = 0;
  const std::uint32_t k = rig.router.shard_of(tenant);
  const std::uint64_t epoch_before = rig.router.shard(k).authority_epoch();
  rig.sched.spawn("client", [&] {
    server::Request dep;
    dep.op = server::RequestOp::kDeposit;
    dep.amount = 5;
    for (int i = 0; i < 10; ++i) rig.router.submit_and_wait(tenant, dep);
    // Flip the authority mid-stream: every session minted so far is
    // fenced; the next request rebuilds from the replicated checkpoint.
    rig.router.promote_shard(k);
    for (int i = 0; i < 10; ++i) rig.router.submit_and_wait(tenant, dep);
    server::Request bal;
    bal.op = server::RequestOp::kBalance;
    EXPECT_EQ(rig.router.submit_and_wait(tenant, bal), 100 + 20 * 5);
  });
  rig.sched.run();
  EXPECT_EQ(rig.router.shard(k).authority_epoch(), epoch_before + 1);
  EXPECT_EQ(rig.router.shard(k).stats().promotions, 1u);
  EXPECT_EQ(rig.router.shard(k).stats().restarts, 0u);
  // Planned failover: the healthy demoted enclave is the new standby.
  EXPECT_TRUE(rig.router.shard(k).standby_ready());
  rig.router.stop();
}

TEST(FleetShardTest, EnclaveLossPromotesTheWarmStandby) {
  FleetRig rig(small_fleet(/*replication=*/true));
  rig.router.start();
  const std::uint32_t tenant = 1;
  const std::uint32_t k = rig.router.shard_of(tenant);
  rig.sched.spawn("client", [&] {
    server::Request dep;
    dep.op = server::RequestOp::kDeposit;
    dep.amount = 7;
    for (int i = 0; i < 5; ++i) rig.router.submit_and_wait(tenant, dep);
    // Lose the authority; with checkpoint_every=1 the replica stream has
    // every deposit, so nothing is lost across the promotion.
    rig.router.shard(k).active_app().enclave().mark_lost();
    for (int i = 0; i < 5; ++i) rig.router.submit_and_wait(tenant, dep);
    server::Request bal;
    bal.op = server::RequestOp::kBalance;
    EXPECT_EQ(rig.router.submit_and_wait(tenant, bal), 100 + 10 * 7);
  });
  rig.sched.run();
  const fleet::ShardStats& s = rig.router.shard(k).stats();
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_EQ(s.restarts, 0u) << "a warm standby means no inline restart";
  // The background rebuild re-measured the lost enclave into the next
  // standby by the time the run drained.
  EXPECT_EQ(s.standby_rebuilds, 1u);
  EXPECT_TRUE(rig.router.shard(k).standby_ready());
  rig.router.stop();
}

TEST(FleetShardTest, WithoutReplicationLossFallsBackToRestart) {
  FleetRig rig(small_fleet(/*replication=*/false));
  rig.router.start();
  const std::uint32_t tenant = 1;
  const std::uint32_t k = rig.router.shard_of(tenant);
  rig.sched.spawn("client", [&] {
    server::Request dep;
    dep.op = server::RequestOp::kDeposit;
    dep.amount = 3;
    for (int i = 0; i < 4; ++i) rig.router.submit_and_wait(tenant, dep);
    rig.router.shard(k).active_app().enclave().mark_lost();
    for (int i = 0; i < 4; ++i) rig.router.submit_and_wait(tenant, dep);
    server::Request bal;
    bal.op = server::RequestOp::kBalance;
    EXPECT_EQ(rig.router.submit_and_wait(tenant, bal), 100 + 8 * 3);
  });
  rig.sched.run();
  EXPECT_EQ(rig.router.shard(k).stats().promotions, 0u);
  EXPECT_EQ(rig.router.shard(k).stats().restarts, 1u);
  rig.router.stop();
}

// ---- Hot-tenant migration --------------------------------------------------

TEST(FleetRouterTest, MigrationDrainsThenPreservesBalanceExactly) {
  FleetRig rig(small_fleet(/*replication=*/true));
  rig.router.start();
  const std::uint32_t tenant = 0;
  const std::uint32_t from = rig.router.shard_of(tenant);
  const std::uint32_t to = from ^ 1;
  rig.sched.spawn("client", [&] {
    server::Request dep;
    dep.op = server::RequestOp::kDeposit;
    dep.amount = 11;
    for (int i = 0; i < 6; ++i) rig.router.submit_and_wait(tenant, dep);
    // Leave work in flight so the migration actually has to drain: these
    // fire-and-forget deposits are queued, not completed, when the
    // migration starts.
    std::uint32_t queued = 0;
    for (int i = 0; i < 4; ++i) {
      if (rig.router.submit(tenant, dep)) ++queued;
    }
    EXPECT_GT(queued, 0u);
    rig.router.migrate_tenant(tenant, to);
    EXPECT_EQ(rig.router.shard_of(tenant), to);
    server::Request bal;
    bal.op = server::RequestOp::kBalance;
    EXPECT_EQ(rig.router.submit_and_wait(tenant, bal),
              100 + static_cast<int>(6 + queued) * 11)
        << "every queued deposit lands exactly once, before the move";
  });
  rig.sched.run();
  EXPECT_FALSE(rig.router.shard(from).hosts(tenant));
  EXPECT_TRUE(rig.router.shard(to).hosts(tenant));
  // The route table now disagrees with the ring for exactly this tenant.
  EXPECT_EQ(rig.router.tenants_off_ring(), 1u);
  EXPECT_EQ(rig.router.stats().migrations, 1u);
  rig.router.stop();
}

TEST(FleetRouterTest, RoutesEveryTenantToItsRingOwnerAtStart) {
  FleetConfig cfg = small_fleet(false);
  cfg.shards = 4;
  cfg.tenants = 64;
  FleetRig rig(cfg);
  rig.router.start();
  EXPECT_EQ(rig.router.tenants_off_ring(), 0u);
  std::set<std::uint32_t> used;
  for (std::uint32_t t = 0; t < 64; ++t) {
    const std::uint32_t k = rig.router.shard_of(t);
    EXPECT_EQ(k, rig.router.ring_owner(t));
    EXPECT_TRUE(rig.router.shard(k).hosts(t));
    used.insert(k);
  }
  // 64 tenants over 4 shards with 16 vnodes each: every shard is used.
  EXPECT_EQ(used.size(), 4u);
  rig.router.stop();
}

}  // namespace
}  // namespace msv
