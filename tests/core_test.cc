// Tests for src/core: pipeline-level behaviours — determinism, tampering,
// configuration, and the guarantees the runners make.
#include <gtest/gtest.h>

#include "apps/illustrative/bank.h"
#include "apps/synthetic/generator.h"
#include "core/montsalvat.h"

namespace msv::core {
namespace {

using rt::Value;

TEST(Determinism, IdenticalRunsProduceIdenticalClocks) {
  auto run_once = [] {
    PartitionedApp app(apps::build_bank_app());
    app.run_main();
    auto& u = app.untrusted_context();
    const Value p =
        u.construct("Person", {Value("x"), Value(std::int32_t{5})});
    u.invoke(p.as_ref(), "transfer",
             {u.construct("Person", {Value("y"), Value(std::int32_t{1})}),
              Value(std::int32_t{2})});
    u.isolate().heap().collect();
    app.rmi().force_gc_scan();
    return app.env().clock.now();
  };
  EXPECT_EQ(run_once(), run_once()) << "bit-for-bit reproducible simulation";
}

TEST(Determinism, MeasurementStableAcrossBuilds) {
  PartitionedApp a(apps::build_bank_app());
  PartitionedApp b(apps::build_bank_app());
  EXPECT_EQ(a.enclave().measurement(), b.enclave().measurement());
}

TEST(Determinism, DifferentCodeDifferentMeasurement) {
  PartitionedApp bank(apps::build_bank_app());
  PartitionedApp micro(apps::synthetic::build_micro_app());
  EXPECT_NE(bank.enclave().measurement(), micro.enclave().measurement());
}

TEST(Config, CostModelOverridesApply) {
  AppConfig slow;
  slow.cost.ecall_cycles *= 10;
  slow.cost.isolate_attach_trusted_cycles *= 10;

  auto measure = [](AppConfig config) {
    PartitionedApp app(apps::synthetic::build_micro_app(), config);
    auto& u = app.untrusted_context();
    const Value w = u.construct("Worker", {});
    const Cycles t0 = app.env().clock.now();
    for (int i = 0; i < 50; ++i) {
      u.invoke(w.as_ref(), "set", {Value(std::int32_t{1})});
    }
    return app.env().clock.now() - t0;
  };
  EXPECT_GT(measure(slow), measure(AppConfig{}) * 5);
}

TEST(Config, HeapSizesRespected) {
  AppConfig config;
  config.trusted_heap_bytes = 1 << 20;
  config.untrusted_heap_bytes = 1 << 20;
  PartitionedApp app(apps::build_bank_app(), config);
  EXPECT_EQ(app.trusted_context().isolate().heap().semispace_bytes(),
            (1u << 20) / 2);
}

TEST(Config, CustomFilesystemShared) {
  auto fs = std::make_shared<vfs::MemFs>();
  fs->open("preexisting.txt", vfs::OpenMode::kWrite)->write("hi", 2);
  AppConfig config;
  config.fs = fs;
  PartitionedApp app(apps::build_bank_app(), config);
  EXPECT_TRUE(app.env().fs->exists("preexisting.txt"));
}

TEST(Pipeline, ImageHeapsMappedAtIsolateStartup) {
  PartitionedApp app(apps::build_bank_app());
  // The trusted image heap was touched into the EPC during isolate
  // creation (§2.2: the image heap is memory-mapped at startup).
  EXPECT_GT(app.enclave().epc().stats().faults,
            app.trusted_image().image_heap_bytes /
                app.env().cost.page_bytes / 2);
}

TEST(Pipeline, EnclaveCreationChargedToStartup) {
  PartitionedApp app(apps::build_bank_app());
  EXPECT_GT(app.env().clock.now(), app.env().cost.enclave_create_base_cycles)
      << "build-time work is free, load-time work is not";
}

TEST(Pipeline, EdlCoversRelaysShimAndGcHelpers) {
  PartitionedApp app(apps::build_bank_app());
  const auto& edl = app.edl();
  EXPECT_TRUE(edl.has_ecall("ecall_relay_Account_updateBalance"));
  EXPECT_TRUE(edl.has_ecall("ecall_gc_evict_mirrors"));
  EXPECT_TRUE(edl.has_ecall("ecall_gc_scan_trusted"));
  EXPECT_TRUE(edl.has_ocall("ocall_fwrite"));
  EXPECT_TRUE(edl.has_ocall("ocall_mmap_fetch"));
  EXPECT_TRUE(edl.has_ocall("ocall_gc_evict_mirrors"));
}

TEST(Pipeline, SwitchlessConfigMarksEdl) {
  AppConfig config;
  config.switchless_relays = true;
  PartitionedApp app(apps::build_bank_app(), config);
  bool any_marked = false;
  for (const auto& fn : app.edl().trusted) any_marked |= fn.switchless;
  EXPECT_TRUE(any_marked);
  EXPECT_NE(app.edl().to_edl_text().find("transition_using_threads"),
            std::string::npos);
}

TEST(Runners, UnpartitionedRunInEnclaveHelper) {
  AppConfig config;
  // getBalance is not reachable from main; root it for the host driver.
  config.extra_entry_points = {{"Account", "getBalance"}};
  UnpartitionedApp app(apps::build_bank_app(), config);
  const Value result = app.run_in_enclave([](interp::ExecContext& ctx) {
    const Value acct =
        ctx.construct("Account", {Value("in"), Value(std::int32_t{9})});
    return ctx.invoke(acct.as_ref(), "getBalance", {});
  });
  EXPECT_EQ(result.as_i32(), 9);
  EXPECT_GE(app.bridge().stats().ecalls, 1u);
}

TEST(Runners, MainWithTrustedAnnotationRejectedEverywhere) {
  model::AppModel bad;
  bad.add_class("Main", model::Annotation::kTrusted)
      .add_static_method("main", 0)
      .body(model::IrBuilder().ret_void().build());
  bad.set_main_class("Main");
  EXPECT_THROW(PartitionedApp{bad}, ConfigError);
  EXPECT_THROW(UnpartitionedApp{bad}, ConfigError);
  EXPECT_THROW(NativeApp{bad}, ConfigError);
}

TEST(Runners, SimulatedTimeOrderingHolds) {
  // The headline qualitative claim across the three runners.
  const model::AppModel app = apps::build_bank_app();
  NativeApp native(app);
  native.run_main();
  PartitionedApp part(app);
  part.run_main();
  UnpartitionedApp unpart(app);
  unpart.run_main();
  EXPECT_LT(native.now_seconds(), part.now_seconds());
  // This workload is RMI-heavy with almost no I/O or memory pressure, so
  // the unpartitioned variant (one ecall total) beats the partitioned one
  // — partitioning pays off when real work can leave the enclave (Fig. 6).
  EXPECT_LT(unpart.now_seconds(), part.now_seconds());
}

TEST(Tcb, ShimBeatsLibOsByOrdersOfMagnitude) {
  PartitionedApp app(apps::build_bank_app());
  const TcbReport tcb = app.tcb_report();
  // Graphene/SGX-LKL-style LibOS TCBs are tens of MB of code; the §5.4
  // argument is that the shim keeps the enclave two orders smaller.
  constexpr std::uint64_t kLibOsCodeBytes = 40ull << 20;
  EXPECT_LT(tcb.shim_bytes * 100, kLibOsCodeBytes);
  EXPECT_LT(tcb.total_bytes(), kLibOsCodeBytes);
}

}  // namespace
}  // namespace msv::core
