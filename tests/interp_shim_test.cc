// Unit tests for src/interp (IR interpreter, intrinsics) and src/shim
// (host I/O and the enclave shim).
#include <gtest/gtest.h>

#include "interp/exec_context.h"
#include "model/ir.h"
#include "sgx/bridge.h"
#include "sgx/enclave.h"
#include "shim/enclave_shim.h"
#include "shim/host_io.h"

namespace msv {
namespace {

using interp::ExecContext;
using interp::IntrinsicTable;
using model::IrBuilder;
using rt::Value;

class InterpTest : public ::testing::Test {
 protected:
  InterpTest()
      : domain_(env_),
        iso_(env_, domain_, rt::Isolate::Config{"interp", 8 << 20}),
        io_(env_, domain_) {}

  ExecContext make_ctx() {
    return ExecContext(env_, iso_, app_, io_, IntrinsicTable::defaults());
  }

  Env env_;
  UntrustedDomain domain_;
  rt::Isolate iso_;
  shim::HostIo io_;
  model::AppModel app_;
};

TEST_F(InterpTest, ArithmeticAndLocals) {
  auto& c = app_.add_class("Math");
  // static f(a, b) { return a * b + 3; }
  c.add_static_method("f", 2).body(IrBuilder()
                                       .locals(2)
                                       .load_local(0)
                                       .load_local(1)
                                       .mul()
                                       .const_val(Value(std::int32_t{3}))
                                       .add()
                                       .ret()
                                       .build());
  auto ctx = make_ctx();
  EXPECT_EQ(
      ctx.invoke_static("Math", "f", {Value(std::int32_t{6}), Value(std::int32_t{7})})
          .as_i32(),
      45);
}

TEST_F(InterpTest, NumericPromotion) {
  auto& c = app_.add_class("Math");
  c.add_static_method("mix", 2).body(
      IrBuilder().locals(2).load_local(0).load_local(1).add().ret().build());
  auto ctx = make_ctx();
  EXPECT_DOUBLE_EQ(
      ctx.invoke_static("Math", "mix", {Value(std::int32_t{1}), Value(0.5)})
          .as_f64(),
      1.5);
  EXPECT_EQ(ctx.invoke_static("Math", "mix",
                              {Value(std::int64_t{1} << 40), Value(std::int32_t{1})})
                .as_i64(),
            (std::int64_t{1} << 40) + 1);
}

TEST_F(InterpTest, LoopViaBranches) {
  // static sum(n) { s = 0; i = 0; while (i < n) { s += i; i += 1; } return s; }
  auto& c = app_.add_class("Loop");
  IrBuilder b;
  const auto head = b.new_label();
  const auto end = b.new_label();
  b.locals(3)
      .const_val(Value(std::int32_t{0}))
      .store_local(1)  // s
      .const_val(Value(std::int32_t{0}))
      .store_local(2)  // i
      .bind(head)
      .load_local(2)
      .load_local(0)
      .lt()
      .branch_false(end)
      .load_local(1)
      .load_local(2)
      .add()
      .store_local(1)
      .load_local(2)
      .const_val(Value(std::int32_t{1}))
      .add()
      .store_local(2)
      .jump(head)
      .bind(end)
      .load_local(1)
      .ret();
  c.add_static_method("sum", 1).body(b.build());
  auto ctx = make_ctx();
  EXPECT_EQ(ctx.invoke_static("Loop", "sum", {Value(std::int32_t{100})}).as_i32(),
            4950);
  EXPECT_GT(ctx.stats().ir_ops, 1000u);
}

TEST_F(InterpTest, DivisionByZeroThrows) {
  auto& c = app_.add_class("Math");
  c.add_static_method("div", 2).body(
      IrBuilder().locals(2).load_local(0).load_local(1).div().ret().build());
  auto ctx = make_ctx();
  EXPECT_THROW(ctx.invoke_static("Math", "div",
                                 {Value(std::int32_t{1}), Value(std::int32_t{0})}),
               RuntimeFault);
}

TEST_F(InterpTest, EqComparesStringsAndRefs) {
  auto& c = app_.add_class("Cmp");
  c.add_static_method("eq", 2).body(
      IrBuilder().locals(2).load_local(0).load_local(1).eq().ret().build());
  auto ctx = make_ctx();
  EXPECT_TRUE(
      ctx.invoke_static("Cmp", "eq", {Value("a"), Value("a")}).as_bool());
  EXPECT_FALSE(
      ctx.invoke_static("Cmp", "eq", {Value("a"), Value("b")}).as_bool());
  EXPECT_TRUE(ctx.invoke_static("Cmp", "eq", {Value(), Value()}).as_bool());
}

TEST_F(InterpTest, WrongArgumentCountThrows) {
  auto& c = app_.add_class("C");
  c.add_static_method("f", 2).body(IrBuilder().ret_void().build());
  auto ctx = make_ctx();
  EXPECT_THROW(ctx.invoke_static("C", "f", {Value(std::int32_t{1})}),
               RuntimeFault);
}

TEST_F(InterpTest, UnknownMethodOrClassThrows) {
  app_.add_class("C");
  auto ctx = make_ctx();
  EXPECT_THROW(ctx.invoke_static("C", "ghost", {}), RuntimeFault);
  EXPECT_THROW(ctx.construct("Ghost", {}), Error);
}

TEST_F(InterpTest, OperandStackUnderflowDetected) {
  auto& c = app_.add_class("Bad");
  c.add_static_method("f", 0).body(IrBuilder().pop().ret_void().build());
  auto ctx = make_ctx();
  EXPECT_THROW(ctx.invoke_static("Bad", "f", {}), RuntimeFault);
}

TEST_F(InterpTest, IntrinsicBusyChargesExactCycles) {
  auto& c = app_.add_class("C");
  c.add_static_method("f", 0).body(IrBuilder()
                                       .const_val(Value(std::int64_t{100'000}))
                                       .intrinsic("busy", 1)
                                       .ret_void()
                                       .build());
  auto ctx = make_ctx();
  const Cycles t0 = env_.clock.now();
  ctx.invoke_static("C", "f", {});
  EXPECT_GE(env_.clock.now() - t0, 100'000u);
}

TEST_F(InterpTest, IoIntrinsicsWriteAndReadViaService) {
  auto& c = app_.add_class("C");
  c.add_static_method("w", 0).body(IrBuilder()
                                       .const_val(Value("f.dat"))
                                       .const_val(Value(std::int64_t{4096}))
                                       .intrinsic("io_write", 2)
                                       .ret()
                                       .build());
  auto ctx = make_ctx();
  EXPECT_EQ(ctx.invoke_static("C", "w", {}).as_i64(), 4096);
  EXPECT_TRUE(env_.fs->exists("f.dat"));
  EXPECT_EQ(io_.stats().writes, 1u);
}

TEST_F(InterpTest, StringIntrinsics) {
  auto& c = app_.add_class("C");
  c.add_static_method("f", 0).body(IrBuilder()
                                       .const_val(Value("foo"))
                                       .const_val(Value("bar"))
                                       .intrinsic("str_concat", 2)
                                       .ret()
                                       .build());
  auto ctx = make_ctx();
  EXPECT_EQ(ctx.invoke_static("C", "f", {}).as_string(), "foobar");
}

TEST_F(InterpTest, UnknownIntrinsicThrows) {
  auto& c = app_.add_class("C");
  c.add_static_method("f", 0).body(
      IrBuilder().intrinsic("warp_drive", 0).ret_void().build());
  auto ctx = make_ctx();
  EXPECT_THROW(ctx.invoke_static("C", "f", {}), RuntimeFault);
}

TEST_F(InterpTest, CustomIntrinsicsCanBeRegistered) {
  auto& c = app_.add_class("C");
  c.add_static_method("f", 0).body(
      IrBuilder().intrinsic("answer", 0).ret().build());
  IntrinsicTable table = IntrinsicTable::defaults();
  table.add("answer", [](ExecContext&, std::vector<Value>&) {
    return Value(std::int32_t{42});
  });
  ExecContext ctx(env_, iso_, app_, io_, std::move(table));
  EXPECT_EQ(ctx.invoke_static("C", "f", {}).as_i32(), 42);
}

// ---- shim ------------------------------------------------------------------

class ShimTest : public ::testing::Test {
 protected:
  ShimTest()
      : untrusted_(env_),
        enclave_(env_, "e", Sha256::hash("img"), 4096),
        host_(env_, untrusted_) {
    enclave_.init(Sha256::hash("img"));
    trusted_ = std::make_unique<sgx::EnclaveDomain>(env_, enclave_);
    bridge_ = std::make_unique<sgx::TransitionBridge>(env_, enclave_);
    shim_ = std::make_unique<shim::EnclaveShim>(env_, *bridge_, host_,
                                                *trusted_);
    shim_->register_ocalls();
  }

  // Runs `fn` "inside the enclave" through a test ecall.
  void in_enclave(const std::function<void()>& fn) {
    if (!bridge_->has_ecall("test_enter")) {
      test_enter_id_ = bridge_->register_ecall("test_enter", [this](ByteReader&) {
        (*pending_)();
        return ByteBuffer();
      });
    }
    pending_ = &fn;
    ByteBuffer resp;
    bridge_->ecall(test_enter_id_, ByteBuffer(), resp);
    pending_ = nullptr;
  }

  Env env_;
  UntrustedDomain untrusted_;
  sgx::Enclave enclave_;
  shim::HostIo host_;
  std::unique_ptr<sgx::EnclaveDomain> trusted_;
  std::unique_ptr<sgx::TransitionBridge> bridge_;
  std::unique_ptr<shim::EnclaveShim> shim_;
  const std::function<void()>* pending_ = nullptr;
  sgx::CallId test_enter_id_ = sgx::kNoCallId;
};

TEST_F(ShimTest, FileRoundTripThroughOcalls) {
  in_enclave([&] {
    const auto f = shim_->open("secret.bin", vfs::OpenMode::kWrite);
    shim_->write(f, "classified", 10);
    shim_->flush(f);
    shim_->close(f);
  });
  // The data landed in the *untrusted* filesystem via the helper.
  EXPECT_TRUE(env_.fs->exists("secret.bin"));
  EXPECT_EQ(env_.fs->file_size("secret.bin"), 10u);

  in_enclave([&] {
    const auto f = shim_->open("secret.bin", vfs::OpenMode::kRead);
    char buf[16] = {};
    EXPECT_EQ(shim_->read(f, buf, sizeof(buf)), 10u);
    EXPECT_STREQ(buf, "classified");
    shim_->close(f);
  });
  EXPECT_GE(bridge_->stats().ocalls, 7u);
}

TEST_F(ShimTest, MetadataCallsRelayed) {
  env_.fs->open("a.txt", vfs::OpenMode::kWrite)->write("xy", 2);
  in_enclave([&] {
    EXPECT_TRUE(shim_->exists("a.txt"));
    EXPECT_FALSE(shim_->exists("b.txt"));
    EXPECT_EQ(shim_->file_size("a.txt"), 2u);
    EXPECT_EQ(shim_->list("a").size(), 1u);
    shim_->remove("a.txt");
  });
  EXPECT_FALSE(env_.fs->exists("a.txt"));
}

TEST_F(ShimTest, ShimCallsOutsideEnclaveFault) {
  EXPECT_THROW(shim_->open("x", vfs::OpenMode::kWrite), SecurityFault)
      << "the shim's ocalls only work from the trusted side";
}

TEST_F(ShimTest, MappedReadsFetchPagesViaOcalls) {
  {
    auto f = env_.fs->open("data.bin", vfs::OpenMode::kWrite);
    const std::vector<std::uint8_t> content(20'000, 0x7e);
    f->write(content.data(), content.size());
  }
  in_enclave([&] {
    auto map = shim_->map("data.bin");
    std::uint8_t buf[64];
    map->read(0, buf, sizeof(buf));
    EXPECT_EQ(buf[0], 0x7e);
    map->read(15'000, buf, sizeof(buf));  // another page
    EXPECT_EQ(map->pages_touched(), 2u);
  });
  EXPECT_EQ(bridge_->stats().per_call.at("ocall_mmap_fetch").calls, 2u);
}

TEST_F(ShimTest, MappedReadOutOfRangeThrows) {
  env_.fs->open("tiny.bin", vfs::OpenMode::kWrite)->write("ab", 2);
  in_enclave([&] {
    auto map = shim_->map("tiny.bin");
    std::uint8_t buf[8];
    EXPECT_THROW(map->read(0, buf, 8), RuntimeFault);
  });
}

TEST_F(ShimTest, HostIoRejectsClosedFile) {
  const auto f = host_.open("h.bin", vfs::OpenMode::kWrite);
  host_.close(f);
  char c;
  EXPECT_THROW(host_.read(f, &c, 1), RuntimeFault);
}

TEST_F(ShimTest, StatsTrackBytes) {
  const auto f = host_.open("s.bin", vfs::OpenMode::kWrite);
  host_.write(f, "12345", 5);
  host_.close(f);
  EXPECT_EQ(host_.stats().bytes_written, 5u);
  EXPECT_EQ(host_.stats().writes, 1u);
  EXPECT_EQ(host_.stats().opens, 1u);
}

}  // namespace
}  // namespace msv
