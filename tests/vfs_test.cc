// Tests for src/vfs: in-memory and real filesystems.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "support/error.h"
#include "vfs/fs.h"

namespace msv::vfs {
namespace {

TEST(MemFs, WriteThenRead) {
  MemFs fs;
  {
    auto f = fs.open("a.bin", OpenMode::kWrite);
    f->write("hello", 5);
  }
  EXPECT_TRUE(fs.exists("a.bin"));
  EXPECT_EQ(fs.file_size("a.bin"), 5u);
  auto f = fs.open("a.bin", OpenMode::kRead);
  char buf[8] = {};
  EXPECT_EQ(f->read(buf, 8), 5u);
  EXPECT_STREQ(buf, "hello");
  EXPECT_EQ(f->read(buf, 8), 0u) << "EOF reached";
}

TEST(MemFs, OpenMissingFileForReadThrows) {
  MemFs fs;
  EXPECT_THROW(fs.open("missing", OpenMode::kRead), RuntimeFault);
  EXPECT_THROW(fs.file_size("missing"), RuntimeFault);
  EXPECT_THROW(fs.remove("missing"), RuntimeFault);
}

TEST(MemFs, WriteTruncates) {
  MemFs fs;
  fs.open("f", OpenMode::kWrite)->write("0123456789", 10);
  fs.open("f", OpenMode::kWrite)->write("ab", 2);
  EXPECT_EQ(fs.file_size("f"), 2u);
}

TEST(MemFs, AppendPositionsAtEnd) {
  MemFs fs;
  fs.open("f", OpenMode::kWrite)->write("abc", 3);
  fs.open("f", OpenMode::kAppend)->write("def", 3);
  auto data = fs.map("f");
  EXPECT_EQ(std::string(data->begin(), data->end()), "abcdef");
}

TEST(MemFs, SeekAndOverwrite) {
  MemFs fs;
  auto f = fs.open("f", OpenMode::kReadWrite);
  f->write("aaaaaa", 6);
  f->seek(2);
  f->write("XX", 2);
  f->seek(0);
  char buf[7] = {};
  f->read(buf, 6);
  EXPECT_STREQ(buf, "aaXXaa");
}

TEST(MemFs, SparseWriteExtends) {
  MemFs fs;
  auto f = fs.open("f", OpenMode::kWrite);
  f->seek(100);
  f->write("x", 1);
  EXPECT_EQ(f->size(), 101u);
}

TEST(MemFs, ListByPrefix) {
  MemFs fs;
  fs.open("shard.0", OpenMode::kWrite);
  fs.open("shard.1", OpenMode::kWrite);
  fs.open("other", OpenMode::kWrite);
  const auto shards = fs.list("shard.");
  EXPECT_EQ(shards.size(), 2u);
}

TEST(MemFs, MapSurvivesRemove) {
  MemFs fs;
  fs.open("f", OpenMode::kWrite)->write("data", 4);
  auto snapshot = fs.map("f");
  fs.remove("f");
  EXPECT_FALSE(fs.exists("f"));
  EXPECT_EQ(snapshot->size(), 4u);
}

TEST(MemFs, ReadOnlyHandleRejectsWrite) {
  MemFs fs;
  fs.open("f", OpenMode::kWrite)->write("x", 1);
  auto f = fs.open("f", OpenMode::kRead);
  EXPECT_THROW(f->write("y", 1), RuntimeFault);
}

TEST(MemFs, TotalBytes) {
  MemFs fs;
  fs.open("a", OpenMode::kWrite)->write("xx", 2);
  fs.open("b", OpenMode::kWrite)->write("yyy", 3);
  EXPECT_EQ(fs.total_bytes(), 5u);
}

class RealFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "msv_realfs_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(RealFsTest, WriteReadRoundTrip) {
  RealFs fs;
  {
    auto f = fs.open(path("t.bin"), OpenMode::kWrite);
    f->write("realdata", 8);
  }
  EXPECT_TRUE(fs.exists(path("t.bin")));
  EXPECT_EQ(fs.file_size(path("t.bin")), 8u);
  auto data = fs.map(path("t.bin"));
  EXPECT_EQ(std::string(data->begin(), data->end()), "realdata");
  fs.remove(path("t.bin"));
  EXPECT_FALSE(fs.exists(path("t.bin")));
}

TEST_F(RealFsTest, SeekTellSize) {
  RealFs fs;
  auto f = fs.open(path("s.bin"), OpenMode::kWrite);
  f->write("0123456789", 10);
  EXPECT_EQ(f->tell(), 10u);
  EXPECT_EQ(f->size(), 10u);
  f->seek(4);
  EXPECT_EQ(f->tell(), 4u);
}

TEST_F(RealFsTest, ListByPrefix) {
  RealFs fs;
  fs.open(path("pre.0"), OpenMode::kWrite)->write("a", 1);
  fs.open(path("pre.1"), OpenMode::kWrite)->write("b", 1);
  fs.open(path("zzz"), OpenMode::kWrite)->write("c", 1);
  EXPECT_EQ(fs.list(path("pre.")).size(), 2u);
}

}  // namespace
}  // namespace msv::vfs
