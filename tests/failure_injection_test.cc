// Failure-injection tests: exceptions and resource exhaustion in the
// middle of cross-enclave operations must leave the system in a
// consistent state (side stack unwound, registries coherent, later calls
// unaffected).
#include <gtest/gtest.h>

#include "apps/illustrative/bank.h"
#include "apps/synthetic/generator.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

using core::AppConfig;
using core::PartitionedApp;
using rt::Value;

model::AppModel faulty_app() {
  model::AppModel app;
  auto& svc = app.add_class("Service", model::Annotation::kTrusted);
  svc.add_field("calls");
  svc.add_constructor(0).body_native([](model::NativeCall& call) {
    call.isolate.set_field(call.self, 0, Value(std::int32_t{0}));
    return Value();
  });
  svc.add_method("work", 1).body_native([](model::NativeCall& call) {
    call.isolate.set_field(
        call.self, 0,
        Value(call.isolate.get_field(call.self, 0).as_i32() + 1));
    if (call.args[0].as_bool()) {
      throw RuntimeFault("injected failure inside the enclave");
    }
    return call.isolate.get_field(call.self, 0);
  });
  svc.add_method("allocate", 1).body_native([](model::NativeCall& call) {
    // Pins memory until OOM when asked for too much.
    std::vector<rt::GcRef> pins;
    const std::int64_t n = call.args[0].as_i64();
    for (std::int64_t i = 0; i < n; ++i) {
      pins.push_back(call.isolate.make_ref(
          call.isolate.heap().alloc_string(std::string(1024, 'x'))));
    }
    return Value(static_cast<std::int64_t>(pins.size()));
  });

  auto& main_cls = app.add_class("Main", model::Annotation::kUntrusted);
  main_cls.add_static_method("main", 0)
      .body(model::IrBuilder()
                .new_object("Service", 0)
                .const_val(Value(false))
                .call("work", 1)
                .pop()
                .ret_void()
                .build());
  app.set_main_class("Main");
  return app;
}

TEST(FailureInjection, ExceptionInsideRelayPropagatesToCaller) {
  PartitionedApp app(faulty_app());
  auto& u = app.untrusted_context();
  const Value svc = u.construct("Service", {});
  EXPECT_THROW(u.invoke(svc.as_ref(), "work", {Value(true)}), RuntimeFault);
}

TEST(FailureInjection, BridgeStateSurvivesEnclaveException) {
  PartitionedApp app(faulty_app());
  auto& u = app.untrusted_context();
  const Value svc = u.construct("Service", {});
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(u.invoke(svc.as_ref(), "work", {Value(true)}), RuntimeFault);
  }
  // The side stack unwound each time: normal calls still work, and the
  // mirror observed every attempt (the failure happened after the bump).
  EXPECT_EQ(u.invoke(svc.as_ref(), "work", {Value(false)}).as_i32(), 6);
  EXPECT_EQ(app.bridge().side(), Side::kUntrusted);
}

TEST(FailureInjection, RegistryConsistentAfterFailedCalls) {
  PartitionedApp app(faulty_app());
  auto& u = app.untrusted_context();
  const Value svc = u.construct("Service", {});
  const std::size_t mirrors = app.rmi().registry(Side::kTrusted).size();
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(u.invoke(svc.as_ref(), "work", {Value(true)}), RuntimeFault);
  }
  EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), mirrors)
      << "failed invocations neither leak nor drop mirrors";
  u.isolate().heap().collect();
  app.rmi().force_gc_scan();
  EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), mirrors)
      << "svc is still alive; its mirror must survive the scan";
}

TEST(FailureInjection, EnclaveHeapExhaustionReportedNotFatal) {
  AppConfig config;
  config.trusted_heap_bytes = 1 << 20;  // 1 MB enclave heap
  PartitionedApp app(faulty_app(), config);
  auto& u = app.untrusted_context();
  const Value svc = u.construct("Service", {});
  // ~8 MB of pinned allocations cannot fit.
  EXPECT_THROW(u.invoke(svc.as_ref(), "allocate", {Value(std::int64_t{8000})}),
               rt::OutOfMemoryError);
  // The enclave survives: unpinned allocations are collectable, so a
  // normal call succeeds afterwards.
  EXPECT_EQ(u.invoke(svc.as_ref(), "work", {Value(false)}).as_i32(), 1);
}

TEST(FailureInjection, MissingMirrorIsDiagnosed) {
  // Simulates the §5.5 hazard the GC helper exists to prevent: an RMI on
  // a proxy whose mirror was (wrongly) evicted must fail loudly, not
  // corrupt state.
  PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const Value w = u.construct("Worker", {});
  // Force-evict the mirror behind the runtime's back.
  const std::int64_t hash = u.isolate().get_field(w.as_ref(), 0).as_i64();
  ByteBuffer payload;
  payload.put_varint(1);
  payload.put_i64(hash);
  ByteBuffer evict_resp;
  app.bridge().ecall(app.bridge().ecall_id("ecall_gc_evict_mirrors"), payload,
                     evict_resp);
  EXPECT_THROW(u.invoke(w.as_ref(), "set", {Value(std::int32_t{1})}),
               RuntimeFault);
}

TEST(FailureInjection, OcallFailurePropagatesThroughShim) {
  // An in-enclave writer hitting a host-side I/O error (missing file) gets
  // the fault through the ocall chain and can continue afterwards.
  core::UnpartitionedApp app(apps::build_bank_app());
  const Value ok = app.run_in_enclave([](interp::ExecContext& ctx) {
    try {
      ctx.io().open("no/such/dir/file", vfs::OpenMode::kRead);
      return Value(false);
    } catch (const RuntimeFault&) {
      return Value(true);  // saw the failure, still alive
    }
  });
  EXPECT_TRUE(ok.as_bool());
  EXPECT_EQ(app.bridge().side(), Side::kUntrusted);
}

}  // namespace
}  // namespace msv
