// Property-based tests (parameterized sweeps over seeds/configurations).
//
// Each suite checks an invariant against a shadow model under randomized
// operation sequences:
//   * HeapFuzz      — GC preserves exactly the reachable object graph.
//   * WireFuzz      — wire encoding round-trips arbitrary neutral values.
//   * PaldbFuzz     — the store returns exactly what was put.
//   * RmiConsistency— partitioned bank state matches an in-process shadow
//                     ledger under random transfers, drops, GCs and scans.
#include <gtest/gtest.h>

#include <map>

#include "apps/illustrative/bank.h"
#include "apps/paldb/store.h"
#include "core/montsalvat.h"
#include "rmi/wire.h"
#include "shim/host_io.h"
#include "support/rng.h"

namespace msv {
namespace {

using rt::Value;

// ---- HeapFuzz --------------------------------------------------------------

class HeapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapFuzz, CollectionPreservesReachableGraph) {
  Rng rng(GetParam());
  Env env;
  UntrustedDomain domain(env);
  rt::Isolate iso(env, domain, rt::Isolate::Config{"fuzz", 4 << 20});

  // Shadow model: rooted objects with (int value, optional child index).
  struct Node {
    rt::GcRef ref;
    std::int32_t value;
    int child;  // index into nodes, -1 for none
  };
  std::vector<Node> nodes;

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 45 || nodes.empty()) {
      // Allocate a rooted node.
      const auto value = static_cast<std::int32_t>(rng.next_u64());
      const rt::GcRef ref = iso.new_instance(1, 2);
      iso.set_field(ref, 0, Value(value));
      int child = -1;
      if (!nodes.empty() && rng.next_bool(0.5)) {
        child = static_cast<int>(rng.next_below(nodes.size()));
        iso.set_field(ref, 1, Value(nodes[child].ref));
      }
      nodes.push_back(Node{ref, value, child});
    } else if (op < 70) {
      // Allocate garbage.
      iso.heap().alloc_string(std::string(rng.next_below(200), 'g'));
    } else if (op < 85 && nodes.size() > 1) {
      // Drop a root that nobody links to, keeping the shadow exact.
      const std::size_t victim = rng.next_below(nodes.size());
      bool linked = false;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i != victim && nodes[i].child == static_cast<int>(victim)) {
          linked = true;
        }
      }
      if (!linked) {
        nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(victim));
        for (auto& n : nodes) {
          if (n.child > static_cast<int>(victim)) --n.child;
        }
      }
    } else {
      iso.heap().collect();
    }
  }
  iso.heap().collect();

  // Every shadow node must still hold its value and child link.
  for (const auto& n : nodes) {
    EXPECT_EQ(iso.get_field(n.ref, 0).as_i32(), n.value);
    if (n.child >= 0) {
      EXPECT_TRUE(iso.get_field(n.ref, 1)
                      .as_ref()
                      .same_object(nodes[n.child].ref));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- WireFuzz --------------------------------------------------------------

Value random_neutral_value(Rng& rng, int depth = 0) {
  switch (depth < 3 ? rng.next_below(6) : rng.next_below(5)) {
    case 0:
      return Value();
    case 1:
      return Value(rng.next_bool(0.5));
    case 2:
      return Value(static_cast<std::int32_t>(rng.next_u64()));
    case 3:
      return Value(rng.next_double() * 1e6);
    case 4: {
      std::string s(rng.next_below(40), ' ');
      for (auto& c : s) c = static_cast<char>('!' + rng.next_below(90));
      return Value(std::move(s));
    }
    default: {
      rt::ValueList list(rng.next_below(6));
      for (auto& e : list) e = random_neutral_value(rng, depth + 1);
      return Value(std::move(list));
    }
  }
}

bool values_equal(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case rt::ValueType::kNull:
      return true;
    case rt::ValueType::kBool:
      return a.as_bool() == b.as_bool();
    case rt::ValueType::kI32:
      return a.as_i32() == b.as_i32();
    case rt::ValueType::kI64:
      return a.as_i64() == b.as_i64();
    case rt::ValueType::kF64:
      return a.as_f64() == b.as_f64();
    case rt::ValueType::kString:
      return a.as_string() == b.as_string();
    case rt::ValueType::kList: {
      if (a.as_list().size() != b.as_list().size()) return false;
      for (std::size_t i = 0; i < a.as_list().size(); ++i) {
        if (!values_equal(a.as_list()[i], b.as_list()[i])) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, NeutralValuesRoundTrip) {
  Rng rng(GetParam());
  const rmi::RefEncoder no_enc = [](ByteBuffer&, const rt::GcRef&) {
    FAIL() << "neutral values only";
  };
  const rmi::RefDecoder no_dec = [](ByteReader&, rmi::WireTag) -> Value {
    throw RuntimeFault("neutral values only");
  };
  for (int i = 0; i < 300; ++i) {
    const Value original = random_neutral_value(rng);
    ByteBuffer buf;
    rmi::encode_value(buf, original, no_enc);
    ByteReader r(buf);
    const Value decoded = rmi::decode_value(r, no_dec);
    EXPECT_TRUE(values_equal(original, decoded))
        << original.to_debug_string() << " != " << decoded.to_debug_string();
    EXPECT_TRUE(r.done());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---- PaldbFuzz -------------------------------------------------------------

struct PaldbParam {
  std::uint64_t seed;
  int keys;
};

class PaldbFuzz : public ::testing::TestWithParam<PaldbParam> {};

TEST_P(PaldbFuzz, StoreReturnsExactlyWhatWasPut) {
  Rng rng(GetParam().seed);
  Env env;
  UntrustedDomain domain(env);
  shim::HostIo io(env, domain);

  std::map<std::string, std::string> shadow;
  {
    apps::paldb::StoreWriter writer(env, io, "fuzz.paldb");
    while (static_cast<int>(shadow.size()) < GetParam().keys) {
      std::string key(1 + rng.next_below(24), ' ');
      for (auto& c : key) c = static_cast<char>('a' + rng.next_below(26));
      if (shadow.count(key)) continue;  // write-once store
      std::string value(rng.next_below(300), ' ');
      for (auto& c : value) c = static_cast<char>('0' + rng.next_below(75));
      writer.put(key, value);
      shadow.emplace(std::move(key), std::move(value));
    }
    writer.close();
  }

  apps::paldb::StoreReader reader(env, io, "fuzz.paldb");
  EXPECT_EQ(reader.key_count(), shadow.size());
  for (const auto& [key, value] : shadow) {
    const auto got = reader.get(key);
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(*got, value);
  }
  // Keys not in the shadow are absent.
  for (int i = 0; i < 50; ++i) {
    std::string key = "missing-" + std::to_string(rng.next_u64());
    EXPECT_FALSE(reader.get(key).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaldbFuzz,
    ::testing::Values(PaldbParam{101, 1}, PaldbParam{102, 17},
                      PaldbParam{103, 200}, PaldbParam{104, 1500},
                      PaldbParam{105, 400}));

// ---- RmiConsistency --------------------------------------------------------

struct RmiParam {
  std::uint64_t seed;
  rmi::HashScheme scheme;
};

class RmiConsistency : public ::testing::TestWithParam<RmiParam> {};

TEST_P(RmiConsistency, PartitionedStateMatchesShadowLedger) {
  Rng rng(GetParam().seed);
  core::AppConfig config;
  config.hash_scheme = GetParam().scheme;
  config.gc_scan_period_seconds = 0.01;
  core::PartitionedApp app(apps::build_bank_app(), config);
  auto& u = app.untrusted_context();

  struct Shadow {
    Value person;
    std::int32_t balance;
  };
  std::vector<Shadow> people;

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 30 || people.size() < 2) {
      const auto start = static_cast<std::int32_t>(rng.next_below(1000));
      people.push_back(Shadow{
          u.construct("Person",
                      {Value("p" + std::to_string(step)), Value(start)}),
          start});
    } else if (op < 75) {
      const std::size_t a = rng.next_below(people.size());
      const std::size_t b = rng.next_below(people.size());
      if (a == b) continue;
      const auto amount = static_cast<std::int32_t>(rng.next_below(50));
      u.invoke(people[a].person.as_ref(), "transfer",
               {people[b].person, Value(amount)});
      people[a].balance -= amount;
      people[b].balance += amount;
    } else if (op < 90 && people.size() > 2) {
      people.erase(people.begin() +
                   static_cast<std::ptrdiff_t>(rng.next_below(people.size())));
    } else {
      u.isolate().heap().collect();
      app.rmi().force_gc_scan();
    }
  }

  // Ledger check through the public API.
  for (const auto& p : people) {
    const Value acct = u.invoke(p.person.as_ref(), "getAccount", {});
    EXPECT_EQ(u.invoke(acct.as_ref(), "getBalance", {}).as_i32(), p.balance);
  }

  // GC consistency: after a final collect+scan, the enclave registry holds
  // exactly one Account mirror per live Person (no registry entries leak,
  // none vanish early).
  u.isolate().heap().collect();
  app.rmi().force_gc_scan();
  // Account proxies may be cached per Person; count distinct live ones.
  EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), people.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RmiConsistency,
    ::testing::Values(RmiParam{7, rmi::HashScheme::kMd5},
                      RmiParam{8, rmi::HashScheme::kMd5},
                      RmiParam{9, rmi::HashScheme::kMd5},
                      RmiParam{10, rmi::HashScheme::kIdentityHash},
                      RmiParam{11, rmi::HashScheme::kIdentityHash}));

}  // namespace
}  // namespace msv
