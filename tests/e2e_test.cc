// End-to-end tests: the full Montsalvat pipeline on the paper's
// illustrative application (Listing 1), covering proxy construction in
// both directions, remote method invocation, parameter passing by hash,
// neutral-value serialization, GC synchronisation (§5.5), and the
// unpartitioned/native modes (§5.6).
#include <gtest/gtest.h>

#include "apps/illustrative/bank.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

using core::AppConfig;
using core::NativeApp;
using core::PartitionedApp;
using core::UnpartitionedApp;
using rt::Value;

TEST(PartitionedBank, MainRunsListing1) {
  PartitionedApp app(apps::build_bank_app());
  app.run_main();
  // main created: 2 Persons -> 2 Account mirrors + 1 AccountRegistry
  // mirror in the enclave registry.
  EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), 3u);
  EXPECT_GT(app.bridge().stats().ecalls, 0u);
}

TEST(PartitionedBank, TransferUpdatesEnclaveState) {
  PartitionedApp app(apps::build_bank_app());
  auto& u = app.untrusted_context();

  const Value alice = u.construct("Person", {Value("Alice"), Value(std::int32_t{100})});
  const Value bob = u.construct("Person", {Value("Bob"), Value(std::int32_t{25})});
  u.invoke(alice.as_ref(), "transfer", {bob, Value(std::int32_t{25})});

  const Value alice_acct = u.invoke(alice.as_ref(), "getAccount", {});
  const Value bob_acct = u.invoke(bob.as_ref(), "getAccount", {});
  EXPECT_TRUE(u.class_of(alice_acct.as_ref()).is_proxy());
  EXPECT_EQ(u.invoke(alice_acct.as_ref(), "getBalance", {}).as_i32(), 75);
  EXPECT_EQ(u.invoke(bob_acct.as_ref(), "getBalance", {}).as_i32(), 50);
  // The string crossed the boundary by serialization.
  EXPECT_EQ(u.invoke(alice_acct.as_ref(), "getOwner", {}).as_string(), "Alice");
}

TEST(PartitionedBank, ProxyHashRoundTripPreservesIdentity) {
  PartitionedApp app(apps::build_bank_app());
  auto& u = app.untrusted_context();

  const Value p = u.construct("Person", {Value("P"), Value(std::int32_t{10})});
  // getAccount twice: the same mirror must come back as the same proxy
  // object (materialization is cached per hash).
  const Value a1 = u.invoke(p.as_ref(), "getAccount", {});
  const Value a2 = u.invoke(p.as_ref(), "getAccount", {});
  EXPECT_TRUE(a1.as_ref().same_object(a2.as_ref()));

  // Passing the proxy back in: registry must not grow (the hash resolves
  // to the existing mirror, §5.2's addAccount flow).
  const Value reg = u.construct("AccountRegistry", {});
  const std::size_t mirrors_before = app.rmi().registry(Side::kTrusted).size();
  u.invoke(reg.as_ref(), "addAccount", {a1});
  EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), mirrors_before);
  EXPECT_EQ(u.invoke(reg.as_ref(), "count", {}).as_i32(), 1);
  EXPECT_EQ(u.invoke(reg.as_ref(), "totalBalance", {}).as_i32(), 10);
}

AppConfig vault_config() {
  // Vault is driven by the host directly (not from main): root its proxy
  // in the untrusted image, GraalVM-reflection-config style.
  AppConfig config;
  config.extra_entry_points = {{"Vault", model::kConstructorName}};
  return config;
}

TEST(PartitionedBank, EnclaveToUntrustedDirection) {
  PartitionedApp app(apps::build_bank_app(/*with_audit=*/true),
                     vault_config());
  auto& u = app.untrusted_context();

  // Vault is trusted; constructing it ecalls in. Its constructor builds an
  // untrusted Logger (ocall back out), and audit() drives it remotely.
  const Value vault = u.construct("Vault", {});
  u.invoke(vault.as_ref(), "audit", {Value("key-rotation")});
  u.invoke(vault.as_ref(), "audit", {Value("login")});
  EXPECT_EQ(u.invoke(vault.as_ref(), "auditCount", {}).as_i32(), 2);

  // The log file was written by the *untrusted* side's real libc.
  EXPECT_TRUE(app.env().fs->exists("audit.log"));
  EXPECT_EQ(app.rmi().registry(Side::kUntrusted).size(), 1u)
      << "the Logger mirror lives in the untrusted registry";
  EXPECT_GT(app.bridge().stats().ocalls, 0u);
}

TEST(PartitionedBank, GcEvictsMirrorsOfDeadProxies) {
  AppConfig config;
  config.gc_scan_period_seconds = 0.001;
  PartitionedApp app(apps::build_bank_app(), config);
  auto& u = app.untrusted_context();

  {
    std::vector<Value> persons;
    for (int i = 0; i < 50; ++i) {
      persons.push_back(u.construct(
          "Person", {Value("p" + std::to_string(i)), Value(std::int32_t{i})}));
    }
    EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), 50u);
  }
  // Proxies are now unreferenced. Collect the untrusted heap, then let the
  // GC helper scan and evict.
  u.isolate().heap().collect();
  app.rmi().force_gc_scan();
  EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), 0u);
  EXPECT_GT(app.rmi().gc_stats(Side::kUntrusted).proxies_collected, 0u);
}

TEST(PartitionedBank, LiveProxiesKeepTheirMirrors) {
  PartitionedApp app(apps::build_bank_app());
  auto& u = app.untrusted_context();

  const Value keeper =
      u.construct("Person", {Value("keeper"), Value(std::int32_t{1})});
  {
    const Value doomed =
        u.construct("Person", {Value("doomed"), Value(std::int32_t{2})});
    (void)doomed;
  }
  u.isolate().heap().collect();
  app.rmi().force_gc_scan();
  // keeper's Account mirror survives; doomed's is gone.
  EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), 1u);
  EXPECT_EQ(u.invoke(u.invoke(keeper.as_ref(), "getAccount", {}).as_ref(),
                     "getBalance", {})
                .as_i32(),
            1);
}

TEST(PartitionedBank, GcHelperInTrustedRuntimeEvictsUntrustedMirrors) {
  PartitionedApp app(apps::build_bank_app(/*with_audit=*/true),
                     vault_config());
  auto& u = app.untrusted_context();
  auto& t = app.trusted_context();

  {
    const Value vault = u.construct("Vault", {});
    u.invoke(vault.as_ref(), "audit", {Value("x")});
    EXPECT_EQ(app.rmi().registry(Side::kUntrusted).size(), 1u);
  }
  // Drop the vault: its mirror (and the Logger proxy the mirror holds)
  // die in the enclave after eviction + trusted GC.
  u.isolate().heap().collect();
  app.rmi().force_gc_scan();          // untrusted helper evicts Vault mirror
  t.isolate().heap().collect();       // Logger proxy dies in the enclave
  app.rmi().force_gc_scan();          // trusted helper evicts Logger mirror
  EXPECT_EQ(app.rmi().registry(Side::kUntrusted).size(), 0u);
  EXPECT_EQ(app.rmi().registry(Side::kTrusted).size(), 0u);
}

TEST(PartitionedBank, ProxyCreationCountsAndBridgeTraffic) {
  PartitionedApp app(apps::build_bank_app());
  auto& u = app.untrusted_context();
  const auto ecalls_before = app.bridge().stats().ecalls;
  u.construct("Person", {Value("A"), Value(std::int32_t{1})});
  // Person is local; its constructor creates exactly one Account proxy ->
  // one ecall (the constructor relay).
  EXPECT_EQ(app.bridge().stats().ecalls, ecalls_before + 1);
  EXPECT_EQ(app.rmi().stats().proxies_created, 1u);
}

TEST(PartitionedBank, TcbReportCountsOnlyTrustedSide) {
  PartitionedApp app(apps::build_bank_app());
  const core::TcbReport tcb = app.tcb_report();
  EXPECT_GT(tcb.app_code_bytes, 0u);
  EXPECT_GT(tcb.edl_functions, 10u);  // relays + shim + gc helpers
  EXPECT_EQ(tcb.shim_bytes, shim::EnclaveShim::shim_code_bytes());
  // The TCB is dominated by the embedded runtime, not a library OS.
  EXPECT_LT(tcb.total_bytes(), 16ull << 20);
}

TEST(PartitionedBank, EdgeRoutinesGenerated) {
  PartitionedApp app(apps::build_bank_app());
  EXPECT_GT(app.edge_routines().routine_count, 20u);
  EXPECT_NE(app.edge_routines().trusted_source.find(
                "ecall_relay_Account_updateBalance"),
            std::string::npos);
  EXPECT_NE(app.edl().to_edl_text().find("ocall_fwrite"), std::string::npos);
}

TEST(PartitionedBank, SwitchlessRelaysReduceLatency) {
  auto run = [](bool switchless) {
    AppConfig config;
    config.switchless_relays = switchless;
    PartitionedApp app(apps::build_bank_app(), config);
    auto& u = app.untrusted_context();
    const Value p =
        u.construct("Person", {Value("A"), Value(std::int32_t{0})});
    const Value acct = u.invoke(p.as_ref(), "getAccount", {});
    const Cycles before = app.env().clock.now();
    for (int i = 0; i < 100; ++i) {
      u.invoke(acct.as_ref(), "updateBalance", {Value(std::int32_t{1})});
    }
    return app.env().clock.now() - before;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(UnpartitionedBank, RunsEntirelyInTheEnclave) {
  UnpartitionedApp app(apps::build_bank_app());
  app.run_main();
  // Everything is concrete inside one image: no proxies were involved.
  EXPECT_EQ(app.image().pruned_proxy_count, 0u);
  EXPECT_EQ(app.bridge().stats().ecalls, 1u) << "only ecall_main";
  EXPECT_TRUE(app.context().isolate().trusted());
}

TEST(UnpartitionedBank, IoRelaysThroughShim) {
  AppConfig config;
  // Vault is not reachable from main; root it explicitly (the GraalVM
  // reflection-config analog) so the test can drive it.
  config.extra_entry_points = {{"Vault", model::kConstructorName},
                               {"Vault", "audit"}};
  UnpartitionedApp app(apps::build_bank_app(/*with_audit=*/true), config);
  app.run_in_enclave([](interp::ExecContext& ctx) {
    const Value vault = ctx.construct("Vault", {});
    ctx.invoke(vault.as_ref(), "audit", {Value("inside")});
    return Value();
  });
  EXPECT_GT(app.bridge().stats().ocalls, 0u) << "file writes left the enclave";
  EXPECT_TRUE(app.env().fs->exists("audit.log"));
}

TEST(NativeBank, RunsWithoutSgx) {
  NativeApp app(apps::build_bank_app());
  app.run_main();
  EXPECT_FALSE(app.context().isolate().trusted());
  EXPECT_GT(app.now_seconds(), 0.0);
}

TEST(Comparison, PartitionedBeatsUnpartitionedOnUntrustedWork) {
  // An app whose heavy work lives in untrusted classes should run faster
  // partitioned (work outside) than unpartitioned (everything inside).
  auto build = [] {
    model::AppModel app;
    auto& worker = app.add_class("Worker", model::Annotation::kUntrusted);
    worker.add_field("dummy");
    worker.add_constructor(0).body(model::IrBuilder().ret_void().build());
    worker.add_method("crunch", 0)
        .body(model::IrBuilder()
                  .const_val(Value(std::int64_t{1}))
                  .intrinsic("compute_fft", 1)
                  .ret()
                  .build());
    auto& main_cls = app.add_class("Main", model::Annotation::kUntrusted);
    main_cls.add_static_method("main", 0)
        .body(model::IrBuilder()
                  .new_object("Worker", 0)
                  .call("crunch", 0)
                  .pop()
                  .ret_void()
                  .build());
    app.set_main_class("Main");
    return app;
  };

  PartitionedApp part(build());
  part.run_main();
  const double part_seconds = part.now_seconds();

  UnpartitionedApp unpart(build());
  unpart.run_main();
  const double unpart_seconds = unpart.now_seconds();

  EXPECT_LT(part_seconds, unpart_seconds);
}

TEST(Comparison, NativeIsFastestConfiguration) {
  const auto app_model = apps::build_bank_app();

  NativeApp native(app_model);
  native.run_main();

  PartitionedApp part(app_model);
  part.run_main();

  UnpartitionedApp unpart(app_model);
  unpart.run_main();

  EXPECT_LT(native.now_seconds(), part.now_seconds());
  EXPECT_LT(native.now_seconds(), unpart.now_seconds());
}

}  // namespace
}  // namespace msv
