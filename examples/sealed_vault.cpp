// Sealed storage + attestation: persisting enclave state across restarts.
//
// The §6.7 secure key-value store only matters if the vault's contents
// survive the process. This example runs the lifecycle:
//
//   1. first "boot": a remote party attests the enclave, provisions a
//      secret, and the enclave seals its state to untrusted disk;
//   2. restart: the *same* enclave (same measurement) unseals the state;
//   3. attack: a tampered image gets a different MRENCLAVE — EINIT-time
//      verification fails, and even a correctly-initialized different
//      enclave cannot unseal the blob.
//
//   ./examples/example_sealed_vault
#include <cstdio>

#include "core/montsalvat.h"
#include "sgx/sealing.h"
#include "support/stats.h"

namespace {

using namespace msv;

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

}  // namespace

int main() {
  std::puts("== Sealed vault lifecycle ==\n");

  Env env;
  const sgx::SealingPlatform platform("cpu-fuse-key");
  const sgx::QuotingEnclave qe("attestation-key");
  const Sha256::Digest good_image = Sha256::hash("vault-enclave-v1");

  // --- Boot 1: attest, provision, seal -----------------------------------
  std::vector<std::uint8_t> sealed_state;
  {
    sgx::Enclave vault(env, "vault", good_image, 1 << 20);
    vault.init(good_image);

    const auto quote =
        qe.quote(sgx::QuotingEnclave::create_report(vault, "session-pk"));
    const bool attested =
        sgx::QuotingEnclave::verify(quote, "attestation-key", good_image);
    std::printf("boot 1: attestation %s — provisioning the master key\n",
                attested ? "OK" : "FAILED");

    const auto blob =
        platform.seal(vault, bytes("master-key=0xdeadbeef; entries=42"), 7);
    sealed_state = blob.serialize();
    std::printf("boot 1: state sealed to untrusted disk (%s, MRENCLAVE %.*s…)\n",
                format_bytes(static_cast<double>(sealed_state.size())).c_str(),
                12, Sha256::hex(blob.mr_enclave).c_str());
  }

  // --- Boot 2: same enclave unseals ---------------------------------------
  {
    sgx::Enclave vault(env, "vault", good_image, 1 << 20);
    vault.init(good_image);
    const auto blob = sgx::SealedBlob::deserialize(sealed_state);
    const auto state = platform.unseal(vault, blob);
    std::printf("boot 2: unsealed %zu bytes: \"%s\"\n", state.size(),
                std::string(state.begin(), state.end()).c_str());
  }

  // --- Attacks -------------------------------------------------------------
  {
    // A tampered image never comes up: EINIT verifies the measurement.
    const Sha256::Digest evil_image = Sha256::hash("vault-enclave-v1+backdoor");
    sgx::Enclave tampered(env, "vault", evil_image, 1 << 20);
    try {
      tampered.init(good_image);
      std::puts("attack 1: tampered enclave initialized — BUG");
    } catch (const SecurityFault&) {
      std::puts("attack 1: tampered image rejected at EINIT (measurement "
                "mismatch)");
    }

    // A different (correctly built) enclave cannot unseal either.
    sgx::Enclave other(env, "other", evil_image, 1 << 20);
    other.init(evil_image);
    try {
      platform.unseal(other, sgx::SealedBlob::deserialize(sealed_state));
      std::puts("attack 2: foreign enclave unsealed the vault — BUG");
    } catch (const SecurityFault&) {
      std::puts("attack 2: foreign enclave cannot unseal (sealing policy "
                "binds to MRENCLAVE)");
    }

    // Bit-flipping the blob on untrusted disk is detected.
    auto corrupted = sealed_state;
    corrupted[corrupted.size() / 2] ^= 0x40;
    sgx::Enclave vault(env, "vault", good_image, 1 << 20);
    vault.init(good_image);
    try {
      platform.unseal(vault, sgx::SealedBlob::deserialize(corrupted));
      std::puts("attack 3: corrupted blob accepted — BUG");
    } catch (const SecurityFault&) {
      std::puts("attack 3: corrupted blob fails authentication");
    }
  }

  std::printf("\nSimulated time: %s\n", format_seconds(env.clock.seconds()).c_str());
  return 0;
}
