// Partitioned PalDB (§6.5): the RTWU scheme in action.
//
// Writes and reads a K/V store in the three interesting deployments and
// prints what the partitioning changes — run time, ocall counts, and where
// the I/O actually happened.
//
//   ./examples/example_paldb_partitioned
#include <cstdio>

#include "apps/paldb/model.h"
#include "core/montsalvat.h"
#include "support/stats.h"

int main() {
  using namespace msv;
  using apps::paldb::PaldbWorkload;
  using apps::paldb::Scheme;

  std::puts("== Partitioned PalDB (paper §6.5) ==\n");

  PaldbWorkload workload;
  workload.n_keys = 20'000;
  std::printf("Workload: %llu keys, %u-char values\n\n",
              static_cast<unsigned long long>(workload.n_keys),
              workload.value_length);

  // Everything in the enclave (§5.6).
  {
    core::UnpartitionedApp app(
        apps::paldb::build_paldb_app(Scheme::kUnpartitioned, workload));
    app.run_main();
    std::printf("NoPart      : %-10s  %6llu ocalls (every write leaves the "
                "enclave, every mapped page enters it)\n",
                format_seconds(app.now_seconds()).c_str(),
                static_cast<unsigned long long>(app.bridge().stats().ocalls));
  }

  // Reader trusted, writer untrusted — the winning scheme.
  {
    core::PartitionedApp app(apps::paldb::build_paldb_app(
        Scheme::kReaderTrustedWriterUntrusted, workload));
    app.run_main();
    std::printf("Part(RTWU)  : %-10s  %6llu ocalls (the untrusted DBWriter "
                "does plain I/O)\n",
                format_seconds(app.now_seconds()).c_str(),
                static_cast<unsigned long long>(app.bridge().stats().ocalls));
    std::printf("              trusted image: %zu classes (DBReader + "
                "DBWriter proxy), untrusted: %zu classes\n",
                app.trusted_image().class_count(),
                app.untrusted_image().class_count());
  }

  // Reader untrusted, writer trusted — the ocall storm.
  {
    core::PartitionedApp app(apps::paldb::build_paldb_app(
        Scheme::kReaderUntrustedWriterTrusted, workload));
    app.run_main();
    std::printf("Part(RUWT)  : %-10s  %6llu ocalls (the trusted DBWriter "
                "relays every put through the shim)\n",
                format_seconds(app.now_seconds()).c_str(),
                static_cast<unsigned long long>(app.bridge().stats().ocalls));
    const auto& per_call = app.bridge().stats().per_call;
    const auto it = per_call.find("ocall_fwrite");
    if (it != per_call.end()) {
      std::printf("              ocall_fwrite alone: %llu calls, %s out of "
                  "the enclave\n",
                  static_cast<unsigned long long>(it->second.calls),
                  format_bytes(static_cast<double>(it->second.bytes_in))
                      .c_str());
    }
  }

  std::puts(
      "\nPartitioning along the DBReader/DBWriter boundary lets each phase "
      "run where it is cheap:\nmmap reads stay near the data they protect, "
      "bulk writes never pay enclave transitions.");
  return 0;
}
