// Quickstart: the paper's illustrative application (Listing 1) end to end.
//
// Builds the annotated Account/AccountRegistry/Person/Main model, runs the
// full Montsalvat workflow (Fig. 1) — bytecode transformation, native
// image generation with reachability pruning, EDL + Edger8r bridge
// generation, measured enclave creation — and then drives the partitioned
// application, showing how trusted and untrusted objects interact through
// proxies while the GC helpers keep both heaps consistent.
//
//   ./examples/example_quickstart
#include <cstdio>

#include "apps/illustrative/bank.h"
#include "core/montsalvat.h"
#include "support/stats.h"

int main() {
  using namespace msv;

  std::puts("== Montsalvat quickstart: Listing 1 ==\n");

  // 1. The annotated application (what the Java developer writes).
  model::AppModel bank = apps::build_bank_app();
  std::puts("Annotated classes:");
  for (const auto& cls : bank.classes()) {
    std::printf("  %-16s %s\n", cls.name().c_str(),
                model::annotation_name(cls.annotation()));
  }

  // 2. The whole pipeline runs in the PartitionedApp constructor.
  core::PartitionedApp app(bank);

  std::printf("\nTrusted image:   %zu classes, %zu methods, %s (%zu proxies pruned)\n",
              app.trusted_image().class_count(),
              app.trusted_image().method_count(),
              format_bytes(static_cast<double>(app.trusted_image().total_bytes())).c_str(),
              app.trusted_image().pruned_proxy_count);
  std::printf("Untrusted image: %zu classes, %zu methods, %s\n",
              app.untrusted_image().class_count(),
              app.untrusted_image().method_count(),
              format_bytes(static_cast<double>(app.untrusted_image().total_bytes())).c_str());
  std::printf("MRENCLAVE:       %s\n",
              Sha256::hex(app.enclave().measurement()).c_str());

  // A fragment of the generated enclave definition language.
  std::puts("\nGenerated EDL (excerpt):");
  const std::string edl = app.edl().to_edl_text();
  std::printf("%s...\n", edl.substr(0, 540).c_str());

  // 3. Remote attestation before trusting the enclave (§4).
  sgx::QuotingEnclave qe("platform-key");
  const auto quote =
      qe.quote(sgx::QuotingEnclave::create_report(app.enclave(), "session"));
  std::printf("Attestation verifies: %s\n\n",
              sgx::QuotingEnclave::verify(quote, "platform-key",
                                          app.enclave().measurement())
                  ? "yes"
                  : "NO");

  // 4. Run main (Listing 1, lines 40-47), then drive the API by hand.
  app.run_main();
  auto& u = app.untrusted_context();

  const rt::Value alice =
      u.construct("Person", {rt::Value("Alice"), rt::Value(std::int32_t{100})});
  const rt::Value bob =
      u.construct("Person", {rt::Value("Bob"), rt::Value(std::int32_t{25})});
  u.invoke(alice.as_ref(), "transfer", {bob, rt::Value(std::int32_t{25})});

  const rt::Value alice_acct = u.invoke(alice.as_ref(), "getAccount", {});
  const rt::Value bob_acct = u.invoke(bob.as_ref(), "getAccount", {});
  std::puts("After p1.transfer(p2, 25):");
  std::printf("  Alice's balance (read through the Account proxy): %d\n",
              u.invoke(alice_acct.as_ref(), "getBalance", {}).as_i32());
  std::printf("  Bob's balance:                                    %d\n",
              u.invoke(bob_acct.as_ref(), "getBalance", {}).as_i32());

  std::printf("\nEnclave mirrors registered: %zu  (ecalls so far: %llu)\n",
              app.rmi().registry(Side::kTrusted).size(),
              static_cast<unsigned long long>(app.bridge().stats().ecalls));

  // 5. GC synchronisation (§5.5): drop the proxies and watch the mirrors go.
  std::puts("\nDropping all Person/Account references and collecting...");
  // (alice/bob still rooted by this scope; create + drop disposable ones)
  for (int i = 0; i < 100; ++i) {
    u.construct("Person", {rt::Value("tmp"), rt::Value(std::int32_t{1})});
  }
  u.isolate().heap().collect();
  app.rmi().force_gc_scan();
  std::printf("Mirrors after the GC helper's scan: %zu (the %d temporaries "
              "were evicted)\n",
              app.rmi().registry(Side::kTrusted).size(), 100);

  // 6. The small-TCB argument (§5.4).
  const core::TcbReport tcb = app.tcb_report();
  std::printf(
      "\nTCB: %s total (app code %s + runtime %s + shim %s + image heap "
      "%s),\n     %zu EDL functions — no library OS inside the enclave.\n",
      format_bytes(static_cast<double>(tcb.total_bytes())).c_str(),
      format_bytes(static_cast<double>(tcb.app_code_bytes)).c_str(),
      format_bytes(static_cast<double>(tcb.runtime_code_bytes)).c_str(),
      format_bytes(static_cast<double>(tcb.shim_bytes)).c_str(),
      format_bytes(static_cast<double>(tcb.image_heap_bytes)).c_str(),
      tcb.edl_functions);

  std::printf("\nSimulated time elapsed: %s\n",
              format_seconds(app.now_seconds()).c_str());
  return 0;
}
