// Multi-tenant enclave service (future work §7, second item).
//
// One measured enclave hosts three GraalVM-style isolates, each holding a
// different tenant's accounts. Proxies in the untrusted runtime stay
// bound to the isolate that owns their mirror; a GC in one tenant's heap
// never pauses another; and passing one tenant's object into another
// tenant's call is rejected at the boundary.
//
//   ./examples/example_multi_tenant
#include <cstdio>

#include "apps/illustrative/bank.h"
#include "core/montsalvat.h"
#include "core/multi_app.h"
#include "support/stats.h"

int main() {
  using namespace msv;
  using rt::Value;

  std::puts("== Multi-tenant enclave: one enclave, three isolates ==\n");

  core::MultiIsolateApp app(apps::build_bank_app(), /*trusted_isolates=*/3);
  auto& u = app.untrusted_context();

  const char* tenants[] = {"acme", "globex", "initech"};
  std::vector<Value> accounts;
  for (std::uint32_t t = 0; t < 3; ++t) {
    accounts.push_back(app.construct_in(
        t, "Account",
        {Value(std::string(tenants[t]) + "-ops"),
         Value(static_cast<std::int32_t>(100 * (t + 1)))}));
    std::printf("isolate %u: provisioned account for %-8s (mirrors there: %zu)\n",
                t, tenants[t], app.rmi().trusted_registry(t).size());
  }

  // Tenant 1 gets busy; its isolate's GC runs without touching the others.
  u.invoke(accounts[1].as_ref(), "updateBalance", {Value(std::int32_t{-50})});
  app.collect_isolate(1);
  std::printf("\nafter isolate 1's GC: gc_count = [%llu, %llu, %llu] — only "
              "tenant 1 paused\n",
              static_cast<unsigned long long>(
                  app.trusted_context(0).isolate().heap().stats().gc_count),
              static_cast<unsigned long long>(
                  app.trusted_context(1).isolate().heap().stats().gc_count),
              static_cast<unsigned long long>(
                  app.trusted_context(2).isolate().heap().stats().gc_count));

  for (std::uint32_t t = 0; t < 3; ++t) {
    std::printf("tenant %-8s balance: %d\n", tenants[t],
                u.invoke(accounts[t].as_ref(), "getBalance", {}).as_i32());
  }

  // Isolation: tenant 0's registry must not accept tenant 2's account.
  const Value reg0 = app.construct_in(0, "AccountRegistry", {});
  try {
    u.invoke(reg0.as_ref(), "addAccount", {accounts[2]});
    std::puts("\ncross-tenant reference accepted — BUG");
  } catch (const SecurityFault& e) {
    std::printf("\ncross-tenant reference rejected: %s\n", e.what());
  }

  std::printf("\nSimulated time: %s\n",
              format_seconds(app.now_seconds()).c_str());
  return 0;
}
