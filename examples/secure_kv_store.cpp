// Secure key-value store (§6.7).
//
// "The classes/business logic for storing and retrieving key/value pairs
// ... can be secured in the enclave, while classes for network-related
// functionality are kept out of the enclave."
//
// A @Trusted KvVault holds the sensitive entries inside the enclave; an
// @Untrusted NetworkFrontend parses client requests outside of it and
// calls the vault through its proxy. Secrets never live in untrusted
// memory; the frontend only ever sees what the vault's public API returns.
//
//   ./examples/example_secure_kv_store
#include <cstdio>
#include <map>

#include "core/montsalvat.h"
#include "support/stats.h"

namespace {

using namespace msv;
using model::Annotation;
using rt::Value;

model::AppModel build_kv_app() {
  model::AppModel app;

  // The sensitive store: lives on the enclave heap, methods execute inside.
  auto& vault = app.add_class("KvVault", Annotation::kTrusted);
  vault.add_field("entries");
  vault.add_constructor(0).body_native([](model::NativeCall& call) {
    call.isolate.set_field(call.self, 0, Value(rt::ValueList{}));
    return Value();
  });
  // put(key, value): append (key, value) pairs; last write wins on get.
  vault.add_method("put", 2).body_native([](model::NativeCall& call) {
    rt::ValueList entries =
        call.isolate.get_field(call.self, 0).as_list();
    entries.push_back(Value(rt::ValueList{call.args[0], call.args[1]}));
    call.isolate.set_field(call.self, 0, Value(std::move(entries)));
    return Value();
  });
  vault.add_method("get", 1).body_native([](model::NativeCall& call) {
    const Value entries = call.isolate.get_field(call.self, 0);
    const std::string& key = call.args[0].as_string();
    Value result;
    for (const auto& pair : entries.as_list()) {
      if (pair.as_list()[0].as_string() == key) result = pair.as_list()[1];
    }
    return result;
  });
  vault.add_method("size", 0).body_native([](model::NativeCall& call) {
    return Value(static_cast<std::int32_t>(
        call.isolate.get_field(call.self, 0).as_list().size()));
  });
  // requestCount(): how many requests the frontend parsed.

  // The untrusted frontend: network parsing stays outside the TCB (§5.1's
  // rationale for @Untrusted).
  auto& frontend = app.add_class("NetworkFrontend", Annotation::kUntrusted);
  frontend.add_field("vault");
  frontend.add_field("requests");
  frontend.add_constructor(1)
      .body_native([](model::NativeCall& call) {
        call.isolate.set_field(call.self, 0, call.args[0]);  // vault proxy
        call.isolate.set_field(call.self, 1, Value(std::int32_t{0}));
        return Value();
      });
  // handle("PUT k v") / handle("GET k") — a toy wire protocol.
  frontend.add_method("handle", 1)
      .body_native([](model::NativeCall& call) {
        const std::string& req = call.args[0].as_string();
        call.isolate.set_field(
            call.self, 1,
            Value(call.isolate.get_field(call.self, 1).as_i32() + 1));
        const rt::GcRef vault =
            call.isolate.get_field(call.self, 0).as_ref();
        const auto sp1 = req.find(' ');
        const std::string verb = req.substr(0, sp1);
        if (verb == "PUT") {
          const auto sp2 = req.find(' ', sp1 + 1);
          call.ctx.invoke(vault, "put",
                          {Value(req.substr(sp1 + 1, sp2 - sp1 - 1)),
                           Value(req.substr(sp2 + 1))});
          return Value(std::string("OK"));
        }
        if (verb == "GET") {
          const Value v =
              call.ctx.invoke(vault, "get", {Value(req.substr(sp1 + 1))});
          return v.is_null() ? Value(std::string("NOT_FOUND")) : v;
        }
        return Value(std::string("ERR"));
      })
      .calls("KvVault", "put")
      .calls("KvVault", "get");
  frontend.add_method("requestCount", 0)
      .body_native([](model::NativeCall& call) {
        return call.isolate.get_field(call.self, 1);
      });

  auto& main_cls = app.add_class("Main", Annotation::kUntrusted);
  main_cls.add_static_method("main", 0)
      .body(model::IrBuilder()
                .locals(2)
                .new_object("KvVault", 0)
                .store_local(0)
                .load_local(0)
                .new_object("NetworkFrontend", 1)
                .store_local(1)
                .load_local(1)
                .const_val(Value("PUT db_password hunter2"))
                .call("handle", 1)
                .pop()
                .ret_void()
                .build());
  app.set_main_class("Main");
  return app;
}

}  // namespace

int main() {
  std::puts("== Secure key-value store (paper §6.7) ==\n");

  core::PartitionedApp app(build_kv_app());
  app.run_main();
  auto& u = app.untrusted_context();

  // Stand up the service: the vault proxy goes into the frontend.
  const Value vault = u.construct("KvVault", {});
  const Value frontend = u.construct("NetworkFrontend", {vault});

  const char* session[] = {
      "PUT api_key sk-3f9a...",     "PUT tls_cert_key MIIEvg...",
      "GET api_key",                "GET missing_key",
      "PUT api_key sk-rotated...",  "GET api_key",
  };
  for (const char* req : session) {
    const Value resp = u.invoke(frontend.as_ref(), "handle", {Value(req)});
    std::printf("  %-28s -> %s\n", req, resp.as_string().c_str());
  }

  std::printf(
      "\nEntries in the enclave vault: %d (every PUT/GET crossed the "
      "boundary via the proxy: %llu ecalls)\n",
      u.invoke(vault.as_ref(), "size", {}).as_i32(),
      static_cast<unsigned long long>(app.bridge().stats().ecalls));
  std::printf(
      "The untrusted frontend handled %d requests without ever holding the "
      "store contents.\n",
      u.invoke(frontend.as_ref(), "requestCount", {}).as_i32());
  std::printf("Simulated time: %s\n", format_seconds(app.now_seconds()).c_str());
  return 0;
}
