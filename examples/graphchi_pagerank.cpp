// Partitioned GraphChi PageRank (§6.5, Fig. 8).
//
// Generates an RMAT graph, shards it with the (untrusted) FastSharder and
// ranks it with the (trusted) GraphChiEngine, printing the phase breakdown
// and the top-ranked vertices.
//
//   ./examples/example_graphchi_pagerank
#include <algorithm>
#include <cstdio>

#include "apps/graphchi/graph.h"
#include "apps/graphchi/model.h"
#include "core/montsalvat.h"
#include "support/stats.h"
#include "shim/host_io.h"
#include "support/bytes.h"

int main() {
  using namespace msv;
  using namespace msv::apps::graphchi;

  std::puts("== Partitioned GraphChi PageRank (paper §6.5) ==\n");

  constexpr std::uint32_t kVertices = 10'000;
  constexpr std::uint64_t kEdges = 60'000;

  // Offline: generate the input graph (Fig. 8's "input graph").
  auto fs = std::make_shared<vfs::MemFs>();
  {
    Env scratch(CostModel::paper(), fs);
    UntrustedDomain domain(scratch);
    shim::HostIo io(scratch, domain);
    Rng rng(1234);
    write_edge_list(io, "graph.bin", kVertices,
                    generate_rmat(rng, kVertices, kEdges));
  }
  std::printf("Input: RMAT graph, %u vertices, %llu edges\n\n", kVertices,
              static_cast<unsigned long long>(kEdges));

  GraphChiWorkload workload;
  workload.nshards = 3;
  workload.pagerank_iterations = 6;
  auto breakdown = std::make_shared<PhaseBreakdown>();
  core::AppConfig config;
  config.fs = fs;

  core::PartitionedApp app(
      build_graphchi_app(/*partitioned=*/true, workload, breakdown), config);
  app.run_main();

  std::printf("Phase 1 (sharding, untrusted): %s\n",
              format_seconds(breakdown->sharding_seconds).c_str());
  std::printf("Phase 2 (engine, in enclave):  %s\n",
              format_seconds(breakdown->engine_seconds).c_str());
  std::printf("Total simulated time:          %s\n\n",
              format_seconds(app.now_seconds()).c_str());

  // Read the final vertex data back (the engine persisted it).
  auto vdata = fs->map("pr.vdata");
  ByteReader r(vdata->data(), vdata->size());
  std::vector<std::pair<double, std::uint32_t>> ranked(kVertices);
  double total = 0;
  for (std::uint32_t v = 0; v < kVertices; ++v) {
    ranked[v] = {r.get_f64(), v};
    total += ranked[v].first;
  }
  std::partial_sort(ranked.begin(), ranked.begin() + 5, ranked.end(),
                    std::greater<>());
  std::puts("Top-5 vertices by PageRank:");
  for (int i = 0; i < 5; ++i) {
    std::printf("  v%-6u rank %.3f\n", ranked[i].second, ranked[i].first);
  }
  std::printf("Total rank mass: %.1f (vertices: %u)\n", total, kVertices);

  std::printf(
      "\nBridge traffic: %llu ecalls, %llu ocalls — the I/O-heavy sharder "
      "ran outside; only the\nengine's shard reads crossed the boundary.\n",
      static_cast<unsigned long long>(app.bridge().stats().ecalls),
      static_cast<unsigned long long>(app.bridge().stats().ocalls));
  return 0;
}
