# Empty compiler generated dependencies file for montsalvat.
# This may be replaced when dependencies are built.
