file(REMOVE_RECURSE
  "libmontsalvat.a"
)
