
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/graphchi/engine.cc" "src/CMakeFiles/montsalvat.dir/apps/graphchi/engine.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/graphchi/engine.cc.o.d"
  "/root/repo/src/apps/graphchi/graph.cc" "src/CMakeFiles/montsalvat.dir/apps/graphchi/graph.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/graphchi/graph.cc.o.d"
  "/root/repo/src/apps/graphchi/model.cc" "src/CMakeFiles/montsalvat.dir/apps/graphchi/model.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/graphchi/model.cc.o.d"
  "/root/repo/src/apps/graphchi/sharder.cc" "src/CMakeFiles/montsalvat.dir/apps/graphchi/sharder.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/graphchi/sharder.cc.o.d"
  "/root/repo/src/apps/illustrative/bank.cc" "src/CMakeFiles/montsalvat.dir/apps/illustrative/bank.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/illustrative/bank.cc.o.d"
  "/root/repo/src/apps/paldb/model.cc" "src/CMakeFiles/montsalvat.dir/apps/paldb/model.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/paldb/model.cc.o.d"
  "/root/repo/src/apps/paldb/store.cc" "src/CMakeFiles/montsalvat.dir/apps/paldb/store.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/paldb/store.cc.o.d"
  "/root/repo/src/apps/specjvm/harness.cc" "src/CMakeFiles/montsalvat.dir/apps/specjvm/harness.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/specjvm/harness.cc.o.d"
  "/root/repo/src/apps/synthetic/generator.cc" "src/CMakeFiles/montsalvat.dir/apps/synthetic/generator.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/apps/synthetic/generator.cc.o.d"
  "/root/repo/src/baselines/jvm.cc" "src/CMakeFiles/montsalvat.dir/baselines/jvm.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/baselines/jvm.cc.o.d"
  "/root/repo/src/core/app.cc" "src/CMakeFiles/montsalvat.dir/core/app.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/core/app.cc.o.d"
  "/root/repo/src/core/multi_app.cc" "src/CMakeFiles/montsalvat.dir/core/multi_app.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/core/multi_app.cc.o.d"
  "/root/repo/src/dsl/lexer.cc" "src/CMakeFiles/montsalvat.dir/dsl/lexer.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/dsl/lexer.cc.o.d"
  "/root/repo/src/dsl/parser.cc" "src/CMakeFiles/montsalvat.dir/dsl/parser.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/dsl/parser.cc.o.d"
  "/root/repo/src/interp/exec_context.cc" "src/CMakeFiles/montsalvat.dir/interp/exec_context.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/interp/exec_context.cc.o.d"
  "/root/repo/src/interp/intrinsics.cc" "src/CMakeFiles/montsalvat.dir/interp/intrinsics.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/interp/intrinsics.cc.o.d"
  "/root/repo/src/kernels/kernels.cc" "src/CMakeFiles/montsalvat.dir/kernels/kernels.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/kernels/kernels.cc.o.d"
  "/root/repo/src/model/app_model.cc" "src/CMakeFiles/montsalvat.dir/model/app_model.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/model/app_model.cc.o.d"
  "/root/repo/src/model/ir.cc" "src/CMakeFiles/montsalvat.dir/model/ir.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/model/ir.cc.o.d"
  "/root/repo/src/rmi/hasher.cc" "src/CMakeFiles/montsalvat.dir/rmi/hasher.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/rmi/hasher.cc.o.d"
  "/root/repo/src/rmi/multi_isolate.cc" "src/CMakeFiles/montsalvat.dir/rmi/multi_isolate.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/rmi/multi_isolate.cc.o.d"
  "/root/repo/src/rmi/proxy_runtime.cc" "src/CMakeFiles/montsalvat.dir/rmi/proxy_runtime.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/rmi/proxy_runtime.cc.o.d"
  "/root/repo/src/rmi/registry.cc" "src/CMakeFiles/montsalvat.dir/rmi/registry.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/rmi/registry.cc.o.d"
  "/root/repo/src/rmi/wire.cc" "src/CMakeFiles/montsalvat.dir/rmi/wire.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/rmi/wire.cc.o.d"
  "/root/repo/src/runtime/churn.cc" "src/CMakeFiles/montsalvat.dir/runtime/churn.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/runtime/churn.cc.o.d"
  "/root/repo/src/runtime/handles.cc" "src/CMakeFiles/montsalvat.dir/runtime/handles.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/runtime/handles.cc.o.d"
  "/root/repo/src/runtime/heap.cc" "src/CMakeFiles/montsalvat.dir/runtime/heap.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/runtime/heap.cc.o.d"
  "/root/repo/src/runtime/isolate.cc" "src/CMakeFiles/montsalvat.dir/runtime/isolate.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/runtime/isolate.cc.o.d"
  "/root/repo/src/runtime/value.cc" "src/CMakeFiles/montsalvat.dir/runtime/value.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/runtime/value.cc.o.d"
  "/root/repo/src/runtime/weakref.cc" "src/CMakeFiles/montsalvat.dir/runtime/weakref.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/runtime/weakref.cc.o.d"
  "/root/repo/src/sgx/attestation.cc" "src/CMakeFiles/montsalvat.dir/sgx/attestation.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/sgx/attestation.cc.o.d"
  "/root/repo/src/sgx/bridge.cc" "src/CMakeFiles/montsalvat.dir/sgx/bridge.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/sgx/bridge.cc.o.d"
  "/root/repo/src/sgx/edl.cc" "src/CMakeFiles/montsalvat.dir/sgx/edl.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/sgx/edl.cc.o.d"
  "/root/repo/src/sgx/enclave.cc" "src/CMakeFiles/montsalvat.dir/sgx/enclave.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/sgx/enclave.cc.o.d"
  "/root/repo/src/sgx/epc.cc" "src/CMakeFiles/montsalvat.dir/sgx/epc.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/sgx/epc.cc.o.d"
  "/root/repo/src/sgx/profiler.cc" "src/CMakeFiles/montsalvat.dir/sgx/profiler.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/sgx/profiler.cc.o.d"
  "/root/repo/src/sgx/sealing.cc" "src/CMakeFiles/montsalvat.dir/sgx/sealing.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/sgx/sealing.cc.o.d"
  "/root/repo/src/shim/enclave_shim.cc" "src/CMakeFiles/montsalvat.dir/shim/enclave_shim.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/shim/enclave_shim.cc.o.d"
  "/root/repo/src/shim/host_io.cc" "src/CMakeFiles/montsalvat.dir/shim/host_io.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/shim/host_io.cc.o.d"
  "/root/repo/src/support/bytes.cc" "src/CMakeFiles/montsalvat.dir/support/bytes.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/support/bytes.cc.o.d"
  "/root/repo/src/support/clock.cc" "src/CMakeFiles/montsalvat.dir/support/clock.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/support/clock.cc.o.d"
  "/root/repo/src/support/md5.cc" "src/CMakeFiles/montsalvat.dir/support/md5.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/support/md5.cc.o.d"
  "/root/repo/src/support/sha256.cc" "src/CMakeFiles/montsalvat.dir/support/sha256.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/support/sha256.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/montsalvat.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/support/stats.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/montsalvat.dir/support/table.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/support/table.cc.o.d"
  "/root/repo/src/transform/image_builder.cc" "src/CMakeFiles/montsalvat.dir/transform/image_builder.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/transform/image_builder.cc.o.d"
  "/root/repo/src/transform/reachability.cc" "src/CMakeFiles/montsalvat.dir/transform/reachability.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/transform/reachability.cc.o.d"
  "/root/repo/src/transform/transformer.cc" "src/CMakeFiles/montsalvat.dir/transform/transformer.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/transform/transformer.cc.o.d"
  "/root/repo/src/vfs/memfs.cc" "src/CMakeFiles/montsalvat.dir/vfs/memfs.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/vfs/memfs.cc.o.d"
  "/root/repo/src/vfs/realfs.cc" "src/CMakeFiles/montsalvat.dir/vfs/realfs.cc.o" "gcc" "src/CMakeFiles/montsalvat.dir/vfs/realfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
