# Empty dependencies file for example_secure_kv_store.
# This may be replaced when dependencies are built.
