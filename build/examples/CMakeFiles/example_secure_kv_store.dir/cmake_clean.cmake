file(REMOVE_RECURSE
  "CMakeFiles/example_secure_kv_store.dir/secure_kv_store.cpp.o"
  "CMakeFiles/example_secure_kv_store.dir/secure_kv_store.cpp.o.d"
  "example_secure_kv_store"
  "example_secure_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_secure_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
