# Empty compiler generated dependencies file for example_paldb_partitioned.
# This may be replaced when dependencies are built.
