file(REMOVE_RECURSE
  "CMakeFiles/example_paldb_partitioned.dir/paldb_partitioned.cpp.o"
  "CMakeFiles/example_paldb_partitioned.dir/paldb_partitioned.cpp.o.d"
  "example_paldb_partitioned"
  "example_paldb_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_paldb_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
