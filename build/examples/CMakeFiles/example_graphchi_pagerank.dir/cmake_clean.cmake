file(REMOVE_RECURSE
  "CMakeFiles/example_graphchi_pagerank.dir/graphchi_pagerank.cpp.o"
  "CMakeFiles/example_graphchi_pagerank.dir/graphchi_pagerank.cpp.o.d"
  "example_graphchi_pagerank"
  "example_graphchi_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graphchi_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
