# Empty compiler generated dependencies file for example_graphchi_pagerank.
# This may be replaced when dependencies are built.
