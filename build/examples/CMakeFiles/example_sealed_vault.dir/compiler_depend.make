# Empty compiler generated dependencies file for example_sealed_vault.
# This may be replaced when dependencies are built.
