file(REMOVE_RECURSE
  "CMakeFiles/example_sealed_vault.dir/sealed_vault.cpp.o"
  "CMakeFiles/example_sealed_vault.dir/sealed_vault.cpp.o.d"
  "example_sealed_vault"
  "example_sealed_vault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sealed_vault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
