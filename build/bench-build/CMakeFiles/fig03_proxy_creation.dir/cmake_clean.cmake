file(REMOVE_RECURSE
  "../bench/fig03_proxy_creation"
  "../bench/fig03_proxy_creation.pdb"
  "CMakeFiles/fig03_proxy_creation.dir/fig03_proxy_creation.cc.o"
  "CMakeFiles/fig03_proxy_creation.dir/fig03_proxy_creation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_proxy_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
