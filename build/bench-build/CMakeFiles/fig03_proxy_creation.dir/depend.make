# Empty dependencies file for fig03_proxy_creation.
# This may be replaced when dependencies are built.
