# Empty dependencies file for abl_profile_guided.
# This may be replaced when dependencies are built.
