file(REMOVE_RECURSE
  "../bench/abl_profile_guided"
  "../bench/abl_profile_guided.pdb"
  "CMakeFiles/abl_profile_guided.dir/abl_profile_guided.cc.o"
  "CMakeFiles/abl_profile_guided.dir/abl_profile_guided.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_profile_guided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
