file(REMOVE_RECURSE
  "../bench/fig04_rmi"
  "../bench/fig04_rmi.pdb"
  "CMakeFiles/fig04_rmi.dir/fig04_rmi.cc.o"
  "CMakeFiles/fig04_rmi.dir/fig04_rmi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
