# Empty compiler generated dependencies file for fig04_rmi.
# This may be replaced when dependencies are built.
