file(REMOVE_RECURSE
  "../bench/fig10_paldb_scone"
  "../bench/fig10_paldb_scone.pdb"
  "CMakeFiles/fig10_paldb_scone.dir/fig10_paldb_scone.cc.o"
  "CMakeFiles/fig10_paldb_scone.dir/fig10_paldb_scone.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_paldb_scone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
