# Empty compiler generated dependencies file for fig10_paldb_scone.
# This may be replaced when dependencies are built.
