file(REMOVE_RECURSE
  "../bench/abl_gc_interval"
  "../bench/abl_gc_interval.pdb"
  "CMakeFiles/abl_gc_interval.dir/abl_gc_interval.cc.o"
  "CMakeFiles/abl_gc_interval.dir/abl_gc_interval.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gc_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
