# Empty compiler generated dependencies file for abl_gc_interval.
# This may be replaced when dependencies are built.
