# Empty compiler generated dependencies file for fig11_graphchi_scone.
# This may be replaced when dependencies are built.
