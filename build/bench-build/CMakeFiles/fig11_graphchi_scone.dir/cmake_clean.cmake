file(REMOVE_RECURSE
  "../bench/fig11_graphchi_scone"
  "../bench/fig11_graphchi_scone.pdb"
  "CMakeFiles/fig11_graphchi_scone.dir/fig11_graphchi_scone.cc.o"
  "CMakeFiles/fig11_graphchi_scone.dir/fig11_graphchi_scone.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_graphchi_scone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
