# Empty compiler generated dependencies file for fig07_paldb.
# This may be replaced when dependencies are built.
