file(REMOVE_RECURSE
  "../bench/fig07_paldb"
  "../bench/fig07_paldb.pdb"
  "CMakeFiles/fig07_paldb.dir/fig07_paldb.cc.o"
  "CMakeFiles/fig07_paldb.dir/fig07_paldb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_paldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
