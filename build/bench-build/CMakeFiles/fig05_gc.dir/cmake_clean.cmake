file(REMOVE_RECURSE
  "../bench/fig05_gc"
  "../bench/fig05_gc.pdb"
  "CMakeFiles/fig05_gc.dir/fig05_gc.cc.o"
  "CMakeFiles/fig05_gc.dir/fig05_gc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
