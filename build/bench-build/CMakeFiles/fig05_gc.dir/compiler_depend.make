# Empty compiler generated dependencies file for fig05_gc.
# This may be replaced when dependencies are built.
