# Empty dependencies file for fig09_graphchi.
# This may be replaced when dependencies are built.
