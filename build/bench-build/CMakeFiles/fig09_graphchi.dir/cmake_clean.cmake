file(REMOVE_RECURSE
  "../bench/fig09_graphchi"
  "../bench/fig09_graphchi.pdb"
  "CMakeFiles/fig09_graphchi.dir/fig09_graphchi.cc.o"
  "CMakeFiles/fig09_graphchi.dir/fig09_graphchi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_graphchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
