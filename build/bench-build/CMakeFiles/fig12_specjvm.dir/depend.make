# Empty dependencies file for fig12_specjvm.
# This may be replaced when dependencies are built.
