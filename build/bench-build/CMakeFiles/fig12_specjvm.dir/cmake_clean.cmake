file(REMOVE_RECURSE
  "../bench/fig12_specjvm"
  "../bench/fig12_specjvm.pdb"
  "CMakeFiles/fig12_specjvm.dir/fig12_specjvm.cc.o"
  "CMakeFiles/fig12_specjvm.dir/fig12_specjvm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_specjvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
