file(REMOVE_RECURSE
  "../bench/abl_switchless"
  "../bench/abl_switchless.pdb"
  "CMakeFiles/abl_switchless.dir/abl_switchless.cc.o"
  "CMakeFiles/abl_switchless.dir/abl_switchless.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_switchless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
