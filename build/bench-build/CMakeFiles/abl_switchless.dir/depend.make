# Empty dependencies file for abl_switchless.
# This may be replaced when dependencies are built.
