file(REMOVE_RECURSE
  "../bench/abl_epc"
  "../bench/abl_epc.pdb"
  "CMakeFiles/abl_epc.dir/abl_epc.cc.o"
  "CMakeFiles/abl_epc.dir/abl_epc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
