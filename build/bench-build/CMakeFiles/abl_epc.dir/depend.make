# Empty dependencies file for abl_epc.
# This may be replaced when dependencies are built.
