file(REMOVE_RECURSE
  "../bench/fig06_synthetic"
  "../bench/fig06_synthetic.pdb"
  "CMakeFiles/fig06_synthetic.dir/fig06_synthetic.cc.o"
  "CMakeFiles/fig06_synthetic.dir/fig06_synthetic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
