# Empty dependencies file for fig06_synthetic.
# This may be replaced when dependencies are built.
