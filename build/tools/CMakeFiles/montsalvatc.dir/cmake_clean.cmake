file(REMOVE_RECURSE
  "CMakeFiles/montsalvatc.dir/montsalvatc.cc.o"
  "CMakeFiles/montsalvatc.dir/montsalvatc.cc.o.d"
  "montsalvatc"
  "montsalvatc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montsalvatc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
