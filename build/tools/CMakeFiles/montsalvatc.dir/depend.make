# Empty dependencies file for montsalvatc.
# This may be replaced when dependencies are built.
