
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/msv_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/dsl_test.cc" "tests/CMakeFiles/msv_tests.dir/dsl_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/dsl_test.cc.o.d"
  "/root/repo/tests/e2e_test.cc" "tests/CMakeFiles/msv_tests.dir/e2e_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/e2e_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/msv_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/failure_injection_test.cc" "tests/CMakeFiles/msv_tests.dir/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/failure_injection_test.cc.o.d"
  "/root/repo/tests/graphchi_test.cc" "tests/CMakeFiles/msv_tests.dir/graphchi_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/graphchi_test.cc.o.d"
  "/root/repo/tests/interp_shim_test.cc" "tests/CMakeFiles/msv_tests.dir/interp_shim_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/interp_shim_test.cc.o.d"
  "/root/repo/tests/kernels_test.cc" "tests/CMakeFiles/msv_tests.dir/kernels_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/kernels_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/msv_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/paldb_test.cc" "tests/CMakeFiles/msv_tests.dir/paldb_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/paldb_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/msv_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rmi_test.cc" "tests/CMakeFiles/msv_tests.dir/rmi_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/rmi_test.cc.o.d"
  "/root/repo/tests/runtime_test.cc" "tests/CMakeFiles/msv_tests.dir/runtime_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/runtime_test.cc.o.d"
  "/root/repo/tests/sealing_test.cc" "tests/CMakeFiles/msv_tests.dir/sealing_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/sealing_test.cc.o.d"
  "/root/repo/tests/sgx_test.cc" "tests/CMakeFiles/msv_tests.dir/sgx_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/sgx_test.cc.o.d"
  "/root/repo/tests/specjvm_baselines_test.cc" "tests/CMakeFiles/msv_tests.dir/specjvm_baselines_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/specjvm_baselines_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/msv_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/synthetic_test.cc" "tests/CMakeFiles/msv_tests.dir/synthetic_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/synthetic_test.cc.o.d"
  "/root/repo/tests/transform_test.cc" "tests/CMakeFiles/msv_tests.dir/transform_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/transform_test.cc.o.d"
  "/root/repo/tests/vfs_test.cc" "tests/CMakeFiles/msv_tests.dir/vfs_test.cc.o" "gcc" "tests/CMakeFiles/msv_tests.dir/vfs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/montsalvat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
