# Empty compiler generated dependencies file for msv_tests.
# This may be replaced when dependencies are built.
