// Ablation: batched & asynchronous RMI (DESIGN.md §13).
//
// Every unbatched proxy invocation pays a full enclave transition
// (cost.ecall_cycles = 13,100) plus the callee-side isolate attach
// (480,000 cycles for the trusted image). Batching packs N invocations
// into one wire frame dispatched by ONE transition and ONE attach, so —
// unlike abl_rmi_fastpath, which is a pure simulator optimisation — the
// quantity of interest here is SIMULATED-cycle throughput: the batch
// genuinely changes what the modelled hardware does.
//
// Honesty contract (abl_rmi_fastpath discipline): at batch width 1 the
// async path replays the unbatched wire path byte for byte, so its
// simulated cycles must be IDENTICAL to the synchronous loop. The run
// aborts on a single cycle of divergence. The acceptance gate asserts
// >= 5x simulated-cycle throughput at widths >= 16.
#include <cinttypes>
#include <cstdlib>

#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

struct RunResult {
  std::uint64_t sim_cycles = 0;
  std::uint64_t transitions = 0;  // RMI-layer bridge round trips
  std::int32_t final_value = 0;
};

// Synchronous baseline: n proxy invocations, one transition each.
RunResult run_sync(std::int64_t n) {
  core::PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const rt::Value w = u.construct("Worker", {});
  const model::ClassDecl& proxy_cls = u.classes().cls("Worker");
  const model::MethodDecl* set = proxy_cls.find_method("set");
  std::vector<rt::Value> args{rt::Value(std::int32_t{0})};
  for (int i = 0; i < 64; ++i) {  // warm-up: plans, arena, registries
    app.rmi().invoke_proxy(u, w.as_ref(), proxy_cls, *set, args);
  }

  RunResult r;
  const Cycles sim0 = app.env().clock.now();
  const std::uint64_t t0 = app.rmi().stats().transitions;
  for (std::int64_t i = 0; i < n; ++i) {
    args[0] = rt::Value(static_cast<std::int32_t>(i));
    app.rmi().invoke_proxy(u, w.as_ref(), proxy_cls, *set, args);
  }
  r.sim_cycles = app.env().clock.now() - sim0;
  r.transitions = app.rmi().stats().transitions - t0;
  r.final_value = u.invoke(w.as_ref(), "get", {}).as_i32();
  return r;
}

// Batched: n invocations enqueued `width` at a time; the get() on the
// last future of each window forces the flush (one transition per
// window).
RunResult run_batched(std::int64_t n, std::int64_t width) {
  core::PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  const rt::Value w = u.construct("Worker", {});
  const model::ClassDecl& proxy_cls = u.classes().cls("Worker");
  const model::MethodDecl* set = proxy_cls.find_method("set");
  std::vector<rt::Value> args{rt::Value(std::int32_t{0})};
  for (int i = 0; i < 64; ++i) {
    app.rmi().invoke_proxy(u, w.as_ref(), proxy_cls, *set, args);
  }
  app.rmi().set_batching(true);

  RunResult r;
  const Cycles sim0 = app.env().clock.now();
  const std::uint64_t t0 = app.rmi().stats().transitions;
  for (std::int64_t i = 0; i < n; i += width) {
    rmi::RmiFuture tail;
    for (std::int64_t k = 0; k < width; ++k) {
      args[0] = rt::Value(static_cast<std::int32_t>(i + k));
      tail = app.rmi().invoke_proxy_async(u, w.as_ref(), proxy_cls, *set,
                                          args);
    }
    tail.get();
  }
  r.sim_cycles = app.env().clock.now() - sim0;
  r.transitions = app.rmi().stats().transitions - t0;
  app.rmi().set_batching(false);
  r.final_value = u.invoke(w.as_ref(), "get", {}).as_i32();
  return r;
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
  // Divisible by every width below so each pass issues exactly n calls.
  const std::int64_t n = opt.smoke ? 2'048 : 65'536;

  bench::print_header("Ablation: batched RMI",
                      "N calls per transition: futures + call coalescing "
                      "(simulated cycles)");

  const RunResult sync = run_sync(n);
  const double sync_tput = static_cast<double>(n) / sync.sim_cycles;

  Table table({"batch width", "sim cycles", "transitions", "cycles/call",
               "speedup"});
  table.add_row({"sync", std::to_string(sync.sim_cycles),
                 std::to_string(sync.transitions),
                 std::to_string(sync.sim_cycles / static_cast<std::uint64_t>(n)),
                 bench::fmt_x(1.0)});

  bench::JsonReport report("abl_rmi_batch");
  report.add_metric("invocations", static_cast<std::uint64_t>(n));
  report.add_metric("sync_sim_cycles", sync.sim_cycles);

  bool ok = true;
  for (const std::int64_t width : {1, 2, 4, 8, 16, 32, 64}) {
    const RunResult b = run_batched(n, width);
    if (b.final_value != sync.final_value) {
      std::fprintf(stderr,
                   "FATAL: width %" PRId64 " final value %d != sync %d\n",
                   width, b.final_value, sync.final_value);
      ok = false;
    }
    // Honesty contract: a batch of one IS the unbatched call.
    if (width == 1 && b.sim_cycles != sync.sim_cycles) {
      std::fprintf(stderr,
                   "FATAL: width-1 simulated cycles diverge (sync %" PRIu64
                   ", batched %" PRIu64 ") — batching changed the "
                   "single-call wire path\n",
                   sync.sim_cycles, b.sim_cycles);
      ok = false;
    }
    const double speedup =
        static_cast<double>(n) / b.sim_cycles / sync_tput;
    // Acceptance gate: the 13,100-cycle transition and the 480k-cycle
    // isolate attach amortize across the batch.
    if (width >= 16 && speedup < 5.0) {
      std::fprintf(stderr,
                   "FATAL: width %" PRId64 " speedup %.2fx < 5x gate\n",
                   width, speedup);
      ok = false;
    }
    table.add_row({std::to_string(width),
                   std::to_string(b.sim_cycles), std::to_string(b.transitions),
                   std::to_string(b.sim_cycles / static_cast<std::uint64_t>(n)),
                   bench::fmt_x(speedup)});
    const std::string key = "w" + std::to_string(width);
    report.add_metric("sim_cycles_" + key, b.sim_cycles);
    report.add_metric("transitions_" + key, b.transitions);
    report.add_metric("speedup_" + key, speedup);
  }
  table.print();
  std::printf(
      "\nBatch width 1 is asserted cycle-identical to the synchronous loop "
      "(the async\nmachinery adds nothing until it can amortize); wider "
      "batches pay the transition\nand isolate attach once per flush.\n");
  if (!opt.json_path.empty()) {
    report.add_table("rmi_batch", table);
    if (!report.write(opt.json_path)) return 1;
  }
  return ok ? 0 : 1;
}
