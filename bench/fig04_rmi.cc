// Figure 4 (§6.3): performance of remote method invocations by proxy
// objects, and the impact of serialization.
//
// (a) 10k-100k invocations of a setter in four scenarios: concrete-out,
//     concrete-in, proxy-out→in (RMI entering the enclave), proxy-in→out
//     (RMI leaving it).
// (b) 10k invocations of a setter taking a list of 16-byte strings; the
//     list size varies from 10 to 100 elements. Expected: RMIs in the
//     enclave with the serialized parameter about 10x their unserialized
//     cost, RMIs out of the enclave about 3x (§6.3).
#include <cmath>

#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

using core::PartitionedApp;
using rt::Value;
using rt::ValueList;

Value make_payload(int list_size) {
  ValueList items;
  for (int i = 0; i < list_size; ++i) {
    items.push_back(Value(std::string(16, static_cast<char>('a' + i % 26))));
  }
  return Value(std::move(items));
}

struct MicroBench {
  PartitionedApp app{apps::synthetic::build_micro_app()};

  double measure(const std::string& scenario, std::int64_t n, int list_size) {
    auto& u = app.untrusted_context();
    Env& env = app.env();

    if (scenario == "concrete-out") {
      const Value sink = u.construct("Sink", {});
      const Cycles t0 = env.clock.now();
      for (std::int64_t i = 0; i < n; ++i) {
        u.invoke(sink.as_ref(), "set", {Value(std::int32_t{1})});
      }
      return static_cast<double>(env.clock.now() - t0) / env.cost.cpu_hz;
    }
    if (scenario == "proxy-out→in" || scenario == "proxy-out→in+s") {
      const Value worker = u.construct("Worker", {});
      const bool serialized = scenario.back() == 's';
      const Value payload =
          serialized ? make_payload(list_size) : Value(std::int32_t{1});
      const char* method = serialized ? "set_list" : "set";
      const Cycles t0 = env.clock.now();
      for (std::int64_t i = 0; i < n; ++i) {
        u.invoke(worker.as_ref(), method, {payload});
      }
      return static_cast<double>(env.clock.now() - t0) / env.cost.cpu_hz;
    }

    // In-enclave callers run inside a Driver method; subtract entry cost.
    const Value driver = u.construct("Driver", {});
    std::string method;
    std::vector<Value> args;
    if (scenario == "concrete-in") {
      method = "call_worker";
      args = {Value(std::int64_t{0})};
    } else if (scenario == "proxy-in→out") {
      method = "call_sink";
      args = {Value(std::int64_t{0})};
    } else {  // proxy-in→out+s
      method = "call_sink_list";
      args = {Value(std::int64_t{0}), make_payload(list_size)};
    }
    const Cycles e0 = env.clock.now();
    u.invoke(driver.as_ref(), method, args);
    const Cycles entry = env.clock.now() - e0;

    args[0] = Value(n);
    const Cycles t0 = env.clock.now();
    u.invoke(driver.as_ref(), method, args);
    const Cycles cost = env.clock.now() - t0;
    return static_cast<double>(cost - std::min(cost, entry)) /
           env.cost.cpu_hz;
  }
};

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Figure 4a", "remote method invocation latency");

  Table a({"# invocations", "concrete-out", "concrete-in", "proxy-out→in",
           "proxy-in→out"});
  for (std::int64_t n = 10'000; n <= 100'000; n += 10'000) {
    std::vector<std::string> row{std::to_string(n / 1000) + "k"};
    for (const char* scenario :
         {"concrete-out", "concrete-in", "proxy-out→in", "proxy-in→out"}) {
      MicroBench bench;
      row.push_back(bench::fmt_s(bench.measure(scenario, n, 0)));
    }
    a.add_row(std::move(row));
  }
  a.print();

  std::printf("\n");
  bench::print_header("Figure 4b", "impact of serialization on RMIs");

  constexpr std::int64_t kInvocations = 10'000;  // §6.3
  Table b({"list size", "proxy-out→in", "proxy-out→in+s", "ratio",
           "proxy-in→out", "proxy-in→out+s", "ratio"});
  double last_out_ratio = 0, last_in_ratio = 0;
  for (int list_size = 10; list_size <= 100; list_size += 10) {
    MicroBench out_plain, out_ser, in_plain, in_ser;
    const double out = out_plain.measure("proxy-out→in", kInvocations, 0);
    const double out_s =
        out_ser.measure("proxy-out→in+s", kInvocations, list_size);
    const double in = in_plain.measure("proxy-in→out", kInvocations, 0);
    const double in_s =
        in_ser.measure("proxy-in→out+s", kInvocations, list_size);
    last_out_ratio = out_s / out;
    last_in_ratio = in_s / in;
    b.add_row({std::to_string(list_size), bench::fmt_s(out),
               bench::fmt_s(out_s), bench::fmt_x(last_out_ratio),
               bench::fmt_s(in), bench::fmt_s(in_s),
               bench::fmt_x(last_in_ratio)});
  }
  b.print();
  std::printf(
      "\nAt list size 100: serialized RMIs in the enclave cost %.1fx their "
      "unserialized cost (paper: ~10x),\n"
      "                  serialized RMIs out of the enclave cost %.1fx "
      "(paper: ~3x)\n",
      last_in_ratio, last_out_ratio);
  return 0;
}
