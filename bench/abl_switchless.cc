// Ablation A (future work, §7): transition-less cross-enclave calls.
//
// The paper's first future-work item is to serve expensive RMIs through
// switchless calls (HotCalls-style worker threads polling a shared-memory
// request queue) instead of hardware transitions. Montsalvat implements
// this as a bridge mode; this ablation measures the RMI latency win and
// its effect on the Listing-1 workload.
#include "apps/illustrative/bank.h"
#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

double rmi_latency(bool switchless, std::int64_t n) {
  core::AppConfig config;
  config.switchless_relays = switchless;
  core::PartitionedApp app(apps::synthetic::build_micro_app(), config);
  auto& u = app.untrusted_context();
  const rt::Value w = u.construct("Worker", {});
  const Cycles t0 = app.env().clock.now();
  for (std::int64_t i = 0; i < n; ++i) {
    u.invoke(w.as_ref(), "set", {rt::Value(std::int32_t{1})});
  }
  return static_cast<double>(app.env().clock.now() - t0) /
         app.env().cost.cpu_hz;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Ablation A",
                      "switchless RMI (future work §7) vs hardware "
                      "transitions");

  Table table({"# invocations", "transition RMI", "switchless RMI",
               "speedup"});
  for (std::int64_t n = 10'000; n <= 50'000; n += 10'000) {
    const double normal = rmi_latency(false, n);
    const double fast = rmi_latency(true, n);
    table.add_row({std::to_string(n / 1000) + "k", bench::fmt_s(normal),
                   bench::fmt_s(fast), bench::fmt_x(normal / fast)});
  }
  table.print();
  std::printf(
      "\nSwitchless workers stay attached to their isolate, so each call "
      "saves both the hardware\ntransition and the isolate attach — the two "
      "dominant terms of Fig. 4a's RMI latency.\n");
  return 0;
}
