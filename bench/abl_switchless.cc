// Ablation A (future work, §7): transition-less cross-enclave calls.
//
// The paper's first future-work item is to serve expensive RMIs through
// switchless calls (HotCalls-style worker threads polling a shared-memory
// request queue) instead of hardware transitions. The serving layer
// (DESIGN.md §8) models this with real ring semantics: callers enqueue a
// request descriptor into a per-direction ring and a persistent worker
// fiber executes the handler — the old "switchless flag skips the
// transition charge" shortcut remains only as the inline fallback when no
// workers are attached.
//
// Honesty contract (same shape as abl_rmi_fastpath): for a single caller
// the ring path under busy-wait must cost exactly the same simulated
// cycles as the inline shortcut — the ring may not invent or hide work.
// The run aborts on any divergence. The sleep/wake policy is reported
// separately: it legitimately charges a futex-wake per worker wakeup.
#include <cinttypes>

#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"
#include "sched/scheduler.h"
#include "sgx/tcs.h"
#include "support/error.h"

namespace msv {
namespace {

enum class Path {
  kTransition,     // hardware ecall/ocall per relay
  kInline,         // switchless flag, no workers (legacy shortcut)
  kRingBusyWait,   // worker ring, busy-polling workers
  kRingSleepWake,  // worker ring, futex-style sleep/wake workers
};

Cycles rmi_cycles(Path path, std::int64_t n) {
  core::AppConfig config;
  config.switchless_relays = path != Path::kTransition;
  core::PartitionedApp app(apps::synthetic::build_micro_app(), config);
  sched::Scheduler sched(app.env());
  app.bridge().attach_scheduler(sched);
  if (path == Path::kRingBusyWait || path == Path::kRingSleepWake) {
    sgx::SwitchlessConfig ring;
    ring.policy = path == Path::kRingSleepWake
                      ? sgx::SwitchlessConfig::WakePolicy::kSleepWake
                      : sgx::SwitchlessConfig::WakePolicy::kBusyWait;
    app.bridge().start_switchless_workers(ring, ring);
  }
  auto& u = app.untrusted_context();
  const rt::Value w = u.construct("Worker", {});
  Cycles cost = 0;
  // The caller runs as a scheduler task: ring calls suspend the caller
  // fiber until the worker completes the descriptor, exactly like the
  // serving layer's request workers.
  sched.spawn("caller", [&] {
    const Cycles t0 = app.env().clock.now();
    for (std::int64_t i = 0; i < n; ++i) {
      u.invoke(w.as_ref(), "set", {rt::Value(std::int32_t{1})});
    }
    cost = app.env().clock.now() - t0;
  });
  sched.run();
  if (app.bridge().switchless_workers_running()) {
    app.bridge().stop_switchless_workers();
  }
  return cost;
}

double to_seconds(Cycles c) {
  return static_cast<double>(c) / CostModel{}.cpu_hz;
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
  const std::int64_t lo = opt.smoke ? 1'000 : 10'000;
  const std::int64_t hi = opt.smoke ? 2'000 : 50'000;
  const std::int64_t step = lo;

  bench::print_header("Ablation A",
                      "switchless RMI (future work §7): hardware "
                      "transitions vs worker rings");

  Table table({"# invocations", "transition RMI", "ring busy-wait",
               "ring sleep/wake", "speedup", "ring == inline"});
  bench::JsonReport report("abl_switchless");
  bool equivalent = true;
  for (std::int64_t n = lo; n <= hi; n += step) {
    const Cycles normal = rmi_cycles(Path::kTransition, n);
    const Cycles inline_c = rmi_cycles(Path::kInline, n);
    const Cycles busy = rmi_cycles(Path::kRingBusyWait, n);
    const Cycles sleepy = rmi_cycles(Path::kRingSleepWake, n);
    // Single caller: the busy-wait ring must replay the inline shortcut's
    // exact simulated cycles (honesty contract).
    if (busy != inline_c) {
      std::fprintf(stderr,
                   "FATAL: ring path diverges from inline switchless "
                   "(inline %" PRIu64 ", ring %" PRIu64 ") at n=%" PRId64
                   "\n",
                   inline_c, busy, n);
      equivalent = false;
    }
    table.add_row({std::to_string(n / 1000) + "k",
                   bench::fmt_s(to_seconds(normal)),
                   bench::fmt_s(to_seconds(busy)),
                   bench::fmt_s(to_seconds(sleepy)),
                   bench::fmt_x(static_cast<double>(normal) /
                                static_cast<double>(busy)),
                   busy == inline_c ? "identical" : "DIVERGED"});
    const std::string key = std::to_string(n);
    report.add_metric("transition_cycles_" + key, normal);
    report.add_metric("ring_busywait_cycles_" + key, busy);
    report.add_metric("ring_sleepwake_cycles_" + key, sleepy);
  }
  table.print();
  std::printf(
      "\nSwitchless workers stay attached to their isolate, so each call "
      "saves both the hardware\ntransition and the isolate attach — the two "
      "dominant terms of Fig. 4a's RMI latency.\nBusy-wait replays the "
      "inline shortcut cycle-for-cycle (asserted); sleep/wake adds one\n"
      "futex wake per worker wakeup.\n");
  if (!opt.json_path.empty()) {
    report.add_table("switchless", table);
    if (!report.write(opt.json_path)) return 1;
  }
  return equivalent ? 0 : 1;
}
