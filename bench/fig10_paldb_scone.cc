// Figure 10 (§6.6): partitioned and unpartitioned PalDB native images vs.
// PalDB on a JVM in a SCONE container.
//
// Series: NoPart-NI, Part(RTWU), Part(RUWT), SCONE+JVM, NoSGX-NI.
// Expected: RTWU ≈ 6.6x and RUWT ≈ 2.8x faster than SCONE+JVM on average;
// the unpartitioned native image ≈ 2.6x faster than SCONE+JVM.
#include "apps/paldb/model.h"
#include "baselines/jvm.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

using apps::paldb::PaldbWorkload;
using apps::paldb::Scheme;

// Classes OpenJDK loads for the PalDB application (PalDB + app + util).
constexpr std::uint64_t kPaldbClassCount = 140;

struct Run {
  double seconds = 0;
  Cycles total = 0;
  Cycles gc = 0;
};

Run run_mode(const char* mode, std::uint64_t n_keys) {
  PaldbWorkload workload;
  workload.n_keys = n_keys;
  const std::string m(mode);
  Run out;
  if (m == "NoSGX-NI") {
    core::NativeApp app(
        apps::paldb::build_paldb_app(Scheme::kUnpartitioned, workload));
    app.run_main();
    out = {app.now_seconds(), app.env().clock.now(),
           app.context().isolate().heap().stats().gc_cycles_total};
  } else if (m == "NoPart-NI") {
    core::UnpartitionedApp app(
        apps::paldb::build_paldb_app(Scheme::kUnpartitioned, workload));
    app.run_main();
    out = {app.now_seconds(), app.env().clock.now(),
           app.context().isolate().heap().stats().gc_cycles_total};
  } else {
    const Scheme scheme = m == "Part(RTWU)"
                              ? Scheme::kReaderTrustedWriterUntrusted
                              : Scheme::kReaderUntrustedWriterTrusted;
    core::PartitionedApp app(apps::paldb::build_paldb_app(scheme, workload));
    app.run_main();
    out.seconds = app.now_seconds();
  }
  return out;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header(
      "Figure 10", "PalDB native images vs PalDB on a JVM in SCONE");

  const baselines::JvmEstimator jvm(CostModel::paper());
  Table table({"# keys", "NoPart-NI", "Part(RTWU)", "Part(RUWT)", "SCONE+JVM",
               "NoSGX-NI"});
  double sum_rtwu = 0, sum_ruwt = 0, sum_nopart = 0;
  int rows = 0;
  for (std::uint64_t n = 10'000; n <= 100'000; n += 10'000) {
    const Run nopart = run_mode("NoPart-NI", n);
    const Run rtwu = run_mode("Part(RTWU)", n);
    const Run ruwt = run_mode("Part(RUWT)", n);
    const Run nosgx = run_mode("NoSGX-NI", n);
    // SCONE+JVM: the same workload on OpenJDK inside the enclave, modelled
    // from the measured unpartitioned in-enclave decomposition (§6.6).
    // PalDB's workload is serialization/boxing heavy; its measured
    // JVM-vs-AOT gap is wider than the default.
    const double scone =
        jvm.estimate(kPaldbClassCount, nopart.total, nopart.gc, true, 1.75)
            .seconds(CostModel::paper());
    table.add_row({std::to_string(n / 1000) + "k",
                   bench::fmt_s(nopart.seconds), bench::fmt_s(rtwu.seconds),
                   bench::fmt_s(ruwt.seconds), bench::fmt_s(scone),
                   bench::fmt_s(nosgx.seconds)});
    sum_rtwu += scone / rtwu.seconds;
    sum_ruwt += scone / ruwt.seconds;
    sum_nopart += scone / nopart.seconds;
    ++rows;
  }
  table.print();
  std::printf(
      "\nAverages vs SCONE+JVM: Part(RTWU) %.1fx faster (paper: 6.6x); "
      "Part(RUWT) %.1fx (paper: 2.8x);\n"
      "                       NoPart-NI %.1fx (paper: 2.6x)\n",
      sum_rtwu / rows, sum_ruwt / rows, sum_nopart / rows);
  return 0;
}
