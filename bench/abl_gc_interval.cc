// Ablation B (§5.5): GC-helper scan interval.
//
// The helper threads scan their weak-reference lists "periodically (e.g.,
// every second)". This ablation sweeps the period and reports the
// trade-off: longer periods mean fewer scans and eviction batches
// (overhead) but a larger peak mirror-registry population — dead mirrors
// pinned in the enclave heap until the next scan (staleness).
#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

struct Outcome {
  std::uint64_t scans = 0;
  std::uint64_t eviction_batches = 0;
  std::size_t peak_registry = 0;
  std::size_t final_registry = 0;
};

Outcome run_with_period(double period_seconds) {
  core::AppConfig config;
  config.gc_scan_period_seconds = period_seconds;
  core::PartitionedApp app(apps::synthetic::build_micro_app(), config);
  auto& u = app.untrusted_context();
  Env& env = app.env();

  Outcome out;
  // 30 simulated seconds: every 100 ms a burst of proxies is created and
  // dropped; the untrusted heap is collected each burst.
  const Cycles tick = env.clock.seconds_to_cycles(0.1);
  for (int step = 0; step < 300; ++step) {
    for (int i = 0; i < 200; ++i) u.construct("Worker", {});
    u.isolate().heap().collect();
    const Cycles target = static_cast<Cycles>(step + 1) * tick;
    if (env.clock.now() < target) env.clock.advance(target - env.clock.now());
    app.rmi().pump_gc();
    out.peak_registry =
        std::max(out.peak_registry, app.rmi().registry(Side::kTrusted).size());
  }
  out.scans = app.rmi().gc_stats(Side::kUntrusted).scans;
  out.eviction_batches = app.rmi().gc_stats(Side::kUntrusted).eviction_calls;
  out.final_registry = app.rmi().registry(Side::kTrusted).size();
  return out;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Ablation B",
                      "GC-helper scan period vs mirror staleness");

  Table table({"scan period", "scans", "eviction batches",
               "peak dead+live mirrors", "mirrors at end"});
  for (const double period : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const Outcome o = run_with_period(period);
    table.add_row({format_fixed(period, 1) + " s", std::to_string(o.scans),
                   std::to_string(o.eviction_batches),
                   std::to_string(o.peak_registry),
                   std::to_string(o.final_registry)});
  }
  table.print();
  std::printf(
      "\nShorter periods keep the enclave registry (and thus the pinned "
      "mirror objects) small at the\ncost of more scans; the paper's 1 s "
      "default is a balanced point.\n");
  return 0;
}
