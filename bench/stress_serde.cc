// stress_serde (DESIGN.md §17): pathological object graphs through the
// RMI wire codec and the sealed-checkpoint path.
//
// Three shapes a hostile (or merely unlucky) workload can hand the
// marshalling layer:
//
//   1. Deep chains — a 100k-deep nested list. Legal, and it must round-
//      trip on an explicit work-list; the old recursive codec died of
//      native stack overflow long before any simulated cost mattered.
//   2. Giant arrays — one list of 10^6 scalars (mixed widths), the
//      bulk-bytes regime where the per-element charge dominates.
//   3. Wide shared graphs — one 64-element sublist referenced by 4096
//      parents. The wire format is a tree, so sharing *expands*:
//      element_count and the encoded bytes grow by the full product, and
//      the codec has to survive the blow-up the structure hid.
//
// Every shape goes through both boundaries: encode/decode with the
// serialization charges of an enclave domain (armed — pays the MEE
// factor) and of the untrusted domain (disarmed baseline), then through
// the sealed-checkpoint path (encode -> seal -> wire blob -> deserialize
// -> unseal -> decode). Gates: byte-identical re-encode for every shape
// on both codecs, charge asymmetry in the enclave, and typed rejection of
// a truncated sealed checkpoint.
#include <cinttypes>
#include <string>

#include "bench/bench_common.h"
#include "bench/stress_common.h"
#include "rmi/wire.h"
#include "sgx/enclave.h"
#include "sgx/sealing.h"
#include "sim/env.h"

namespace msv {
namespace {

using rt::Value;

Value deep_chain(std::size_t depth) {
  Value cur(std::int32_t{9});
  for (std::size_t i = 0; i < depth; ++i) {
    rt::ValueList wrap;
    wrap.push_back(std::move(cur));
    cur = Value(std::move(wrap));
  }
  return cur;
}

Value giant_array(std::size_t n) {
  bench::stress::Rng rng(13);
  rt::ValueList list;
  list.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.below(4)) {
      case 0:
        list.push_back(Value(static_cast<std::int32_t>(rng.next())));
        break;
      case 1:
        list.push_back(Value(static_cast<std::int64_t>(rng.next())));
        break;
      case 2:
        list.push_back(Value(static_cast<double>(rng.below(1000))));
        break;
      default:
        list.push_back(Value(std::string("s") +
                             std::to_string(rng.below(100))));
        break;
    }
  }
  return Value(std::move(list));
}

Value wide_shared(std::size_t parents, std::size_t width) {
  rt::ValueList inner;
  for (std::size_t i = 0; i < width; ++i) {
    inner.push_back(Value(static_cast<std::int32_t>(i)));
  }
  const auto shared = std::make_shared<rt::ValueList>(std::move(inner));
  rt::ValueList outer;
  outer.reserve(parents);
  for (std::size_t i = 0; i < parents; ++i) {
    outer.push_back(Value(shared));  // every parent holds the same sublist
  }
  return Value(std::move(outer));
}

struct ShapeResult {
  std::uint64_t elements = 0;
  std::uint64_t bytes = 0;
  double armed_cycles = 0;     // enclave-domain round trip
  double disarmed_cycles = 0;  // untrusted-domain round trip
};

ShapeResult push_through(const Value& v) {
  const rmi::RefEncoder no_refs = [](ByteBuffer&, const rt::GcRef&) {
    throw RuntimeFault("stress_serde carries no refs");
  };
  const rmi::RefDecoder no_ref_decode = [](ByteReader&,
                                           rmi::WireTag) -> Value {
    throw RuntimeFault("stress_serde carries no refs");
  };

  ShapeResult r;
  ByteBuffer wire;
  rmi::encode_value(wire, v, no_refs);
  r.elements = rmi::element_count(v);
  r.bytes = wire.size();

  // The compat codec must agree byte-for-byte on every pathological
  // shape, or the legacy benchmark baseline silently forks.
  ByteBuffer compat_wire;
  rmi::encode_value_compat(compat_wire, v, no_refs);
  bench::stress::gate(wire.bytes() == compat_wire.bytes(),
                      "generic and compat codecs must stay byte-equal");

  ByteReader reader(wire);
  const Value back = rmi::decode_value(reader, no_ref_decode);
  bench::stress::gate(reader.done(), "decode must consume the whole wire");
  ByteBuffer again;
  rmi::encode_value(again, back, no_refs);
  bench::stress::gate(again.bytes() == wire.bytes(),
                      "decode -> encode must reproduce the wire bytes");

  // Charge the round trip on both sides of the boundary.
  {
    Env env;
    sgx::Enclave enclave(env, "stress-serde", Sha256::hash("img"), 4096);
    enclave.init(Sha256::hash("img"));
    sgx::EnclaveDomain domain(env, enclave);
    const Cycles t0 = env.clock.now();
    rmi::charge_serialize(env, domain, r.elements, r.bytes);
    rmi::charge_deserialize(env, domain, r.elements, r.bytes);
    r.armed_cycles = static_cast<double>(env.clock.now() - t0);
  }
  {
    Env env;
    UntrustedDomain domain(env);
    const Cycles t0 = env.clock.now();
    rmi::charge_serialize(env, domain, r.elements, r.bytes);
    rmi::charge_deserialize(env, domain, r.elements, r.bytes);
    r.disarmed_cycles = static_cast<double>(env.clock.now() - t0);
  }
  return r;
}

// The sealed-checkpoint path: the encoded value is the checkpoint
// payload. Wire blob -> deserialize -> unseal -> decode must reproduce
// the original bytes; a clipped wire blob must fail typed.
void sealed_checkpoint(bench::JsonReport& report, const Value& v,
                       const char* name) {
  const rmi::RefEncoder no_refs = [](ByteBuffer&, const rt::GcRef&) {
    throw RuntimeFault("no refs");
  };
  ByteBuffer wire;
  rmi::encode_value(wire, v, no_refs);

  Env env;
  sgx::Enclave enclave(env, "stress-seal", Sha256::hash("img"), 4096);
  enclave.init(Sha256::hash("img"));
  sgx::SealingPlatform platform("stress-fuse");
  const sgx::SealedBlob blob = platform.seal(enclave, wire.bytes(), 17);
  const std::vector<std::uint8_t> stored = blob.serialize();

  const sgx::SealedBlob loaded = sgx::SealedBlob::deserialize(stored);
  const std::vector<std::uint8_t> plain = platform.unseal(enclave, loaded);
  bench::stress::gate(plain == wire.bytes(),
                      "the sealed checkpoint must unseal byte-identical");
  const rmi::RefDecoder no_ref_decode = [](ByteReader&,
                                           rmi::WireTag) -> Value {
    throw RuntimeFault("no refs");
  };
  ByteReader reader(plain.data(), plain.size());
  const Value back = rmi::decode_value(reader, no_ref_decode);
  bench::stress::gate(reader.done(), "checkpoint decode must drain");

  // A clipped checkpoint (the storage layer lost the tail) fails typed.
  bool rejected = false;
  try {
    sgx::SealedBlob::deserialize(std::vector<std::uint8_t>(
        stored.begin(), stored.end() - 16));
  } catch (const SecurityFault&) {
    rejected = true;
  }
  bench::stress::gate(rejected, "a clipped sealed checkpoint must throw");
  report.add_metric(std::string(name) + "_sealed_bytes",
                    static_cast<std::uint64_t>(stored.size()));
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);

  bench::print_header("stress_serde",
                      "pathological object graphs through the RMI codec "
                      "and sealed checkpoints");
  bench::JsonReport report("stress_serde");

  const std::size_t depth = opt.smoke ? 20'000 : 100'000;
  const std::size_t giant = opt.smoke ? 100'000 : 1'000'000;
  const std::size_t parents = opt.smoke ? 1'024 : 4'096;
  constexpr std::size_t kWidth = 64;
  report.add_metric("iterations", static_cast<std::uint64_t>(depth));

  struct Shape {
    const char* name;
    Value value;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"deep", deep_chain(depth)});
  shapes.push_back({"giant", giant_array(giant)});
  shapes.push_back({"wide_shared", wide_shared(parents, kWidth)});

  Table table({"shape", "elements", "wire bytes", "enclave cycles",
               "untrusted cycles", "MEE factor"});
  for (const Shape& s : shapes) {
    const ShapeResult r = push_through(s.value);
    const double factor =
        r.disarmed_cycles > 0 ? r.armed_cycles / r.disarmed_cycles : 0;
    table.add_row({s.name, std::to_string(r.elements),
                   std::to_string(r.bytes),
                   format_fixed(r.armed_cycles, 0),
                   format_fixed(r.disarmed_cycles, 0),
                   bench::fmt_x(factor)});
    const std::string key = s.name;
    report.add_metric(key + "_elements", r.elements);
    report.add_metric(key + "_wire_bytes", r.bytes);
    report.add_metric(key + "_armed_cycles", r.armed_cycles);
    report.add_metric(key + "_disarmed_cycles", r.disarmed_cycles);
    report.add_metric(key + "_mee_factor", factor);
    bench::stress::gate(factor > 1.0,
                        "serializing inside the enclave must pay the MEE "
                        "factor");
  }
  table.print();
  report.add_table("shapes", table);

  // The sharing blow-up: 4096 parents x 64 elements expand on the wire.
  bench::stress::gate(
      rmi::element_count(shapes[2].value) >=
          static_cast<std::uint64_t>(parents) * kWidth,
      "shared sublists must expand to the full product on the wire");

  for (const Shape& s : shapes) sealed_checkpoint(report, s.value, s.name);

  std::printf(
      "\nDeep chains ride the explicit work-list (no native recursion), "
      "the shared graph expands to\nits full product on the wire, and "
      "every shape survives the sealed-checkpoint round trip.\n");
  if (!opt.json_path.empty() && !report.write(opt.json_path)) return 1;
  return 0;
}
