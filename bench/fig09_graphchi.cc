// Figure 9 (§6.5): execution time for partitioned PageRank on GraphChi.
//
// Three RMAT graphs (6.25k-V/25k-E, 12.5k-V/50k-E, 25k-V/100k-E), shard
// counts 1-6, three configurations per shard count:
//   NoSGX   native image without SGX
//   NoPart  unpartitioned native image in the enclave
//   Part    FastSharder @Untrusted + GraphChiEngine @Trusted
// with the total split into sharding and engine time (the stacked bars).
//
// Expected shape: partitioning returns the sharding phase to native speed
// (the FastSharder leaves the enclave), giving ~1.2x over NoPart.
#include "apps/graphchi/graph.h"
#include "apps/graphchi/model.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"
#include "shim/host_io.h"

namespace msv {
namespace {

using apps::graphchi::GraphChiWorkload;
using apps::graphchi::PhaseBreakdown;

// Builds the input edge list in a fresh filesystem (graph generation is
// offline, not part of the measured run).
std::shared_ptr<vfs::FileSystem> make_graph_fs(std::uint32_t nvertices,
                                               std::uint64_t nedges) {
  auto fs = std::make_shared<vfs::MemFs>();
  Env scratch(CostModel::paper(), fs);
  UntrustedDomain domain(scratch);
  shim::HostIo io(scratch, domain);
  Rng rng(nvertices * 31 + nedges);
  apps::graphchi::write_edge_list(
      io, "graph.bin", nvertices,
      apps::graphchi::generate_rmat(rng, nvertices, nedges));
  return fs;
}

struct Outcome {
  double total = 0;
  PhaseBreakdown phases;
};

Outcome run_graphchi(const char* mode, std::uint32_t nvertices,
                     std::uint64_t nedges, std::uint32_t nshards) {
  GraphChiWorkload workload;
  workload.nshards = nshards;
  workload.pagerank_iterations = 4;

  auto breakdown = std::make_shared<PhaseBreakdown>();
  core::AppConfig config;
  config.fs = make_graph_fs(nvertices, nedges);

  const std::string m(mode);
  Outcome out;
  if (m == "NoSGX") {
    core::NativeApp app(
        apps::graphchi::build_graphchi_app(false, workload, breakdown),
        config);
    app.run_main();
    out.total = app.now_seconds();
  } else if (m == "NoPart") {
    core::UnpartitionedApp app(
        apps::graphchi::build_graphchi_app(false, workload, breakdown),
        config);
    app.run_main();
    out.total = app.now_seconds();
  } else {
    core::PartitionedApp app(
        apps::graphchi::build_graphchi_app(true, workload, breakdown),
        config);
    app.run_main();
    out.total = app.now_seconds();
  }
  out.phases = *breakdown;
  return out;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Figure 9",
                      "PageRank on GraphChi: NoSGX vs NoPart vs Partitioned");

  const struct {
    std::uint32_t v;
    std::uint64_t e;
  } graphs[] = {{6'250, 25'000}, {12'500, 50'000}, {25'000, 100'000}};

  double sum_speedup = 0;
  int count = 0;
  for (const auto& g : graphs) {
    std::printf("\nGraph: %.2fk vertices, %.0fk edges\n", g.v / 1000.0,
                g.e / 1000.0);
    Table table({"# shards", "NoSGX (shard/engine)", "NoPart (shard/engine)",
                 "Part (shard/engine)", "Part speedup vs NoPart"});
    for (std::uint32_t shards = 1; shards <= 6; ++shards) {
      const Outcome nosgx = run_graphchi("NoSGX", g.v, g.e, shards);
      const Outcome nopart = run_graphchi("NoPart", g.v, g.e, shards);
      const Outcome part = run_graphchi("Part", g.v, g.e, shards);
      const double speedup = nopart.total / part.total;
      sum_speedup += speedup;
      ++count;
      auto cell = [](const Outcome& o) {
        return bench::fmt_s(o.total) + " (" +
               bench::fmt_s(o.phases.sharding_seconds) + " / " +
               bench::fmt_s(o.phases.engine_seconds) + ")";
      };
      table.add_row({std::to_string(shards), cell(nosgx), cell(nopart),
                     cell(part), bench::fmt_x(speedup)});
      // Cross-configuration sanity: identical PageRank results.
      if (std::abs(nosgx.phases.rank_sum - part.phases.rank_sum) > 1e-6) {
        std::printf("WARNING: rank sum mismatch!\n");
      }
    }
    table.print();
  }
  std::printf(
      "\nAverage Part speedup over NoPart: %.2fx (paper: ~1.2x); after "
      "partitioning the sharding time\nreturns to approximately the NoSGX "
      "sharding time (the FastSharder runs outside, §6.5)\n",
      sum_speedup / count);
  return 0;
}
