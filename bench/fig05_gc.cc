// Figure 5 (§6.4): garbage collection performance and consistency.
//
// (a) Total GC time for collections in and out of the enclave, 50k-500k
//     objects (half of them still live, so the semispace copy has real
//     work). Expected: in-enclave GC about an order of magnitude slower
//     (MEE traffic on the copy).
// (b) Consistency timeline: proxies are created in the untrusted runtime
//     for 25 simulated seconds, then progressively dropped; at every
//     second we sample the live proxies outside and the mirror objects
//     registered inside. Expected: the two curves track each other — as
//     proxies are collected, the GC helper evicts their mirrors (§5.5).
#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"
#include "sgx/enclave.h"

namespace msv {
namespace {

// --- (a): raw isolates, in and out of the enclave -------------------------

double gc_time(bool in_enclave, int n_objects) {
  Env env;
  std::unique_ptr<sgx::Enclave> enclave;
  std::unique_ptr<MemoryDomain> domain;
  if (in_enclave) {
    enclave = std::make_unique<sgx::Enclave>(env, "gc-bench",
                                             Sha256::hash("img"), 1 << 20);
    enclave->init(Sha256::hash("img"));
    domain = std::make_unique<sgx::EnclaveDomain>(env, *enclave);
  } else {
    domain = std::make_unique<UntrustedDomain>(env);
  }
  rt::Isolate iso(env, *domain, rt::Isolate::Config{"gc-bench", 256 << 20});

  // Half the objects stay reachable, half become garbage (§6.4: "creating
  // multiple concrete objects, making them eligible for GC").
  std::vector<rt::GcRef> live;
  static const std::string payload(48, 'p');
  for (int i = 0; i < n_objects; ++i) {
    const rt::ObjAddr addr = iso.heap().alloc_string(payload);
    if (i % 2 == 0) live.push_back(iso.make_ref(addr));
  }
  const Cycles t0 = env.clock.now();
  iso.heap().collect();
  return static_cast<double>(env.clock.now() - t0) / env.cost.cpu_hz;
}

// --- (b): proxy/mirror population over time --------------------------------

void consistency_timeline() {
  core::AppConfig config;
  config.gc_scan_period_seconds = 1.0;  // §5.5 "e.g., every second"
  core::PartitionedApp app(apps::synthetic::build_micro_app(), config);
  auto& u = app.untrusted_context();
  Env& env = app.env();

  Table table({"t (s)", "phase", "proxy-objs-out", "mirror-objs-in"});
  std::vector<rt::Value> pool;

  const Cycles second = env.clock.seconds_to_cycles(1.0);
  for (int t = 1; t <= 60; ++t) {
    const bool creating = t <= 25;
    if (creating) {
      for (int i = 0; i < 6000; ++i) pool.push_back(u.construct("Worker", {}));
    } else {
      const std::size_t drop = std::min<std::size_t>(4500, pool.size());
      pool.erase(pool.end() - static_cast<std::ptrdiff_t>(drop), pool.end());
      u.isolate().heap().collect();  // the §6.4 experiment invokes the GC
    }
    // Let the virtual clock reach the next second so the periodic helpers
    // fire, then pump them.
    const Cycles target = static_cast<Cycles>(t) * second;
    if (env.clock.now() < target) env.clock.advance(target - env.clock.now());
    app.rmi().pump_gc();

    if (t % 5 == 0 || t == 1) {
      table.add_row({std::to_string(t), creating ? "creating" : "destroying",
                     std::to_string(app.rmi().live_proxy_count(Side::kUntrusted)),
                     std::to_string(app.rmi().registry(Side::kTrusted).size())});
    }
  }
  table.print();
  std::printf(
      "\nGC helper (untrusted): %llu scans, %llu proxies collected, %llu "
      "eviction batches\n",
      static_cast<unsigned long long>(
          app.rmi().gc_stats(Side::kUntrusted).scans),
      static_cast<unsigned long long>(
          app.rmi().gc_stats(Side::kUntrusted).proxies_collected),
      static_cast<unsigned long long>(
          app.rmi().gc_stats(Side::kUntrusted).eviction_calls));
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Figure 5a", "GC performance in and out of the enclave");

  Table a({"# objects", "GC out (concrete-out)", "GC in (concrete-in)",
           "ratio"});
  for (int n = 50'000; n <= 500'000; n += 50'000) {
    const double out = gc_time(false, n);
    const double in = gc_time(true, n);
    a.add_row({std::to_string(n / 1000) + "k", bench::fmt_s(out),
               bench::fmt_s(in), bench::fmt_x(in / out)});
  }
  a.print();
  std::printf(
      "\nExpected: the enclave adds about an order of magnitude to the GC "
      "(paper §6.4)\n\n");

  bench::print_header("Figure 5b", "GC consistency across the runtimes");
  consistency_timeline();
  return 0;
}
