// Shared helpers for the benchmark binaries. Each binary reproduces one
// table or figure of the paper (see DESIGN.md §3 for the index) and prints
// the same rows/series the paper reports, in simulated seconds.
#pragma once

#include <cstdio>
#include <string>

#include "support/stats.h"
#include "support/table.h"

namespace msv::bench {

inline void print_header(const char* figure, const char* description) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(simulated time; see DESIGN.md for the cost model)\n");
  std::printf("==========================================================\n");
}

inline std::string fmt_s(double seconds) { return format_seconds(seconds); }

inline std::string fmt_x(double ratio) {
  return format_fixed(ratio, 2) + "x";
}

}  // namespace msv::bench
