// Shared helpers for the benchmark binaries. Each binary reproduces one
// table or figure of the paper (see DESIGN.md §3 for the index) and prints
// the same rows/series the paper reports, in simulated seconds.
//
// Every binary accepts two optional flags:
//   --smoke         shrink iteration counts so the binary finishes in
//                   well under a second (used by tools/tier1.sh)
//   --json=<path>   additionally write the printed tables and any raw
//                   metrics as JSON to <path> (tools/bench_to_json wraps
//                   this; BENCH_*.json artifacts are produced this way)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "support/stats.h"
#include "support/table.h"

namespace msv::bench {

inline void print_header(const char* figure, const char* description) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(simulated time; see DESIGN.md for the cost model)\n");
  std::printf("==========================================================\n");
}

inline std::string fmt_s(double seconds) { return format_seconds(seconds); }

inline std::string fmt_x(double ratio) {
  return format_fixed(ratio, 2) + "x";
}

struct BenchOptions {
  bool smoke = false;
  std::string json_path;
  // Telemetry outputs (DESIGN.md §10); binaries that support them run
  // their base scenario with full tracing and write the artifacts here.
  std::string trace_path;    // --trace-out=<path>: Chrome trace JSON
  std::string metrics_path;  // --metrics-out=<path>: Prometheus-style text
  // Fleet health artifacts (DESIGN.md §16); fig_fleet's health scenario
  // writes the SLO report / post-mortem bundle / folded profiler stacks.
  std::string health_path;      // --health-out=<path>: SLO health report
  std::string postmortem_path;  // --postmortem-out=<path>: JSON bundle
  std::string folded_path;      // --folded-out=<path>: folded stacks

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--smoke") == 0) {
        opt.smoke = true;
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        opt.json_path = a + 7;
      } else if (std::strcmp(a, "--json") == 0 && i + 1 < argc) {
        opt.json_path = argv[++i];
      } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
        opt.trace_path = a + 12;
      } else if (std::strcmp(a, "--trace-out") == 0 && i + 1 < argc) {
        opt.trace_path = argv[++i];
      } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
        opt.metrics_path = a + 14;
      } else if (std::strcmp(a, "--metrics-out") == 0 && i + 1 < argc) {
        opt.metrics_path = argv[++i];
      } else if (std::strncmp(a, "--health-out=", 13) == 0) {
        opt.health_path = a + 13;
      } else if (std::strncmp(a, "--postmortem-out=", 17) == 0) {
        opt.postmortem_path = a + 17;
      } else if (std::strncmp(a, "--folded-out=", 13) == 0) {
        opt.folded_path = a + 13;
      } else {
        std::fprintf(stderr, "unknown option: %s\n", a);
      }
    }
    return opt;
  }
};

// Writes `content` to `path`; false (after a perror) on failure.
inline bool write_text_file(const std::string& path,
                            const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(("bench: cannot write " + path).c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Collects the printed tables plus raw (unformatted) metrics and writes
// them as one JSON document:
//   { "benchmark": ..., "tables": {name: [{col: cell, ...}, ...]},
//     "metrics": {key: number, ...} }
class JsonReport {
 public:
  explicit JsonReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  void add_table(const std::string& name, const Table& t) {
    std::string rows = "[";
    bool first_row = true;
    for (const auto& row : t.rows()) {
      rows += first_row ? "\n" : ",\n";
      first_row = false;
      rows += "      {";
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i > 0) rows += ", ";
        rows += "\"" + json_escape(t.headers()[i]) + "\": \"" +
                json_escape(row[i]) + "\"";
      }
      rows += "}";
    }
    rows += "\n    ]";
    tables_.emplace_back(name, std::move(rows));
  }

  void add_metric(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    metrics_.emplace_back(key, std::string(buf));
  }
  void add_metric(const std::string& key, std::uint64_t v) {
    metrics_.emplace_back(key, std::to_string(v));
  }

  // Returns false (after a perror) when the file cannot be written.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::perror(("bench: cannot write " + path).c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n",
                 json_escape(benchmark_).c_str());
    std::fprintf(f, "  \"tables\": {");
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i > 0 ? "," : "",
                   json_escape(tables_[i].first).c_str(),
                   tables_[i].second.c_str());
    }
    std::fprintf(f, "\n  },\n  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i > 0 ? "," : "",
                   json_escape(metrics_[i].first).c_str(),
                   metrics_[i].second.c_str());
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("\nJSON written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string benchmark_;
  std::vector<std::pair<std::string, std::string>> tables_;  // name -> rows
  std::vector<std::pair<std::string, std::string>> metrics_;
};

}  // namespace msv::bench
