// Shared pieces of the stress_* benchmark family (DESIGN.md §17).
//
// The stress binaries are adversarial workload generators: each one drives
// a subsystem past the regime the fig_*/abl_* benches measure — working
// sets past the EPC, allocation storms, pathological object graphs, TCS
// pool exhaustion, fault storms under overload — and gates the behavior at
// the cliff. Every scenario runs a *disarmed* baseline (the same harness
// with the adversarial knob off) next to the *armed* run, so the emitted
// metrics always carry their own reference point and tools/bench_diff.py
// can band both sides.
//
// Everything here is deterministic: fixed-seed xorshift, precomputed
// Zipf CDFs, no host time, no host randomness. Two runs of any stress
// binary must emit byte-identical JSON (stress_storm asserts this for the
// full fleet stack; the others inherit it from the virtual clock).
#pragma once

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "support/error.h"

namespace msv::bench::stress {

// Deterministic xorshift64*; good enough spread for workload shaping and
// replayable from the seed alone.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next() {
    s_ ^= s_ >> 12;
    s_ ^= s_ << 25;
    s_ ^= s_ >> 27;
    return s_ * 0x2545f4914f6cdd1dull;
  }

  // Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t s_;
};

// Zipf(s) over {0..n-1} via a precomputed CDF and binary search. Rank 0 is
// the hottest item — the head that keeps a hot subset resident while the
// tail sweeps the rest of the range past it.
class Zipf {
 public:
  Zipf(std::uint64_t n, double s) : cdf_(n) {
    double sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / pow_s(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  std::uint64_t sample(Rng& rng) const {
    const double u = rng.uniform();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  // std::pow is not guaranteed bit-identical across libms; an explicit
  // exp/log via repeated squaring would be overkill when s is small and
  // fixed, so approximate x^-s as exp2(-s*log2(x)) built from integer
  // halvings — deterministic on every IEEE host.
  static double pow_s(double x, double s) {
    // log2(x) by normalization + a short polynomial on [1,2).
    int e = 0;
    while (x >= 2.0) {
      x *= 0.5;
      ++e;
    }
    const double m = x - 1.0;  // [0,1)
    const double log2x =
        e + m * (1.4426950408889634 +
                 m * (-0.7213475204444817 + m * 0.4808983469629878));
    double y = -s * log2x;
    // exp2(y) = 2^int * 2^frac, frac in [0,1), cubic fit.
    int yi = static_cast<int>(y);
    if (y < yi) --yi;
    const double f = y - yi;
    double p = 1.0 + f * (0.6931471805599453 +
                          f * (0.2401596780981364 + f * 0.0558016241619485));
    while (yi > 0) {
      p *= 2.0;
      --yi;
    }
    while (yi < 0) {
      p *= 0.5;
      ++yi;
    }
    return 1.0 / p;
  }

  std::vector<double> cdf_;
};

// A hard stress gate: the stress binaries are also acceptance tests, so a
// violated expectation aborts the bench (tier1 treats a non-zero exit as
// a failure) instead of printing a row that nobody reads.
inline void gate(bool ok, const std::string& what) {
  MSV_CHECK_MSG(ok, "stress gate failed: " + what);
}

}  // namespace msv::bench::stress
