// Figure 6 (§6.5): speed-up due to partitioning on the synthetic
// application — 100 generated classes, each with an instance method doing
// either CPU-intensive work (FFT over a 1 MB double array) or I/O-
// intensive work (writing 4 KB to a file); main instantiates every class
// and invokes its method.
//
// The percentage of @Untrusted classes sweeps 0..100%. Expected shape:
// runtime decreases as more classes move out of the enclave, for both
// workload kinds.
#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

double run_config(apps::synthetic::WorkKind kind, double untrusted_fraction) {
  apps::synthetic::SyntheticSpec spec;
  spec.n_classes = 100;
  spec.untrusted_fraction = untrusted_fraction;
  spec.work = kind;
  spec.fft_mb = 1;
  spec.io_bytes = 4096;
  core::PartitionedApp app(apps::synthetic::generate(spec));
  const double before = app.now_seconds();
  app.run_main();
  return app.now_seconds() - before;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Figure 6",
                      "synthetic benchmark: runtime vs %% untrusted classes");

  Table table({"untrusted classes (%)", "CPU intensive (FFT 1MB)",
               "I/O intensive (4KB writes)"});
  double cpu0 = 0, cpu100 = 0, io0 = 0, io100 = 0;
  for (int pct = 0; pct <= 100; pct += 10) {
    const double cpu =
        run_config(apps::synthetic::WorkKind::kCpu, pct / 100.0);
    const double io = run_config(apps::synthetic::WorkKind::kIo, pct / 100.0);
    if (pct == 0) {
      cpu0 = cpu;
      io0 = io;
    }
    if (pct == 100) {
      cpu100 = cpu;
      io100 = io;
    }
    table.add_row({std::to_string(pct), bench::fmt_s(cpu), bench::fmt_s(io)});
  }
  table.print();
  std::printf(
      "\nMoving all classes out of the enclave speeds the CPU workload up "
      "%.2fx and the I/O workload up %.2fx\n"
      "(paper Fig. 6: both workloads improve monotonically as classes leave "
      "the enclave)\n",
      cpu0 / cpu100, io0 / io100);
  return 0;
}
