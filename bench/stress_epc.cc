// stress_epc (DESIGN.md §17): working-set sweeps past the EPC cliff.
//
// Three access patterns — sequential, strided (same touched pages, 4x the
// address span) and Zipfian — sweep working sets from 1/6th of the usable
// EPC to 2.7x past it, so the paging cliff shows as a *curve* (seven
// points spanning capacity), not a single before/after pair. A disarmed
// baseline (same sweep against an ample EPC) runs next to the armed one;
// the armed/disarmed ratio per point is the published EWB cost shape: flat
// near 1x below capacity, then a jump to the page-in + page-out regime
// (§2.1 "at a significant cost", Figs. 9/11).
//
// A fourth scenario shrinks the EPC limit *mid-run* (the lazy-eviction
// path of EpcModel::set_limit): a warm resident set is cut in half while
// the run is touching it, which must charge the deferred EWB evictions on
// the next access, keep the fault/eviction ledger reconciled, and regrow
// without spurious evictions when the limit lifts.
#include <cinttypes>
#include <string>

#include "bench/bench_common.h"
#include "bench/stress_common.h"
#include "sgx/enclave.h"
#include "sim/env.h"

namespace msv {
namespace {

struct SweepPoint {
  double cycles_per_touch = 0;
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;
};

enum class Pattern { kSequential, kStrided, kZipf };

// One sweep: `passes` rounds of `ws_pages` touches against an enclave
// whose usable EPC is `epc_bytes`. Strided touches every 4th page of a
// 4x-wider region — same touched-page count, so the EPC outcome must
// match sequential (pressure follows touched pages, not address span).
SweepPoint sweep(std::uint64_t epc_bytes, std::uint64_t ws_pages,
                 Pattern pattern, int passes) {
  CostModel cost;
  cost.epc_usable_bytes = epc_bytes;
  Env env(cost);
  sgx::Enclave enclave(env, "stress-epc", Sha256::hash("img"), 4096);
  enclave.init(Sha256::hash("img"));
  sgx::EnclaveDomain domain(env, enclave);
  const std::uint64_t region = domain.register_region("working-set");

  bench::stress::Rng rng(7);
  const bench::stress::Zipf zipf(ws_pages, 1.1);
  const Cycles t0 = env.clock.now();
  std::uint64_t touches = 0;
  for (int p = 0; p < passes; ++p) {
    for (std::uint64_t i = 0; i < ws_pages; ++i) {
      std::uint64_t page = i;
      if (pattern == Pattern::kStrided) {
        page = i * 4;
      } else if (pattern == Pattern::kZipf) {
        page = zipf.sample(rng);
      }
      domain.touch_pages(region, page, 1);
      ++touches;
    }
  }
  SweepPoint pt;
  pt.cycles_per_touch =
      static_cast<double>(env.clock.now() - t0) / static_cast<double>(touches);
  pt.faults = enclave.epc().stats().faults;
  pt.evictions = enclave.epc().stats().evictions;
  bench::stress::gate(enclave.epc().stats_reconcile(),
                      "EPC ledger must reconcile after a sweep");
  return pt;
}

// Mid-run capacity shrink: warm a resident set that exactly fills the
// EPC, halve the limit while still touching, then lift it again.
void shrink_mid_run(bench::JsonReport& report, std::uint64_t epc_bytes,
                    int passes) {
  CostModel cost;
  cost.epc_usable_bytes = epc_bytes;
  Env env(cost);
  sgx::Enclave enclave(env, "stress-epc-shrink", Sha256::hash("img"), 4096);
  enclave.init(Sha256::hash("img"));
  sgx::EnclaveDomain domain(env, enclave);
  const std::uint64_t region = domain.register_region("working-set");
  sgx::EpcModel& epc = enclave.epc();

  const std::uint64_t pages = epc.effective_capacity_pages();
  domain.touch_pages(region, 0, pages);  // warm: everything resident
  bench::stress::Rng rng(11);
  const bench::stress::Zipf zipf(pages, 1.1);

  const auto zipf_round = [&](std::uint64_t n) {
    const Cycles t0 = env.clock.now();
    for (std::uint64_t i = 0; i < n; ++i) {
      domain.touch_pages(region, zipf.sample(rng), 1);
    }
    return static_cast<double>(env.clock.now() - t0) /
           static_cast<double>(n);
  };

  const std::uint64_t round = pages * static_cast<std::uint64_t>(passes);
  const double warm_cpt = zipf_round(round);
  const std::uint64_t evictions_before = epc.stats().evictions;

  // The cut itself is bookkeeping-only (lazy eviction): no cycles move
  // until the next access pays the deferred EWB write-backs.
  const Cycles at_cut = env.clock.now();
  epc.set_limit(pages / 2);
  bench::stress::gate(env.clock.now() == at_cut,
                      "set_limit must not advance the clock");
  const double shrunk_cpt = zipf_round(round);
  const std::uint64_t drained = epc.stats().evictions - evictions_before;

  bench::stress::gate(drained >= pages - pages / 2,
                      "halving the limit must drain at least the overage");
  bench::stress::gate(shrunk_cpt > warm_cpt,
                      "a halved EPC must cost more per touch than warm");
  bench::stress::gate(epc.stats_reconcile(),
                      "EPC ledger must reconcile after the shrink");

  // Regrow: the limit lifts, the hot set refaults in, and nothing gets
  // evicted while the resident set is under the restored capacity.
  epc.set_limit(pages);
  const std::uint64_t evictions_at_regrow = epc.stats().evictions;
  const double regrown_cpt = zipf_round(round);
  bench::stress::gate(epc.stats().evictions == evictions_at_regrow,
                      "no evictions while refilling under the limit");
  bench::stress::gate(regrown_cpt < shrunk_cpt,
                      "restoring the limit must restore the cost");
  bench::stress::gate(epc.stats_reconcile(),
                      "EPC ledger must reconcile after the regrow");

  Table table({"phase", "cycles/touch", "evictions"});
  table.add_row({"warm (full limit)", format_fixed(warm_cpt, 1),
                 std::to_string(evictions_before)});
  table.add_row({"shrunk to half", format_fixed(shrunk_cpt, 1),
                 std::to_string(drained)});
  table.add_row({"regrown", format_fixed(regrown_cpt, 1), "0"});
  std::printf("\nMid-run EPC shrink (lazy eviction, %" PRIu64
              " resident pages cut to %" PRIu64 "):\n",
              pages, pages / 2);
  table.print();
  report.add_table("shrink_mid_run", table);
  report.add_metric("shrink_warm_cycles_per_touch", warm_cpt);
  report.add_metric("shrink_halved_cycles_per_touch", shrunk_cpt);
  report.add_metric("shrink_regrown_cycles_per_touch", regrown_cpt);
  report.add_metric("shrink_drained_evictions", drained);
}

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kSequential:
      return "seq";
    case Pattern::kStrided:
      return "strided";
    case Pattern::kZipf:
      return "zipf";
  }
  return "?";
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);

  bench::print_header("stress_epc",
                      "working-set sweeps past the EPC paging cliff");
  bench::JsonReport report("stress_epc");

  // Seven working-set points around a 6-unit usable EPC; smoke shrinks
  // the unit, not the shape, so every point keeps its capacity ratio.
  const std::uint64_t unit = (opt.smoke ? 1ull : 4ull) << 20;
  const std::uint64_t epc_bytes = 6 * unit;
  // Enough passes that the one unavoidable cold pass amortizes away:
  // below capacity the steady state is warm hits, past it every pass
  // refaults the whole set, so the cliff shows at its full height.
  const int passes = 8;
  const std::uint64_t ws_units[] = {1, 2, 4, 6, 8, 12, 16};
  report.add_metric("iterations",
                    static_cast<std::uint64_t>(6 * (unit >> 20)));

  CostModel cost_ref;
  const std::uint64_t page = cost_ref.page_bytes;
  const double fault_regime = static_cast<double>(
      cost_ref.epc_page_in_cycles + cost_ref.epc_page_out_cycles);

  Table table({"working set", "of EPC", "seq cyc/touch", "strided",
               "zipf", "seq slowdown vs ample"});
  double seq_below = 0, seq_above = 0, zipf_above = 0;
  for (const std::uint64_t u : ws_units) {
    const std::uint64_t ws_pages = u * unit / page;
    SweepPoint seq = sweep(epc_bytes, ws_pages, Pattern::kSequential, passes);
    SweepPoint str = sweep(epc_bytes, ws_pages, Pattern::kStrided, passes);
    SweepPoint zpf = sweep(epc_bytes, ws_pages, Pattern::kZipf, passes);
    // Disarmed baseline: identical sweep, EPC ample for every point.
    SweepPoint ample =
        sweep(64 * unit, ws_pages, Pattern::kSequential, passes);
    const double slowdown = seq.cycles_per_touch / ample.cycles_per_touch;

    // Same touched pages => same pressure, whatever the address span.
    bench::stress::gate(seq.faults == str.faults &&
                            seq.evictions == str.evictions,
                        "strided must fault exactly like sequential");
    if (u == 2) seq_below = seq.cycles_per_touch;
    if (u == 16) {
      seq_above = seq.cycles_per_touch;
      zipf_above = zpf.cycles_per_touch;
      // Past capacity a sequential sweep misses on every touch: the cost
      // must sit in the EWB regime (page-in + page-out dominated).
      bench::stress::gate(
          seq.cycles_per_touch > 0.8 * fault_regime,
          "deep past the cliff, cost must be page-in + page-out bound");
      bench::stress::gate(
          zpf.cycles_per_touch < 0.8 * seq.cycles_per_touch,
          "the Zipf head must keep a hot subset resident past the cliff");
    }

    const double pct = 100.0 * static_cast<double>(u) / 6.0;
    table.add_row({std::to_string(u * (unit >> 20)) + " MB",
                   format_fixed(pct, 0) + "%",
                   format_fixed(seq.cycles_per_touch, 1),
                   format_fixed(str.cycles_per_touch, 1),
                   format_fixed(zpf.cycles_per_touch, 1),
                   bench::fmt_x(slowdown)});
    const std::string key = "ws_r" + std::to_string(u * 100 / 6);
    report.add_metric(key + "_seq_cycles_per_touch", seq.cycles_per_touch);
    report.add_metric(key + "_zipf_cycles_per_touch", zpf.cycles_per_touch);
    report.add_metric(key + "_seq_faults", seq.faults);
    report.add_metric(key + "_slowdown", slowdown);
  }
  std::printf("Paging-cliff curve (usable EPC %" PRIu64 " MB, %d passes, "
              "disarmed baseline = ample EPC):\n",
              epc_bytes >> 20, passes);
  table.print();
  report.add_table("paging_cliff", table);

  bench::stress::gate(seq_above > 10.0 * seq_below,
                      "the cliff must be at least an order of magnitude");
  report.add_metric("cliff_ratio", seq_above / seq_below);
  report.add_metric("zipf_relief_ratio", seq_above / zipf_above);

  shrink_mid_run(report, epc_bytes, passes);

  std::printf(
      "\nBelow capacity every pattern runs at the warm-touch cost; past it "
      "the sequential sweep\npays page-in + page-out per touch (the EWB "
      "regime) while the Zipf head stays resident.\n");
  if (!opt.json_path.empty() && !report.write(opt.json_path)) return 1;
  return 0;
}
