// Figure 7 (§6.5): read and write times for partitioned PalDB.
//
// The application writes n K/V pairs (keys: stringified random 31-bit
// integers; values: random 128-char strings) into a store file and reads
// them all back. Four configurations, 10k-100k keys:
//   NoSGX       native image without SGX
//   NoPart      unpartitioned native image inside the enclave
//   Part(RTWU)  DBReader @Trusted, DBWriter @Untrusted
//   Part(RUWT)  DBReader @Untrusted, DBWriter @Trusted
//
// Expected shape: NoSGX fastest; RTWU ≈ 2.5x faster than NoPart (writes
// leave the enclave); RUWT barely better than NoPart (~1.04x) because the
// in-enclave writer does ~23x more ocalls than RTWU.
#include "apps/paldb/model.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

using apps::paldb::PaldbWorkload;
using apps::paldb::Scheme;

struct RunOutcome {
  double seconds = 0;
  std::uint64_t ocalls = 0;
};

RunOutcome run_paldb(const char* mode, std::uint64_t n_keys) {
  PaldbWorkload workload;
  workload.n_keys = n_keys;

  const std::string m(mode);
  RunOutcome out;
  if (m == "NoSGX") {
    core::NativeApp app(
        apps::paldb::build_paldb_app(Scheme::kUnpartitioned, workload));
    app.run_main();
    out.seconds = app.now_seconds();
  } else if (m == "NoPart") {
    core::UnpartitionedApp app(
        apps::paldb::build_paldb_app(Scheme::kUnpartitioned, workload));
    app.run_main();
    out.seconds = app.now_seconds();
    out.ocalls = app.bridge().stats().ocalls;
  } else {
    const Scheme scheme = m == "Part(RTWU)"
                              ? Scheme::kReaderTrustedWriterUntrusted
                              : Scheme::kReaderUntrustedWriterTrusted;
    core::PartitionedApp app(apps::paldb::build_paldb_app(scheme, workload));
    app.run_main();
    out.seconds = app.now_seconds();
    out.ocalls = app.bridge().stats().ocalls;
  }
  return out;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Figure 7", "time to read and write K/V pairs (PalDB)");

  Table table({"# keys", "NoSGX", "NoPart", "Part(RTWU)", "Part(RUWT)"});
  double sum_rtwu_speedup = 0, sum_ruwt_speedup = 0;
  double sum_ocall_ratio = 0;
  int rows = 0;
  for (std::uint64_t n = 10'000; n <= 100'000; n += 10'000) {
    const RunOutcome nosgx = run_paldb("NoSGX", n);
    const RunOutcome nopart = run_paldb("NoPart", n);
    const RunOutcome rtwu = run_paldb("Part(RTWU)", n);
    const RunOutcome ruwt = run_paldb("Part(RUWT)", n);
    table.add_row({std::to_string(n / 1000) + "k", bench::fmt_s(nosgx.seconds),
                   bench::fmt_s(nopart.seconds), bench::fmt_s(rtwu.seconds),
                   bench::fmt_s(ruwt.seconds)});
    sum_rtwu_speedup += nopart.seconds / rtwu.seconds;
    sum_ruwt_speedup += nopart.seconds / ruwt.seconds;
    sum_ocall_ratio +=
        static_cast<double>(ruwt.ocalls) / static_cast<double>(rtwu.ocalls);
    ++rows;
  }
  table.print();
  std::printf(
      "\nAverages: RTWU %.2fx faster than NoPart (paper: 2.5x); RUWT %.2fx "
      "(paper: 1.04x);\n"
      "          RUWT performs %.1fx more ocalls than RTWU (paper: ~23x)\n",
      sum_rtwu_speedup / rows, sum_ruwt_speedup / rows,
      sum_ocall_ratio / rows);
  return 0;
}
