// Figure 11 (§6.6): partitioned and unpartitioned GraphChi native images
// vs. GraphChi on a JVM (PageRank, 25k vertices / 100k edges, 1-6 shards).
//
// Series: NoSGX-NI, NoSGX+JVM, Part-NI, NoPart-NI, SCONE+JVM.
// Expected: Part-NI ≈ 2.2x and NoPart-NI ≈ 1.7x faster than SCONE+JVM.
#include "apps/graphchi/graph.h"
#include "apps/graphchi/model.h"
#include "baselines/jvm.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"
#include "shim/host_io.h"

namespace msv {
namespace {

using apps::graphchi::GraphChiWorkload;
using apps::graphchi::PhaseBreakdown;

// Classes OpenJDK loads for GraphChi + the PageRank app.
constexpr std::uint64_t kGraphchiClassCount = 260;

std::shared_ptr<vfs::FileSystem> make_graph_fs() {
  auto fs = std::make_shared<vfs::MemFs>();
  Env scratch(CostModel::paper(), fs);
  UntrustedDomain domain(scratch);
  shim::HostIo io(scratch, domain);
  Rng rng(2026);
  apps::graphchi::write_edge_list(
      io, "graph.bin", 25'000,
      apps::graphchi::generate_rmat(rng, 25'000, 100'000));
  return fs;
}

struct Run {
  double seconds = 0;
  Cycles total = 0;
  Cycles gc = 0;
};

Run run_mode(const char* mode, std::uint32_t nshards) {
  GraphChiWorkload workload;
  workload.nshards = nshards;
  auto breakdown = std::make_shared<PhaseBreakdown>();
  core::AppConfig config;
  config.fs = make_graph_fs();

  const std::string m(mode);
  Run out;
  if (m == "NoSGX-NI") {
    core::NativeApp app(
        apps::graphchi::build_graphchi_app(false, workload, breakdown),
        config);
    app.run_main();
    out = {app.now_seconds(), app.env().clock.now(),
           app.context().isolate().heap().stats().gc_cycles_total};
  } else if (m == "NoPart-NI") {
    core::UnpartitionedApp app(
        apps::graphchi::build_graphchi_app(false, workload, breakdown),
        config);
    app.run_main();
    out = {app.now_seconds(), app.env().clock.now(),
           app.context().isolate().heap().stats().gc_cycles_total};
  } else {  // Part-NI
    core::PartitionedApp app(
        apps::graphchi::build_graphchi_app(true, workload, breakdown),
        config);
    app.run_main();
    out.seconds = app.now_seconds();
  }
  return out;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header(
      "Figure 11",
      "GraphChi PageRank (25k-V, 100k-E) native images vs JVM variants");

  const baselines::JvmEstimator jvm(CostModel::paper());
  Table table({"# shards", "NoSGX-NI", "NoSGX+JVM", "Part-NI", "NoPart-NI",
               "SCONE+JVM"});
  double sum_part = 0, sum_nopart = 0;
  int rows = 0;
  for (std::uint32_t shards = 1; shards <= 6; ++shards) {
    const Run nosgx = run_mode("NoSGX-NI", shards);
    const Run nopart = run_mode("NoPart-NI", shards);
    const Run part = run_mode("Part-NI", shards);
    const double nosgx_jvm =
        jvm.estimate(kGraphchiClassCount, nosgx.total, nosgx.gc, false)
            .seconds(CostModel::paper());
    const double scone =
        jvm.estimate(kGraphchiClassCount, nopart.total, nopart.gc, true)
            .seconds(CostModel::paper());
    table.add_row({std::to_string(shards), bench::fmt_s(nosgx.seconds),
                   bench::fmt_s(nosgx_jvm), bench::fmt_s(part.seconds),
                   bench::fmt_s(nopart.seconds), bench::fmt_s(scone)});
    sum_part += scone / part.seconds;
    sum_nopart += scone / nopart.seconds;
    ++rows;
  }
  table.print();
  std::printf(
      "\nAverages vs SCONE+JVM: Part-NI %.1fx faster (paper: 2.2x); "
      "NoPart-NI %.1fx (paper: 1.7x)\n",
      sum_part / rows, sum_nopart / rows);
  return 0;
}
