// Ablation: trust-guided partition optimization (DESIGN.md §15).
//
// Montsalvat partitions at class granularity: every @Trusted class lives
// in the enclave, and every call from the untrusted image pays a full
// transition (ecall/ocall + isolate attach + edge routine). The value-
// granular trust analysis (analysis/trust.h) proves most of those classes
// secret-free, and the min-cut optimizer (analysis/optimize.h) re-places
// them against the profiled fig06 workload. This ablation measures what
// that buys: boundary crossings and simulated seconds, original partition
// vs the optimizer's plan.
//
// Honesty contract: the workload replays twice on EACH partition and the
// binary aborts unless (a) both runs of a partition agree byte-for-byte
// (result value + full filesystem contents), (b) the optimized partition
// produces the SAME digest as the original — the plan must be observably
// equivalent, (c) crossings drop by >= 20%, and (d) every class the trust
// analysis proves secret-carrying stays @Trusted. The same 2+2 replay
// check backs `msvlint --fix`; here it gates the committed
// BENCH_partition.json numbers.
#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/optimize.h"
#include "analysis/trust.h"
#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"
#include "vfs/fs.h"

namespace msv {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct ReplayResult {
  std::uint64_t digest = 0;     // run_main value + full filesystem contents
  std::uint64_t crossings = 0;  // measured ecalls + ocalls
  double seconds = 0.0;         // simulated wall time of main
};

// One replay of the workload on a partitioned build over a fresh MemFs,
// digesting every observable output (same digest the msvlint --fix
// verifier computes).
ReplayResult replay(const model::AppModel& app,
                    std::shared_ptr<const analysis::PartitionPlan> plan) {
  core::AppConfig config;
  auto fs = std::make_shared<vfs::MemFs>();
  config.fs = fs;
  config.partition_plan = std::move(plan);
  core::PartitionedApp papp(app, config);
  const Cycles t0 = papp.env().clock.now();
  const rt::Value result = papp.run_main();

  ReplayResult r;
  r.seconds = static_cast<double>(papp.env().clock.now() - t0) /
              papp.env().cost.cpu_hz;
  r.digest = 1469598103934665603ull;
  const std::string repr = result.to_debug_string();
  r.digest = fnv1a(r.digest, repr.data(), repr.size());
  std::vector<std::string> paths = fs->list("");
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    r.digest = fnv1a(r.digest, path.data(), path.size());
    const auto bytes = fs->map(path);
    if (bytes != nullptr && !bytes->empty()) {
      r.digest = fnv1a(r.digest, bytes->data(), bytes->size());
    }
  }
  const sgx::BridgeStats& stats = papp.bridge().stats();
  r.crossings = stats.ecalls + stats.ocalls;
  return r;
}

[[noreturn]] void gate_failure(const char* what) {
  std::fprintf(stderr, "abl_partition: GATE FAILURE: %s\n", what);
  std::exit(1);
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Ablation: partition optimizer",
                      "value-trust min-cut vs the annotated partition");

  // The fig06-style workload, everything annotated @Trusted and a fifth
  // of the classes holding genuine enclave secrets: the worst case for
  // class-granular annotations and the best-documented case for the
  // optimizer.
  apps::synthetic::SyntheticSpec spec;
  spec.n_classes = opt.smoke ? 16 : 40;
  spec.untrusted_fraction = 0.0;
  spec.secret_fraction = 0.2;
  spec.extra_work_calls = opt.smoke ? 1 : 3;
  // The I/O variant: every work() call writes a file, so the replay
  // digest covers 4 KB of real observable output per class instead of a
  // void result — the byte-identical gate has something to bite on.
  spec.work = apps::synthetic::WorkKind::kIo;
  const model::AppModel app = apps::synthetic::generate(spec);

  // Telemetry: profile the workload's call counts in a plain native run.
  core::NativeApp native(app);
  native.context().enable_call_profiling();
  native.run_main();
  const analysis::CallProfile profile =
      analysis::CallProfile::from_context(native.context());

  // Trust fixpoint + min-cut plan.
  const analysis::TrustFacts trust = analysis::analyze_trust(app);
  const analysis::PartitionPlan plan = analysis::optimize_partition(
      app, trust, profile, CostModel::paper());
  for (const auto& cls : trust.secret_classes()) {
    const analysis::ClassPlacement* p = plan.find(cls);
    if (p != nullptr && p->after != model::Annotation::kTrusted) {
      gate_failure("a secret-carrying class left the enclave");
    }
  }

  // 2+2 replays: original twice, optimized twice.
  const auto shared = std::make_shared<analysis::PartitionPlan>(plan);
  const ReplayResult base1 = replay(app, nullptr);
  const ReplayResult base2 = replay(app, nullptr);
  const ReplayResult opt1 = replay(app, shared);
  const ReplayResult opt2 = replay(app, shared);
  if (base1.digest != base2.digest || opt1.digest != opt2.digest) {
    gate_failure("replay nondeterministic: two runs of one partition "
                 "disagree");
  }
  if (base1.digest != opt1.digest) {
    gate_failure("optimized partition changed observable output");
  }
  const double reduction =
      base1.crossings == 0
          ? 0.0
          : 100.0 * static_cast<double>(base1.crossings - opt1.crossings) /
                static_cast<double>(base1.crossings);
  if (reduction < 20.0) {
    gate_failure("crossing reduction below the 20% acceptance floor");
  }

  Table table({"partition", "crossings", "workload time"});
  table.add_row({"annotated (@Trusted all)", std::to_string(base1.crossings),
                 bench::fmt_s(base1.seconds)});
  table.add_row({"optimized (min-cut plan)", std::to_string(opt1.crossings),
                 bench::fmt_s(opt1.seconds)});
  table.print();
  std::printf(
      "\n%zu class(es) moved out, %zu secret class(es) pinned inside;\n"
      "crossings %" PRIu64 " -> %" PRIu64
      " (%.1f%% fewer), replay digest 0x%" PRIx64
      " byte-identical across 2+2 runs\n",
      plan.moved.size(), trust.secret_classes().size(), base1.crossings,
      opt1.crossings, reduction, base1.digest);

  if (!opt.json_path.empty()) {
    bench::JsonReport report("abl_partition");
    report.add_metric("n_classes", static_cast<std::uint64_t>(spec.n_classes));
    report.add_metric("crossings_before", base1.crossings);
    report.add_metric("crossings_after", opt1.crossings);
    report.add_metric("crossing_reduction_pct", reduction);
    report.add_metric("classes_moved",
                      static_cast<std::uint64_t>(plan.moved.size()));
    report.add_metric("secret_classes_pinned",
                      static_cast<std::uint64_t>(trust.secret_classes().size()));
    report.add_metric("modeled_cost_before", plan.modeled_cost_before);
    report.add_metric("modeled_cost_after", plan.modeled_cost_after);
    report.add_metric("sim_seconds_before", base1.seconds);
    report.add_metric("sim_seconds_after", opt1.seconds);
    report.add_metric("plan_digest", plan.digest);
    report.add_metric("replay_digest", base1.digest);
    report.add_table("partition", table);
    if (!report.write(opt.json_path)) return 1;
  }
  return 0;
}
