// stress_tcs (DESIGN.md §17): TCS pool exhaustion under open-loop
// saturation.
//
// Eight tenants submit through an open-loop Poisson process whose mean
// interarrival sits well past the serial service capacity, so arrivals
// clump into bursts that pile every worker onto the enclave door at once.
// Armed = a 2-slot TCS pool (the door is the bottleneck); disarmed = 8
// slots (one per entering worker — the queueing delay must be *exactly*
// zero, the fig_server contract). Both run with hardware transitions and
// again with switchless worker rings: ring workers stay resident inside
// the enclave, so the rings don't just change what a transition costs —
// they keep bursts off the TCS door entirely, and the armed+rings row
// shows the exhaustion disappearing.
//
// Gates: zero waits at full provisioning, strictly positive wait cycles
// and a heavier tail when armed, wait-cycle attribution consistent with
// the wait count (regression guard for the pending-grant fast-path bug),
// and a byte-identical repeat run of the armed scenario.
#include <cinttypes>
#include <string>

#include "apps/illustrative/bank.h"
#include "bench/bench_common.h"
#include "bench/stress_common.h"
#include "core/multi_app.h"
#include "sched/scheduler.h"
#include "server/harness.h"
#include "server/server.h"

namespace msv {
namespace {

constexpr std::uint32_t kTenants = 8;

struct RunResult {
  server::HarnessReport report;
  sgx::BridgeStats bridge;
  std::uint64_t max_waiters = 0;  // TcsPool high-water mark
};

RunResult run_burst(std::uint32_t tcs_slots, bool switchless,
                    const server::OpenLoopSpec& spec) {
  core::AppConfig app_cfg;
  app_cfg.tcs.slots = tcs_slots;
  server::ServerConfig srv_cfg;
  srv_cfg.switchless = switchless;

  core::MultiIsolateApp app(apps::build_bank_app(), kTenants, app_cfg);
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, srv_cfg);
  server::LoadHarness harness(srv);
  RunResult r;
  r.report = harness.run_open_loop(spec);
  srv.stop();
  r.bridge = app.bridge().stats();
  r.max_waiters = app.enclave().tcs().stats().max_waiters;
  return r;
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);

  bench::print_header("stress_tcs",
                      "TCS pool exhaustion under bursty open-loop load");
  bench::JsonReport report("stress_tcs");

  server::OpenLoopSpec spec;
  spec.requests_per_tenant = opt.smoke ? 40 : 150;
  // fig_server's stable operating point: the server keeps up overall, so
  // Poisson bursts are what pile workers onto the door — and the TCS
  // queueing delay lands in the tail instead of disappearing into an
  // open-loop backlog that would swamp any pool's contribution.
  spec.mean_interarrival_cycles = 400'000;
  spec.gc_every = 0;
  report.add_metric("requests", spec.requests_per_tenant);

  struct Scenario {
    const char* key;
    std::uint32_t slots;
    bool switchless;
  };
  const Scenario scenarios[] = {
      {"slots8_hw", 8, false},    // disarmed, hardware transitions
      {"slots2_hw", 2, false},    // armed: the door is the bottleneck
      {"slots8_ring", 8, true},   // disarmed, switchless rings
      {"slots2_ring", 2, true},   // armed + rings
  };

  Table table({"scenario", "tcs waits", "wait cycles", "max waiters",
               "throughput", "p50", "p99"});
  std::uint64_t armed_hw_waits = 0, disarmed_hw_waits = 0;
  double armed_hw_p99 = 0, disarmed_hw_p99 = 0;
  for (const Scenario& sc : scenarios) {
    const RunResult r = run_burst(sc.slots, sc.switchless, spec);
    table.add_row(
        {sc.key, std::to_string(r.bridge.tcs_waits),
         std::to_string(r.bridge.tcs_wait_cycles),
         std::to_string(r.max_waiters),
         format_fixed(r.report.throughput_rps / 1e3, 1) + "k/s",
         format_fixed(r.report.aggregate.p50_us, 1) + "us",
         format_fixed(r.report.aggregate.p99_us, 1) + "us"});
    const std::string key = sc.key;
    report.add_metric(key + "_waits", r.bridge.tcs_waits);
    report.add_metric(key + "_wait_cycles", r.bridge.tcs_wait_cycles);
    report.add_metric(key + "_max_waiters", r.max_waiters);
    report.add_metric(key + "_throughput_rps", r.report.throughput_rps);
    report.add_metric(key + "_p99_us", r.report.aggregate.p99_us);
    report.add_metric(key + "_completed", r.report.completed);

    // Attribution consistency: cycles and counts must agree — waits with
    // zero cycles (or cycles with zero waits) is exactly the shape of the
    // pending-grant accounting bug.
    bench::stress::gate(
        (r.bridge.tcs_waits == 0) == (r.bridge.tcs_wait_cycles == 0),
        std::string(sc.key) + ": wait cycles must be attributed iff "
        "arrivals actually queued");
    if (r.bridge.tcs_waits > 0) {
      const double avg = static_cast<double>(r.bridge.tcs_wait_cycles) /
                         static_cast<double>(r.bridge.tcs_waits);
      bench::stress::gate(avg >= 1.0 &&
                              avg < static_cast<double>(r.report.final_clock),
                          std::string(sc.key) +
                              ": per-wait attribution out of range");
    }

    if (std::string(sc.key) == "slots2_hw") {
      armed_hw_waits = r.bridge.tcs_waits;
      armed_hw_p99 = r.report.aggregate.p99_us;
    } else if (std::string(sc.key) == "slots8_hw") {
      disarmed_hw_waits = r.bridge.tcs_waits;
      disarmed_hw_p99 = r.report.aggregate.p99_us;
    }
  }
  std::printf("TCS exhaustion (%u tenants, open loop at %" PRIu64
              "-cycle mean interarrival):\n",
              kTenants, spec.mean_interarrival_cycles);
  table.print();
  report.add_table("tcs_exhaustion", table);

  bench::stress::gate(disarmed_hw_waits == 0,
                      "at one slot per entering worker the queueing delay "
                      "must be exactly zero");
  bench::stress::gate(armed_hw_waits > 0,
                      "the armed pool must actually exhaust");
  bench::stress::gate(armed_hw_p99 > disarmed_hw_p99,
                      "pool exhaustion must surface in the tail");
  report.add_metric("exhaustion_p99_ratio", armed_hw_p99 / disarmed_hw_p99);

  // Determinism: the armed scenario repeated must be cycle-identical.
  const RunResult a = run_burst(2, false, spec);
  const RunResult b = run_burst(2, false, spec);
  bench::stress::gate(a.report.final_clock == b.report.final_clock &&
                          a.report.latency_cycle_sum ==
                              b.report.latency_cycle_sum &&
                          a.bridge.tcs_wait_cycles == b.bridge.tcs_wait_cycles,
                      "two armed runs must agree cycle-for-cycle");
  report.add_metric("determinism_final_clock_cycles", a.report.final_clock);

  std::printf(
      "\nAt 8 slots the pool never queues; at 2 the bursts stack FIFO "
      "waiters on the door and the\nwait cycles land in the tail — with "
      "rings or hardware transitions alike.\n");
  if (!opt.json_path.empty() && !report.write(opt.json_path)) return 1;
  return 0;
}
