// Ablation B: the RMI hot-path machinery (interned call IDs, wire-buffer
// arena, primitive fixed-layout encoder).
//
// Unlike the other benchmarks, the quantity of interest here is HOST
// wall-clock throughput: the fast path is a pure simulator optimisation
// and must leave every simulated cycle unchanged. Each scenario therefore
// runs twice — once with AppConfig::fast_rmi = false (the legacy
// string-dispatch path: per-call name hashing, fresh wire buffers, eagerly
// built ref-encoder closures) and once with the fast path — and the run
// aborts if the two disagree on a single simulated cycle.
//
// Scenarios: {hardware transition, switchless} x {all-primitive signature
// (Worker.set(int)), generic signature (Worker.set_list(List))}.
#include <chrono>
#include <cinttypes>
#include <cstdlib>

#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

struct RunResult {
  double wall_sec = 0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t fast_path_calls = 0;
};

RunResult run(bool fast, bool switchless, bool primitive, std::int64_t n,
              int reps) {
  core::AppConfig config;
  config.fast_rmi = fast;
  config.switchless_relays = switchless;
  core::PartitionedApp app(apps::synthetic::build_micro_app(), config);
  auto& u = app.untrusted_context();

  const rt::Value w = u.construct("Worker", {});
  const model::ClassDecl& proxy_cls = u.classes().cls("Worker");
  const model::MethodDecl* stub =
      proxy_cls.find_method(primitive ? "set" : "set_list");
  std::vector<rt::Value> args;
  if (primitive) {
    args.push_back(rt::Value(std::int32_t{7}));
  } else {
    args.push_back(rt::Value(rt::ValueList{
        rt::Value(std::int32_t{1}), rt::Value(std::int32_t{2}),
        rt::Value(std::int32_t{3})}));
  }

  // Warm-up: resolve plans, fault in the arena, settle the registries.
  for (int i = 0; i < 64; ++i) {
    app.rmi().invoke_proxy(u, w.as_ref(), proxy_cls, *stub, args);
  }

  // Best-of-`reps` wall clock: the host is a shared machine and the
  // minimum over several identical passes is the standard estimator for a
  // CPU-bound loop. Simulated cycles accumulate over ALL passes — legacy
  // and fast replay the same simulated timeline, so the totals must agree
  // to the cycle (checked by the caller).
  RunResult r;
  const Cycles sim0 = app.env().clock.now();
  const std::uint64_t fp0 = app.rmi().stats().fast_path_calls;
  for (int rep = 0; rep < reps; ++rep) {
    const auto wall0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < n; ++i) {
      app.rmi().invoke_proxy(u, w.as_ref(), proxy_cls, *stub, args);
    }
    const auto wall1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(wall1 - wall0).count();
    if (rep == 0 || wall < r.wall_sec) r.wall_sec = wall;
  }
  r.sim_cycles = app.env().clock.now() - sim0;
  r.fast_path_calls =
      (app.rmi().stats().fast_path_calls - fp0) / static_cast<unsigned>(reps);
  return r;
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
  const std::int64_t n = opt.smoke ? 2'000 : 50'000;
  const int reps = opt.smoke ? 2 : 7;

  bench::print_header("Ablation B",
                      "RMI hot path: interned IDs + buffer arena + "
                      "primitive encoder (host wall-clock)");

  Table table({"mode", "signature", "legacy calls/s", "fast calls/s",
               "speedup", "sim cycles"});
  bench::JsonReport report("abl_rmi_fastpath");
  report.add_metric("invocations", static_cast<std::uint64_t>(n));

  bool cycles_identical = true;
  for (const bool switchless : {false, true}) {
    for (const bool primitive : {true, false}) {
      const RunResult legacy = run(false, switchless, primitive, n, reps);
      const RunResult fast = run(true, switchless, primitive, n, reps);
      if (legacy.sim_cycles != fast.sim_cycles) {
        std::fprintf(stderr,
                     "FATAL: simulated cycles diverge (legacy %" PRIu64
                     ", fast %" PRIu64 ") — the fast path changed results\n",
                     legacy.sim_cycles, fast.sim_cycles);
        cycles_identical = false;
      }
      if (primitive && fast.fast_path_calls != static_cast<std::uint64_t>(n)) {
        std::fprintf(stderr,
                     "FATAL: primitive fast path engaged on %" PRIu64
                     " of %" PRId64 " calls\n",
                     fast.fast_path_calls, n);
        cycles_identical = false;
      }

      const double legacy_cps = static_cast<double>(n) / legacy.wall_sec;
      const double fast_cps = static_cast<double>(n) / fast.wall_sec;
      const double speedup = fast_cps / legacy_cps;
      const std::string mode = switchless ? "switchless" : "transition";
      const std::string sig = primitive ? "primitive" : "generic";
      table.add_row({mode, sig, format_fixed(legacy_cps / 1e6, 2) + "M",
                     format_fixed(fast_cps / 1e6, 2) + "M",
                     bench::fmt_x(speedup),
                     legacy.sim_cycles == fast.sim_cycles ? "identical"
                                                          : "DIVERGED"});
      const std::string key = mode + "_" + sig;
      report.add_metric("legacy_calls_per_sec_" + key, legacy_cps);
      report.add_metric("fast_calls_per_sec_" + key, fast_cps);
      report.add_metric("speedup_" + key, speedup);
      report.add_metric("sim_cycles_" + key, fast.sim_cycles);
    }
  }
  table.print();
  std::printf(
      "\nLegacy = pre-overhaul string dispatch (per-call name hashing, "
      "fresh buffers, eager\nref-encoder closures). Simulated cycles are "
      "asserted identical: only host time changes.\n");
  if (!opt.json_path.empty()) {
    report.add_table("rmi_fastpath", table);
    if (!report.write(opt.json_path)) return 1;
  }
  return cycles_identical ? 0 : 1;
}
