// Serving-layer figure (DESIGN.md §8): a multi-tenant enclave request
// server under open-loop load.
//
// Three sweeps over an 8-tenant bank workload (one trusted isolate per
// tenant behind one enclave, requests admitted through bounded queues and
// served by fiber workers on the deterministic scheduler):
//
//   1. Offered load: throughput and p50/p95/p99 latency as the per-tenant
//      Poisson arrival rate rises past the service capacity.
//   2. TCS pool size: with fewer TCS slots than concurrently-entering
//      workers the queueing delay surfaces in BridgeStats::tcs_wait_cycles
//      and in the tail percentiles; at slots >= workers it vanishes.
//   3. Switchless policy: hardware transitions vs. worker rings under the
//      busy-wait and sleep/wake wake policies.
//
// Determinism contract (ISSUE 2 acceptance): the base scenario runs twice
// with the same seed and the run aborts unless both runs agree on the
// final simulated clock, the exact latency-cycle sum, and every reported
// percentile. All latencies are simulated time; only the event order of
// the fiber scheduler — itself deterministic — decides interleaving.
#include <cinttypes>
#include <string>

#include "apps/illustrative/bank.h"
#include "bench/bench_common.h"
#include "core/multi_app.h"
#include "sched/scheduler.h"
#include "server/harness.h"
#include "server/server.h"
#include "support/error.h"
#include "telemetry/adapters.h"
#include "telemetry/export.h"

namespace msv {
namespace {

constexpr std::uint32_t kTenants = 8;

struct RunResult {
  server::HarnessReport report;
  sgx::BridgeStats bridge;
  // Rendered telemetry artifacts; empty unless app_cfg.trace enables them
  // (--trace-out / --metrics-out, DESIGN.md §10).
  std::string trace_json;
  std::string metrics_text;
  std::string ascii_trace;  // one request's causal tree, for the console
};

RunResult run_workload(const core::AppConfig& app_cfg,
                       const server::ServerConfig& srv_cfg,
                       const server::OpenLoopSpec& spec) {
  // Declaration order is the destruction contract: the server stops (and
  // the scheduler cancels its fibers) before the app's bridge dies.
  core::MultiIsolateApp app(apps::build_bank_app(), kTenants, app_cfg);
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, srv_cfg);
  server::LoadHarness harness(srv);
  RunResult r;
  r.report = harness.run_open_loop(spec);
  r.bridge = app.bridge().stats();
  srv.stop();
  telemetry::Telemetry& tel = app.env().telemetry;
  if (tel.metrics_enabled()) {
    // Absorb every subsystem's stats into the shared registry, then
    // render, all before teardown. Stats are re-read after stop() so the
    // switchless-ring teardown folds are included.
    telemetry::MetricsRegistry& m = tel.metrics();
    telemetry::publish_bridge(m, app.bridge().stats());
    telemetry::publish_epc(m, app.enclave().epc().stats());
    telemetry::publish_tcs(m, app.enclave().tcs().stats());
    telemetry::publish_scheduler(m, sched.stats());
    telemetry::publish_server(m, srv.stats());
    for (std::uint32_t t = 0; t < srv.tenant_count(); ++t) {
      telemetry::publish_tenant(m, srv.tenant_stats(t), t);
    }
    for (std::uint32_t i = 0; i < app.isolate_count(); ++i) {
      telemetry::publish_heap(
          m, app.trusted_context(i).isolate().heap().stats(),
          "trusted-" + std::to_string(i));
    }
    telemetry::publish_heap(
        m, app.untrusted_context().isolate().heap().stats(), "untrusted");
    telemetry::publish_tracer_self(m, tel.tracer());
    r.metrics_text = telemetry::prometheus_text(m);
  }
  if (tel.tracing_enabled()) {
    r.trace_json =
        telemetry::chrome_trace_json(tel.tracer(), app.env().clock.hz());
    // Render the last completed request's causal tree (the steady-state
    // picture; early requests hit cold heaps and EPC).
    const telemetry::Tracer& tr = tel.tracer();
    const std::uint32_t request_name = tel.names().request;
    std::uint64_t request_trace = 0;
    for (const auto& s : tr.spans()) {
      if (!s.open && s.name == request_name) request_trace = s.trace_id;
    }
    if (request_trace != 0) {
      r.ascii_trace =
          telemetry::ascii_trace(tr, app.env().clock.hz(), request_trace, 40);
    }
  }
  return r;
}

std::string fmt_us(double us) { return format_fixed(us, 1) + "us"; }

std::string fmt_krps(double rps) {
  return format_fixed(rps / 1e3, 1) + "k/s";
}

void add_latency_metrics(bench::JsonReport& report, const std::string& key,
                         const RunResult& r) {
  report.add_metric(key + "_throughput_rps", r.report.throughput_rps);
  report.add_metric(key + "_p50_us", r.report.aggregate.p50_us);
  report.add_metric(key + "_p95_us", r.report.aggregate.p95_us);
  report.add_metric(key + "_p99_us", r.report.aggregate.p99_us);
  report.add_metric(key + "_completed", r.report.completed);
  report.add_metric(key + "_shed", r.report.shed);
  report.add_metric(key + "_final_clock_cycles", r.report.final_clock);
  report.add_metric(key + "_latency_cycle_sum", r.report.latency_cycle_sum);
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t requests = opt.smoke ? 40 : 400;

  bench::print_header("Serving layer",
                      "8-tenant open-loop enclave serving: load sweep, TCS "
                      "pool sweep, switchless policies");
  bench::JsonReport report("fig_server");
  report.add_metric("tenants", static_cast<std::uint64_t>(kTenants));
  report.add_metric("requests_per_tenant", requests);

  server::OpenLoopSpec base_spec;
  base_spec.requests_per_tenant = requests;
  base_spec.mean_interarrival_cycles = 400'000;
  base_spec.gc_every = requests / 4;  // periodic per-isolate collections
  server::ServerConfig base_srv;
  base_srv.shed_on_full = false;
  base_srv.max_queue_depth = 1024;

  // --- Determinism self-check (acceptance criterion) ----------------------
  // The base scenario runs twice with full telemetry: beyond the clock /
  // latency / percentile agreement, the rendered Chrome trace JSON and the
  // metrics dump must be byte-identical — the determinism property only a
  // simulated-clock tracer can offer. Because telemetry never advances the
  // virtual clock, these traced runs report the same cycle totals an
  // untraced run would.
  {
    core::AppConfig traced_cfg;
    traced_cfg.trace.mode = telemetry::TraceMode::kFull;
    // Coalescing stays on here: the batched RMI dispatch (DESIGN.md §13)
    // must be exactly as deterministic as the single-request path.
    server::ServerConfig det_srv = base_srv;
    det_srv.coalesce_max = 4;
    const RunResult a = run_workload(traced_cfg, det_srv, base_spec);
    const RunResult b = run_workload(traced_cfg, det_srv, base_spec);
    MSV_CHECK_MSG(a.report.final_clock == b.report.final_clock,
                  "same seed, different simulated-cycle totals");
    MSV_CHECK_MSG(a.report.latency_cycle_sum == b.report.latency_cycle_sum,
                  "same seed, different latency cycle sums");
    MSV_CHECK_MSG(a.report.aggregate.p50_us == b.report.aggregate.p50_us &&
                      a.report.aggregate.p95_us == b.report.aggregate.p95_us &&
                      a.report.aggregate.p99_us == b.report.aggregate.p99_us,
                  "same seed, different percentiles");
    MSV_CHECK_MSG(a.report.completed == kTenants * requests,
                  "workload did not run to completion");
    MSV_CHECK_MSG(!a.trace_json.empty() && a.trace_json == b.trace_json,
                  "same seed, different trace JSON");
    MSV_CHECK_MSG(!a.metrics_text.empty() &&
                      a.metrics_text == b.metrics_text,
                  "same seed, different metrics dump");
    std::printf("determinism self-check: two runs, identical clock (%" PRIu64
                " cycles), latency sum, percentiles, trace JSON (%zu bytes) "
                "and metrics dump\n\n",
                a.report.final_clock, a.trace_json.size());
    report.add_metric("determinism_final_clock_cycles", a.report.final_clock);
    report.add_metric("determinism_latency_cycle_sum",
                      a.report.latency_cycle_sum);
    report.add_metric("determinism_trace_bytes",
                      static_cast<std::uint64_t>(a.trace_json.size()));
    if (!opt.trace_path.empty() &&
        !bench::write_text_file(opt.trace_path, a.trace_json)) {
      return 1;
    }
    if (!opt.metrics_path.empty() &&
        !bench::write_text_file(opt.metrics_path, a.metrics_text)) {
      return 1;
    }
    if (!opt.trace_path.empty()) {
      std::printf("trace written to %s\n", opt.trace_path.c_str());
      if (!a.ascii_trace.empty()) {
        std::printf("\none request's causal tree (last completed):\n%s",
                    a.ascii_trace.c_str());
      }
    }
    if (!opt.metrics_path.empty()) {
      std::printf("metrics written to %s\n\n", opt.metrics_path.c_str());
    }
  }

  // --- Sweep 1: offered load ----------------------------------------------
  {
    Table table({"mean gap", "offered/s", "throughput", "p50", "p95", "p99",
                 "max"});
    for (const Cycles gap :
         {25'600'000, 12'800'000, 6'400'000, 1'600'000, 400'000, 100'000}) {
      server::OpenLoopSpec spec = base_spec;
      spec.mean_interarrival_cycles = gap;
      const RunResult r = run_workload({}, base_srv, spec);
      const double hz = CostModel{}.cpu_hz;
      const double offered =
          static_cast<double>(kTenants) * hz / static_cast<double>(gap);
      table.add_row({std::to_string(gap / 1000) + "k cyc",
                     fmt_krps(offered), fmt_krps(r.report.throughput_rps),
                     fmt_us(r.report.aggregate.p50_us),
                     fmt_us(r.report.aggregate.p95_us),
                     fmt_us(r.report.aggregate.p99_us),
                     fmt_us(r.report.aggregate.max_us)});
      add_latency_metrics(report, "load_gap_" + std::to_string(gap), r);
    }
    std::printf("Open-loop load sweep (%u tenants, GC every %" PRIu64
                " requests on tenant 0):\n",
                kTenants, base_spec.gc_every);
    table.print();
    report.add_table("load_sweep", table);
  }

  // --- Sweep 2: TCS pool size ----------------------------------------------
  {
    Table table({"TCS slots", "tcs waits", "wait cycles", "p50", "p99"});
    server::OpenLoopSpec spec = base_spec;
    spec.mean_interarrival_cycles = 100'000;  // saturating
    spec.gc_every = 0;
    for (const std::uint32_t slots : {1u, 2u, 4u, 8u, 16u}) {
      core::AppConfig app_cfg;
      app_cfg.tcs.slots = slots;
      const RunResult r = run_workload(app_cfg, base_srv, spec);
      table.add_row({std::to_string(slots),
                     std::to_string(r.bridge.tcs_waits),
                     std::to_string(r.bridge.tcs_wait_cycles),
                     fmt_us(r.report.aggregate.p50_us),
                     fmt_us(r.report.aggregate.p99_us)});
      const std::string key = "tcs_slots_" + std::to_string(slots);
      report.add_metric(key + "_waits", r.bridge.tcs_waits);
      report.add_metric(key + "_wait_cycles", r.bridge.tcs_wait_cycles);
      add_latency_metrics(report, key, r);
    }
    std::printf("\nTCS pool sweep (saturating load, %u workers entering):\n",
                kTenants);
    table.print();
    report.add_table("tcs_sweep", table);
    std::printf(
        "\nWith fewer slots than concurrently-entering workers the queueing "
        "delay is visible in\nBridgeStats::tcs_wait_cycles and the tail; at "
        "slots >= workers it is exactly zero.\n");
  }

  // --- Sweep 3: switchless policy ------------------------------------------
  {
    Table table({"relay path", "throughput", "p50", "p99", "wakeups",
                 "idle spin cycles"});
    server::OpenLoopSpec spec = base_spec;
    spec.gc_every = 0;
    struct Scenario {
      const char* name;
      bool switchless;
      sgx::SwitchlessConfig::WakePolicy policy;
    };
    const Scenario scenarios[] = {
        {"hardware transitions", false,
         sgx::SwitchlessConfig::WakePolicy::kBusyWait},
        {"ring, busy-wait", true,
         sgx::SwitchlessConfig::WakePolicy::kBusyWait},
        {"ring, sleep/wake", true,
         sgx::SwitchlessConfig::WakePolicy::kSleepWake},
    };
    for (const Scenario& sc : scenarios) {
      server::ServerConfig srv_cfg = base_srv;
      srv_cfg.switchless = sc.switchless;
      srv_cfg.ecall_ring.policy = sc.policy;
      srv_cfg.ocall_ring.policy = sc.policy;
      const RunResult r = run_workload({}, srv_cfg, spec);
      table.add_row({sc.name, fmt_krps(r.report.throughput_rps),
                     fmt_us(r.report.aggregate.p50_us),
                     fmt_us(r.report.aggregate.p99_us),
                     std::to_string(r.bridge.switchless_worker_wakeups),
                     std::to_string(r.bridge.switchless_idle_spin_cycles)});
      std::string key = sc.name;
      for (char& c : key) {
        if (c == ' ' || c == ',' || c == '/' || c == '-') c = '_';
      }
      add_latency_metrics(report, key, r);
    }
    std::printf("\nSwitchless policy sweep:\n");
    table.print();
    std::printf(
        "\nBusy-wait workers burn a dedicated core while idle (attributed, "
        "never charged to the\nserving timeline); sleep/wake workers charge "
        "a futex-wake per wakeup instead.\n");
    report.add_table("switchless_sweep", table);
  }

  // --- Sweep 4: request coalescing ------------------------------------------
  {
    Table table({"coalesce max", "ecalls", "throughput", "p50", "p99"});
    server::OpenLoopSpec spec = base_spec;
    spec.mean_interarrival_cycles = 100'000;  // saturating: real backlogs
    spec.gc_every = 0;
    for (const std::uint32_t cmax : {1u, 2u, 4u, 8u}) {
      server::ServerConfig srv_cfg = base_srv;
      srv_cfg.coalesce_max = cmax;
      const RunResult r = run_workload({}, srv_cfg, spec);
      table.add_row({std::to_string(cmax), std::to_string(r.bridge.ecalls),
                     fmt_krps(r.report.throughput_rps),
                     fmt_us(r.report.aggregate.p50_us),
                     fmt_us(r.report.aggregate.p99_us)});
      const std::string key = "coalesce_" + std::to_string(cmax);
      report.add_metric(key + "_ecalls", r.bridge.ecalls);
      add_latency_metrics(report, key, r);
    }
    std::printf("\nCoalescing sweep (saturating load, batched RMI dispatch, "
                "DESIGN.md §13):\n");
    table.print();
    report.add_table("coalesce_sweep", table);
    std::printf(
        "\nA worker waking to a backlog drains up to coalesce_max requests "
        "into one\ntransition; under saturation the 13,100-cycle ecall and "
        "the isolate attach\namortize across the batch and the tail "
        "percentiles drop.\n");
  }

  if (!opt.json_path.empty()) {
    if (!report.write(opt.json_path)) return 1;
  }
  return 0;
}
