// Enclave-fleet figure (DESIGN.md §14): consistent-hash sharding, passive
// replicas, and failover routing under Zipfian multi-tenant load.
//
// Three scenarios over a 64-tenant bank workload (Zipf s=1.1, one
// fleet-wide open-loop Poisson arrival process):
//
//   1. Shard-count sweep: 2/4/8 enclaves, no faults. Throughput scales
//      with shards while the ring keeps per-shard residency balanced.
//   2. Loss-with-failover storm: targeted enclave-loss events against a
//      4-shard fleet, replication OFF (restart-and-restore ladder) vs ON
//      (warm-standby promotion). Acceptance gate: the restart fleet's
//      p99 must be at least 3x the promoted fleet's p99.
//   3. Hot-tenant migration: mid-run, the Zipf head tenant is drained
//      behind the coalescing fence and moved to the coldest shard.
//   4. Health-under-storm (DESIGN.md §16): the restart-ladder storm again,
//      now with the SLO monitor, the flight recorder and the sampling
//      profiler armed. Gates: the monitor flags every injured shard
//      degraded no later than its recovery ladder fires, every enclave
//      loss yields a post-mortem, arming the health stack costs zero
//      simulated cycles, and two armed runs emit byte-identical health
//      report / post-mortem bundle / folded stacks.
//
// Determinism contract: the replicated storm scenario runs twice with
// full tracing; the bench aborts unless both runs agree on the final
// simulated clock, the latency-cycle sum, every fleet counter, and the
// rendered trace JSON and metrics text byte-for-byte — fleet-wide, across
// every enclave, worker, and injector.
#include <algorithm>
#include <cinttypes>
#include <memory>
#include <string>
#include <vector>

#include "apps/illustrative/bank.h"
#include "bench/bench_common.h"
#include "faults/plan.h"
#include "fleet/load.h"
#include "fleet/router.h"
#include "sched/scheduler.h"
#include "support/error.h"
#include "telemetry/adapters.h"
#include "telemetry/export.h"
#include "telemetry/flight.h"
#include "telemetry/sampler.h"
#include "telemetry/slo.h"

namespace msv {
namespace {

constexpr std::uint32_t kTenants = 64;

struct FleetRunResult {
  fleet::FleetLoadReport rep;
  fleet::FleetStats stats;
  std::vector<fleet::ShardStats> shards;
  std::vector<std::uint32_t> residents;
  std::string trace_json;
  std::string metrics_text;
  // Health-stack artifacts (scenario 4; empty unless sc.health).
  std::string health_report;
  std::string postmortem_bundle;
  std::string folded_stacks;
  std::uint64_t postmortems = 0;
  std::uint64_t losses_injected = 0;
  std::uint64_t profile_samples = 0;
  // Per shard: when the monitor first held it degraded (0 = never).
  std::vector<Cycles> first_degraded;
};

struct FleetScenario {
  std::uint32_t shards = 4;
  bool replication = false;
  std::uint32_t shard_losses = 0;  // targeted loss storm (plan seed below)
  bool migrate_hottest = false;    // mid-run hot-tenant migration
  bool health = false;  // arm SLO monitor + flight recorder + profiler
  telemetry::TraceMode trace = telemetry::TraceMode::kOff;
};

FleetRunResult run_fleet(const FleetScenario& sc,
                         const fleet::FleetLoadSpec& spec) {
  const model::AppModel model = apps::build_bank_app();
  Env env;
  telemetry::TraceConfig tc;
  tc.mode = sc.trace;
  env.telemetry.configure(tc);
  sched::Scheduler sched(env);

  fleet::FleetConfig fc;
  fc.shards = sc.shards;
  fc.tenants = kTenants;
  fc.shard.replication = sc.replication;
  fc.shard.workers = 2;
  fc.shard.coalesce_max = 4;
  fc.shard.recovery.enabled = true;
  fc.shard.recovery.checkpoint_every = 2;
  fc.slo_enabled = sc.health;  // observe mode: no routing change
  fleet::FleetRouter router(env, sched, model, fc);

  // The health stack attaches *before* start(): the SLO monitor via the
  // router config, the flight bus on the telemetry spine, the profiler on
  // the scheduler. None of them ever advances the virtual clock, so the
  // armed run's cycle totals must equal the unarmed run's exactly — the
  // "overhead" gate scenario 4 asserts.
  std::unique_ptr<telemetry::FlightBus> flight;
  std::unique_ptr<telemetry::SampleProfiler> sampler;
  if (sc.health) {
    flight = std::make_unique<telemetry::FlightBus>(env.telemetry);
    env.telemetry.set_flight(flight.get());
    sampler = std::make_unique<telemetry::SampleProfiler>(
        env.clock, env.telemetry.tracer(), /*interval_cycles=*/1'000'000);
    sched.set_sampler(sampler.get());
  }
  router.start();

  if (sc.shard_losses > 0) {
    // Start first, then shift the plan window to "now": losses land while
    // the fleet is serving, never during setup.
    const Cycles run_start = env.clock.now();
    faults::FaultPlanConfig pc;
    pc.seed = 11;
    pc.horizon = static_cast<Cycles>(spec.requests) *
                 spec.mean_interarrival_cycles;
    pc.fleet_shards = sc.shards;
    pc.shard_losses = sc.shard_losses;
    faults::FaultPlan plan;
    for (faults::FaultEvent e :
         faults::FaultPlan::generate(pc).events()) {
      e.at += run_start;
      plan.add(e);
    }
    router.attach_fault_plan(plan);
  }

  if (sc.migrate_hottest) {
    // Half-window in, move the Zipf head tenant to the shard with the
    // least traffic so far. Spawned before the generator: deterministic
    // interleaving under the fiber scheduler.
    sched.spawn("migrator", [&] {
      sched.sleep_for(static_cast<Cycles>(spec.requests / 2) *
                      spec.mean_interarrival_cycles);
      const std::uint32_t hot = router.hottest_tenant();
      const std::uint32_t from = router.shard_of(hot);
      std::uint32_t coldest = from;
      std::uint64_t best = ~0ull;
      for (std::uint32_t k = 0; k < router.shard_count(); ++k) {
        if (k == from) continue;
        if (router.shard(k).stats().accepted < best) {
          best = router.shard(k).stats().accepted;
          coldest = k;
        }
      }
      router.migrate_tenant(hot, coldest);
    });
  }

  fleet::FleetLoad load(router);
  FleetRunResult r;
  r.rep = load.run(spec);
  r.stats = router.stats();
  for (std::uint32_t k = 0; k < router.shard_count(); ++k) {
    r.shards.push_back(router.shard(k).stats());
    r.residents.push_back(router.shard(k).resident_count());
    if (const faults::FaultInjector* inj = router.injector_for(k)) {
      r.losses_injected += inj->stats().enclave_losses;
    }
  }
  telemetry::Telemetry& tel = env.telemetry;
  if (tel.metrics_enabled()) {
    router.publish_metrics();
    telemetry::publish_scheduler(tel.metrics(), sched.stats());
    telemetry::publish_tracer_self(tel.metrics(), tel.tracer());
    if (flight != nullptr) flight->publish(tel.metrics());
    if (sampler != nullptr) sampler->publish(tel.metrics());
    r.metrics_text = telemetry::prometheus_text(tel.metrics());
  }
  if (tel.tracing_enabled()) {
    r.trace_json = telemetry::chrome_trace_json(tel.tracer(), env.clock.hz());
  }
  if (sc.health) {
    telemetry::SloMonitor& slo = *router.slo();
    r.health_report = slo.report(env.clock.hz());
    for (std::uint32_t k = 0; k < router.shard_count(); ++k) {
      r.first_degraded.push_back(
          slo.first_entered(k, telemetry::HealthState::kDegraded));
    }
    r.postmortem_bundle = flight->bundle_json(env.clock.hz());
    r.postmortems = flight->post_mortems().size();
    r.folded_stacks = sampler->folded();
    r.profile_samples = sampler->samples();
  }
  router.stop();
  // Detach before the bus/profiler die (the scheduler and telemetry spine
  // outlive this frame only inside run_fleet, but stay tidy regardless).
  sched.set_sampler(nullptr);
  env.telemetry.set_flight(nullptr);
  return r;
}

std::string fmt_us(double us) { return format_fixed(us, 1) + "us"; }

std::string fmt_krps(double rps) {
  return format_fixed(rps / 1e3, 1) + "k/s";
}

void add_fleet_metrics(bench::JsonReport& report, const std::string& key,
                       const FleetRunResult& r) {
  report.add_metric(key + "_accepted", r.stats.accepted);
  report.add_metric(key + "_completed", r.stats.completed);
  report.add_metric(key + "_shed", r.stats.shed);
  report.add_metric(key + "_failed", r.stats.failed);
  report.add_metric(key + "_retries", r.stats.retries);
  report.add_metric(key + "_promotions", r.stats.promotions);
  report.add_metric(key + "_restarts", r.stats.restarts);
  report.add_metric(key + "_replicated_blobs", r.stats.replicated_blobs);
  report.add_metric(key + "_replicated_bytes", r.stats.replicated_bytes);
  report.add_metric(key + "_recovery_cycles", r.stats.recovery_cycles);
  report.add_metric(key + "_p50_us", r.rep.aggregate.p50_us);
  report.add_metric(key + "_p99_us", r.rep.aggregate.p99_us);
  report.add_metric(key + "_throughput_rps", r.rep.throughput_rps);
  report.add_metric(key + "_final_clock_cycles", r.rep.final_clock);
  report.add_metric(key + "_latency_cycle_sum", r.rep.latency_cycle_sum);
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t requests = opt.smoke ? 2'000 : 6'000;

  bench::print_header(
      "Enclave fleet",
      "64-tenant Zipfian load over sharded enclaves: ring scaling, "
      "loss-with-failover storm, hot-tenant migration");
  bench::JsonReport report("fig_fleet");
  report.add_metric("tenants", static_cast<std::uint64_t>(kTenants));
  report.add_metric("requests", requests);

  // Every ecall advances the one shared virtual clock, so fleet capacity
  // is serial: ~430k cycles/request (~8.8k req/s at 3.8GHz) regardless of
  // shard count. Offer ~3.2k req/s (36% utilization): queueing stays
  // shallow and the tail belongs to the recovery path under test, while a
  // 20M-cycle inline restart still backs up far more than 1% of arrivals.
  fleet::FleetLoadSpec spec;
  spec.requests = requests;
  spec.mean_interarrival_cycles = 1'200'000;
  spec.zipf_s = 1.1;
  spec.seed = 42;

  // --- Scenario 1: shard-count sweep --------------------------------------
  {
    Table table({"shards", "residents min/max", "completed", "shed",
                 "throughput", "p50", "p99"});
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      FleetScenario sc;
      sc.shards = shards;
      const FleetRunResult r = run_fleet(sc, spec);
      std::uint32_t rmin = kTenants, rmax = 0;
      for (const std::uint32_t n : r.residents) {
        rmin = std::min(rmin, n);
        rmax = std::max(rmax, n);
      }
      MSV_CHECK_MSG(rmin > 0, "the ring must use every shard");
      MSV_CHECK_MSG(r.stats.failed == 0,
                    "fault-free sweep must not fail requests");
      table.add_row({std::to_string(shards),
                     std::to_string(rmin) + "/" + std::to_string(rmax),
                     std::to_string(r.stats.completed),
                     std::to_string(r.stats.shed),
                     fmt_krps(r.rep.throughput_rps),
                     fmt_us(r.rep.aggregate.p50_us),
                     fmt_us(r.rep.aggregate.p99_us)});
      add_fleet_metrics(report, "shards_" + std::to_string(shards), r);
    }
    std::printf("Shard-count sweep (%u tenants, Zipf s=%.1f, %" PRIu64
                " fleet-wide requests):\n",
                kTenants, spec.zipf_s, requests);
    table.print();
    report.add_table("shard_sweep", table);
    std::printf(
        "\nOne arrival process fans out over the ring; more enclaves = more "
        "parallel isolates serving\nthe same tenant population.\n");
  }

  // --- Scenario 2: loss storm, restart ladder vs replica promotion ---------
  double restart_p99 = 0, promoted_p99 = 0;
  {
    const std::uint32_t losses = opt.smoke ? 4 : 8;
    FleetScenario restart;
    restart.shards = 4;
    restart.replication = false;
    restart.shard_losses = losses;
    FleetScenario promote = restart;
    promote.replication = true;
    // The promoted run carries full tracing: it doubles as run A of the
    // determinism self-check below.
    promote.trace = telemetry::TraceMode::kFull;

    const FleetRunResult a = run_fleet(restart, spec);
    const FleetRunResult b = run_fleet(promote, spec);
    restart_p99 = a.rep.aggregate.p99_us;
    promoted_p99 = b.rep.aggregate.p99_us;

    Table table({"mode", "completed", "shed", "failed", "promotions",
                 "restarts", "recovery cycles", "p50", "p99"});
    table.add_row({"restart-and-restore", std::to_string(a.stats.completed),
                   std::to_string(a.stats.shed),
                   std::to_string(a.stats.failed),
                   std::to_string(a.stats.promotions),
                   std::to_string(a.stats.restarts),
                   std::to_string(a.stats.recovery_cycles),
                   fmt_us(a.rep.aggregate.p50_us),
                   fmt_us(a.rep.aggregate.p99_us)});
    table.add_row({"replica promotion", std::to_string(b.stats.completed),
                   std::to_string(b.stats.shed),
                   std::to_string(b.stats.failed),
                   std::to_string(b.stats.promotions),
                   std::to_string(b.stats.restarts),
                   std::to_string(b.stats.recovery_cycles),
                   fmt_us(b.rep.aggregate.p50_us),
                   fmt_us(b.rep.aggregate.p99_us)});
    std::printf("\nLoss-with-failover storm (4 shards, %u targeted enclave "
                "losses):\n",
                losses);
    table.print();
    report.add_table("loss_storm", table);
    add_fleet_metrics(report, "storm_restart", a);
    add_fleet_metrics(report, "storm_promote", b);

    MSV_CHECK_MSG(a.stats.restarts >= 1,
                  "the restart fleet must pay for at least one restart");
    MSV_CHECK_MSG(b.stats.promotions >= 1,
                  "the replicated fleet must promote at least once");
    MSV_CHECK_MSG(b.stats.replicated_blobs > 0,
                  "replication must stream checkpoints to the standby");
    // The acceptance gate: a warm standby turns the 20M-cycle re-measure
    // into a fence-and-flip, and the tail shows it.
    MSV_CHECK_MSG(restart_p99 >= 3.0 * promoted_p99,
                  "restart p99 must be at least 3x the promoted p99 "
                  "(restart=" + std::to_string(restart_p99) +
                  "us, promoted=" + std::to_string(promoted_p99) + "us)");
    report.add_metric("storm_p99_ratio", restart_p99 / promoted_p99);
    std::printf("\np99 under the storm: restart ladder %s vs promotion %s "
                "(%.1fx) — the warm standby\nturns an enclave re-measure "
                "into a fence-and-flip.\n",
                fmt_us(restart_p99).c_str(), fmt_us(promoted_p99).c_str(),
                restart_p99 / promoted_p99);
    std::fflush(stdout);

    // --- Determinism self-check: the traced promoted storm, run again ----
    const FleetRunResult c = run_fleet(promote, spec);
    MSV_CHECK_MSG(b.rep.final_clock == c.rep.final_clock,
                  "same fleet spec, different simulated-cycle totals");
    MSV_CHECK_MSG(b.rep.latency_cycle_sum == c.rep.latency_cycle_sum,
                  "same fleet spec, different latency cycle sums");
    MSV_CHECK_MSG(b.stats.accepted == c.stats.accepted &&
                      b.stats.completed == c.stats.completed &&
                      b.stats.shed == c.stats.shed &&
                      b.stats.failed == c.stats.failed &&
                      b.stats.retries == c.stats.retries &&
                      b.stats.promotions == c.stats.promotions &&
                      b.stats.restarts == c.stats.restarts &&
                      b.stats.replicated_blobs == c.stats.replicated_blobs &&
                      b.stats.recovery_cycles == c.stats.recovery_cycles,
                  "same fleet spec, different fleet counters");
    MSV_CHECK_MSG(!b.trace_json.empty() && b.trace_json == c.trace_json,
                  "same fleet spec, different trace JSON");
    MSV_CHECK_MSG(!b.metrics_text.empty() &&
                      b.metrics_text == c.metrics_text,
                  "same fleet spec, different metrics text");
    std::printf("\ndeterminism self-check: two promoted-storm runs, "
                "identical clock (%" PRIu64 " cycles),\nlatency sum, fleet "
                "counters, trace JSON (%zu bytes) and metrics text — "
                "fleet-wide.\n",
                b.rep.final_clock, b.trace_json.size());
    report.add_metric("determinism_final_clock_cycles", b.rep.final_clock);
    report.add_metric("determinism_trace_bytes",
                      static_cast<std::uint64_t>(b.trace_json.size()));
    if (!opt.trace_path.empty() &&
        !bench::write_text_file(opt.trace_path, b.trace_json)) {
      return 1;
    }
    if (!opt.metrics_path.empty() &&
        !bench::write_text_file(opt.metrics_path, b.metrics_text)) {
      return 1;
    }
    if (!opt.trace_path.empty()) {
      std::printf("trace written to %s\n", opt.trace_path.c_str());
    }
    if (!opt.metrics_path.empty()) {
      std::printf("metrics written to %s\n", opt.metrics_path.c_str());
    }
  }

  // --- Scenario 3: hot-tenant migration ------------------------------------
  {
    FleetScenario sc;
    sc.shards = 4;
    sc.replication = true;
    sc.migrate_hottest = true;
    const FleetRunResult r = run_fleet(sc, spec);
    MSV_CHECK_MSG(r.stats.migrations == 1,
                  "the migrator must move exactly one tenant");
    MSV_CHECK_MSG(r.stats.failed == 0,
                  "migration must not fail requests — drained work "
                  "completes, mid-drain arrivals shed");
    Table table({"metric", "value"});
    table.add_row({"migrations", std::to_string(r.stats.migrations)});
    table.add_row({"shed while migrating",
                   std::to_string(r.stats.shed_migrating)});
    table.add_row({"completed", std::to_string(r.stats.completed)});
    table.add_row({"p99", fmt_us(r.rep.aggregate.p99_us)});
    std::printf("\nHot-tenant migration (Zipf head moved to the coldest "
                "shard at half-window):\n");
    table.print();
    report.add_table("migration", table);
    add_fleet_metrics(report, "migration", r);
  }

  // --- Scenario 4: health under storm (DESIGN.md §16) -----------------------
  {
    const std::uint32_t losses = opt.smoke ? 4 : 8;
    FleetScenario base;
    base.shards = 4;
    base.replication = false;
    base.shard_losses = losses;
    FleetScenario health = base;
    health.health = true;

    // Metrics-only baseline, then two armed runs: A proves the health
    // stack is free on the simulated timeline, A==B proves its artifacts
    // are deterministic.
    const FleetRunResult base_r = run_fleet(base, spec);
    const FleetRunResult a = run_fleet(health, spec);
    const FleetRunResult b = run_fleet(health, spec);

    MSV_CHECK_MSG(a.rep.final_clock == base_r.rep.final_clock &&
                      a.rep.latency_cycle_sum == base_r.rep.latency_cycle_sum,
                  "arming the health stack must cost zero simulated cycles");
    MSV_CHECK_MSG(!a.health_report.empty() &&
                      a.health_report == b.health_report,
                  "two armed runs must emit byte-identical health reports");
    MSV_CHECK_MSG(!a.postmortem_bundle.empty() &&
                      a.postmortem_bundle == b.postmortem_bundle,
                  "two armed runs must emit byte-identical post-mortems");
    MSV_CHECK_MSG(!a.folded_stacks.empty() &&
                      a.folded_stacks == b.folded_stacks,
                  "two armed runs must emit byte-identical folded stacks");
    MSV_CHECK_MSG(a.losses_injected > 0 &&
                      a.postmortems >= a.losses_injected,
                  "every injected enclave loss must yield a post-mortem");

    // Degraded-before-ladder: every shard that saw a recoverable fault
    // must have been flagged degraded no later than the instant its
    // recovery ladder first fired (faults are recorded at the catch site;
    // same-cycle is a tie the monitor wins by construction).
    std::uint32_t injured = 0;
    for (std::uint32_t k = 0; k < a.shards.size(); ++k) {
      const fleet::ShardStats& s = a.shards[k];
      if (s.first_recovery_started_cycles == 0) continue;
      ++injured;
      MSV_CHECK_MSG(a.first_degraded[k] != 0,
                    "an injured shard must be flagged degraded");
      MSV_CHECK_MSG(a.first_degraded[k] <= s.first_recovery_started_cycles,
                    "the SLO monitor must flag an injured shard degraded "
                    "before its recovery ladder fires");
    }
    MSV_CHECK_MSG(injured > 0, "the storm must injure at least one shard");

    Table table({"metric", "value"});
    table.add_row({"enclave losses injected",
                   std::to_string(a.losses_injected)});
    table.add_row({"post-mortems captured", std::to_string(a.postmortems)});
    table.add_row({"shards injured", std::to_string(injured)});
    table.add_row({"profiler samples", std::to_string(a.profile_samples)});
    table.add_row({"health report bytes",
                   std::to_string(a.health_report.size())});
    table.add_row({"overhead (cycles vs baseline)", "0 (byte-identical)"});
    std::printf("\nHealth under storm (4 shards, %u losses, SLO monitor + "
                "flight recorder + profiler armed):\n", losses);
    table.print();
    report.add_table("health_storm", table);
    add_fleet_metrics(report, "health_storm", a);
    report.add_metric("health_losses_injected", a.losses_injected);
    report.add_metric("health_postmortems", a.postmortems);
    report.add_metric("health_shards_injured",
                      static_cast<std::uint64_t>(injured));
    report.add_metric("health_profile_samples", a.profile_samples);
    report.add_metric("health_report_bytes",
                      static_cast<std::uint64_t>(a.health_report.size()));
    report.add_metric("health_bundle_bytes",
                      static_cast<std::uint64_t>(a.postmortem_bundle.size()));
    report.add_metric("health_overhead_cycles", std::uint64_t{0});
    std::printf("\ndeterminism: two armed runs agree byte-for-byte on the "
                "health report (%zu bytes),\npost-mortem bundle (%zu bytes) "
                "and folded stacks (%zu bytes); arming cost 0 cycles.\n",
                a.health_report.size(), a.postmortem_bundle.size(),
                a.folded_stacks.size());

    if (!opt.health_path.empty() &&
        !bench::write_text_file(opt.health_path, a.health_report)) {
      return 1;
    }
    if (!opt.postmortem_path.empty() &&
        !bench::write_text_file(opt.postmortem_path, a.postmortem_bundle)) {
      return 1;
    }
    if (!opt.folded_path.empty() &&
        !bench::write_text_file(opt.folded_path, a.folded_stacks)) {
      return 1;
    }
    if (!opt.health_path.empty()) {
      std::printf("health report written to %s\n", opt.health_path.c_str());
    }
    if (!opt.postmortem_path.empty()) {
      std::printf("post-mortem bundle written to %s\n",
                  opt.postmortem_path.c_str());
    }
    if (!opt.folded_path.empty()) {
      std::printf("folded stacks written to %s\n", opt.folded_path.c_str());
    }
  }

  if (!opt.json_path.empty() && !report.write(opt.json_path)) return 1;
  return 0;
}
