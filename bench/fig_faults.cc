// Fault-injection figure (DESIGN.md §12): availability and tail latency of
// the multi-tenant enclave server under a seeded, deterministic fault plan.
//
// Two sweeps over a 4-tenant open-loop bank workload with recovery enabled
// (bounded retry with exponential backoff, enclave restart + sealed
// checkpoint restore, load shedding mid-recovery):
//
//   1. Enclave-loss rate: 0..8 losses over the run window. Each loss
//      surfaces mid-ecall as SGX_ERROR_ENCLAVE_LOST; the first worker to
//      trip over it restarts the enclave, re-measures the image and
//      restores every tenant from its latest sealed checkpoint while
//      admission sheds.
//   2. Fault storm: losses + transient transition failures + EPC pressure
//      windows + TCS seizure bursts + sealed-blob corruption, all at once.
//
// Determinism contract (ISSUE 5 acceptance): the storm scenario runs twice
// with the same plan seed and the run aborts unless both runs agree on the
// final simulated clock, the latency-cycle sum, every availability counter
// and the injector's own event counters. Under the storm the server must
// stay partially available: some requests complete, some are lost to
// shedding or retry exhaustion, and at least one enclave restart happens.
#include <cinttypes>
#include <string>

#include "apps/illustrative/bank.h"
#include "bench/bench_common.h"
#include "core/multi_app.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "sched/scheduler.h"
#include "server/harness.h"
#include "server/server.h"
#include "support/error.h"

namespace msv {
namespace {

constexpr std::uint32_t kTenants = 4;

struct FaultRunResult {
  server::HarnessReport report;
  faults::FaultInjectorStats injected;
  std::uint64_t restarts = 0;
  std::uint64_t offered = 0;  // accepted + shed
  std::uint64_t checkpoints = 0;
  std::uint64_t restored = 0;
  std::uint64_t checkpoint_corrupt = 0;
  std::uint64_t shed_recovery = 0;
};

double availability(const FaultRunResult& r) {
  return r.offered == 0 ? 1.0
                        : static_cast<double>(r.report.completed) /
                              static_cast<double>(r.offered);
}

FaultRunResult run_faulty_workload(const server::ServerConfig& srv_cfg,
                                   const server::OpenLoopSpec& spec,
                                   const faults::FaultPlanConfig& fault_cfg) {
  core::MultiIsolateApp app(apps::build_bank_app(), kTenants, {});
  sched::Scheduler sched(app.env());
  server::RequestServer srv(sched, app, srv_cfg);

  // Start first — session construction must not race the plan — then
  // shift the plan window to "now" so every event lands inside the run.
  srv.start();
  const Cycles run_start = app.env().clock.now();
  const faults::FaultPlan generated = faults::FaultPlan::generate(fault_cfg);
  faults::FaultPlan plan;
  for (faults::FaultEvent e : generated.events()) {
    e.at += run_start;
    plan.add(e);
  }
  faults::FaultInjector injector(app.env(), std::move(plan));
  injector.arm(app.enclave());
  srv.attach_fault_injector(injector);
  app.bridge().attach_fault_injector(&injector);

  server::LoadHarness harness(srv);
  FaultRunResult r;
  r.report = harness.run_open_loop(spec);
  // Detach before teardown ecalls (stop() must not consume plan leftovers).
  app.bridge().attach_fault_injector(nullptr);
  r.injected = injector.stats();
  r.restarts = srv.restarts();
  for (std::uint32_t t = 0; t < srv.tenant_count(); ++t) {
    const server::TenantStats& ts = srv.tenant_stats(t);
    r.offered += ts.accepted + ts.shed;
    r.checkpoints += ts.checkpoints;
    r.restored += ts.restored;
    r.checkpoint_corrupt += ts.checkpoint_corrupt;
    r.shed_recovery += ts.shed_recovery;
  }
  srv.stop();
  return r;
}

std::string fmt_us(double us) { return format_fixed(us, 1) + "us"; }

std::string fmt_pct(double frac) { return format_fixed(frac * 100.0, 2) + "%"; }

void add_fault_metrics(bench::JsonReport& report, const std::string& key,
                       const FaultRunResult& r) {
  report.add_metric(key + "_availability_pct", availability(r) * 100.0);
  report.add_metric(key + "_offered", r.offered);
  report.add_metric(key + "_completed", r.report.completed);
  report.add_metric(key + "_failed", r.report.failed);
  report.add_metric(key + "_shed", r.report.shed);
  report.add_metric(key + "_retries", r.report.retries);
  report.add_metric(key + "_restarts", r.restarts);
  report.add_metric(key + "_checkpoints", r.checkpoints);
  report.add_metric(key + "_restored", r.restored);
  report.add_metric(key + "_checkpoint_corrupt", r.checkpoint_corrupt);
  report.add_metric(key + "_p50_us", r.report.aggregate.p50_us);
  report.add_metric(key + "_p99_us", r.report.aggregate.p99_us);
  report.add_metric(key + "_final_clock_cycles", r.report.final_clock);
  report.add_metric(key + "_latency_cycle_sum", r.report.latency_cycle_sum);
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t requests = opt.smoke ? 80 : 300;

  bench::print_header("Faults & recovery",
                      "4-tenant open-loop serving under a seeded fault plan: "
                      "loss-rate sweep, full fault storm");
  bench::JsonReport report("fig_faults");
  report.add_metric("tenants", static_cast<std::uint64_t>(kTenants));
  report.add_metric("requests_per_tenant", requests);

  server::OpenLoopSpec spec;
  spec.requests_per_tenant = requests;
  spec.mean_interarrival_cycles = 400'000;

  server::ServerConfig srv_cfg;
  srv_cfg.max_queue_depth = 256;
  srv_cfg.recovery.enabled = true;
  srv_cfg.recovery.checkpoint_every = 4;
  srv_cfg.recovery.max_attempts = 5;

  faults::FaultPlanConfig base_faults;
  base_faults.seed = 7;
  // The service window: the arrival window plus the drain tail (the
  // backlog serves well past the last arrival), so late faults hit a
  // server that has sealed checkpoints worth restoring.
  base_faults.horizon =
      static_cast<Cycles>(requests) * spec.mean_interarrival_cycles * 4;
  base_faults.epc_spike_cycles = base_faults.horizon / 8;
  base_faults.tcs_burst_cycles = base_faults.horizon / 12;

  // --- Sweep 1: enclave-loss rate -----------------------------------------
  {
    Table table({"losses", "availability", "completed", "shed", "failed",
                 "retries", "restarts", "restored", "p50", "p99"});
    for (const std::uint32_t losses : {0u, 1u, 2u, 4u, 8u}) {
      faults::FaultPlanConfig fc = base_faults;
      fc.enclave_losses = losses;
      const FaultRunResult r = run_faulty_workload(srv_cfg, spec, fc);
      MSV_CHECK_MSG(r.injected.enclave_losses == 0 || r.restarts >= 1,
                    "an injected loss must force at least one restart");
      if (losses == 0) {
        MSV_CHECK_MSG(r.report.completed == r.offered &&
                          r.report.failed == 0 && r.restarts == 0,
                      "fault-free run must complete every request");
      }
      table.add_row({std::to_string(losses), fmt_pct(availability(r)),
                     std::to_string(r.report.completed),
                     std::to_string(r.report.shed),
                     std::to_string(r.report.failed),
                     std::to_string(r.report.retries),
                     std::to_string(r.restarts),
                     std::to_string(r.restored),
                     fmt_us(r.report.aggregate.p50_us),
                     fmt_us(r.report.aggregate.p99_us)});
      add_fault_metrics(report, "loss_" + std::to_string(losses), r);
    }
    std::printf("Enclave-loss sweep (%u tenants, %" PRIu64
                " requests/tenant, checkpoint every %u):\n",
                kTenants, requests, srv_cfg.recovery.checkpoint_every);
    table.print();
    report.add_table("loss_sweep", table);
    std::printf(
        "\nEach loss surfaces mid-ecall; recovery re-measures the image, "
        "restores sealed checkpoints\nand sheds admission meanwhile — the "
        "availability dip and the p99 knee are the cost of a loss.\n");
  }

  // --- Sweep 2: full fault storm + determinism self-check ------------------
  {
    faults::FaultPlanConfig storm = base_faults;
    // Twice the base window: the late half of the storm lands in the
    // drain tail, where sealed checkpoints exist to restore (and to
    // corrupt) — the early half exercises the empty-checkpoint path.
    storm.horizon = base_faults.horizon * 2;
    storm.enclave_losses = 8;
    storm.transition_failures = 16;
    storm.epc_spikes = 2;
    storm.tcs_bursts = 2;
    storm.blob_corruptions = 3;

    const FaultRunResult a = run_faulty_workload(srv_cfg, spec, storm);

    Table table({"metric", "value"});
    table.add_row({"availability", fmt_pct(availability(a))});
    table.add_row({"offered", std::to_string(a.offered)});
    table.add_row({"completed", std::to_string(a.report.completed)});
    table.add_row({"shed (mid-recovery)",
                   std::to_string(a.report.shed) + " (" +
                       std::to_string(a.shed_recovery) + ")"});
    table.add_row({"failed", std::to_string(a.report.failed)});
    table.add_row({"retries absorbed", std::to_string(a.report.retries)});
    table.add_row({"enclave restarts", std::to_string(a.restarts)});
    table.add_row({"checkpoints sealed", std::to_string(a.checkpoints)});
    table.add_row({"checkpoints restored", std::to_string(a.restored)});
    table.add_row(
        {"corrupt checkpoints rejected", std::to_string(a.checkpoint_corrupt)});
    table.add_row({"p50 / p99",
                   fmt_us(a.report.aggregate.p50_us) + " / " +
                       fmt_us(a.report.aggregate.p99_us)});
    std::printf("\nFault storm (losses=%u, transition failures=%u, EPC "
                "spikes=%u, TCS bursts=%u, corruptions=%u):\n",
                storm.enclave_losses, storm.transition_failures,
                storm.epc_spikes, storm.tcs_bursts, storm.blob_corruptions);
    table.print();
    std::fflush(stdout);

    const FaultRunResult b = run_faulty_workload(srv_cfg, spec, storm);
    MSV_CHECK_MSG(a.report.final_clock == b.report.final_clock,
                  "same fault plan, different simulated-cycle totals");
    MSV_CHECK_MSG(a.report.latency_cycle_sum == b.report.latency_cycle_sum,
                  "same fault plan, different latency cycle sums");
    MSV_CHECK_MSG(a.report.completed == b.report.completed &&
                      a.report.failed == b.report.failed &&
                      a.report.shed == b.report.shed &&
                      a.report.retries == b.report.retries &&
                      a.restarts == b.restarts,
                  "same fault plan, different availability counters");
    MSV_CHECK_MSG(a.injected.enclave_losses == b.injected.enclave_losses &&
                      a.injected.transition_failures ==
                          b.injected.transition_failures &&
                      a.injected.epc_spikes == b.injected.epc_spikes &&
                      a.injected.tcs_bursts == b.injected.tcs_bursts &&
                      a.injected.blob_corruptions ==
                          b.injected.blob_corruptions,
                  "same fault plan, different injected-event counts");
    // Degraded, not dead: the storm must cost availability without
    // flatlining the service.
    MSV_CHECK_MSG(a.report.completed > 0,
                  "storm run must keep completing requests");
    MSV_CHECK_MSG(a.report.completed < a.offered,
                  "storm run must lose some requests (shed or failed)");
    MSV_CHECK_MSG(a.restarts >= 1, "storm run must restart the enclave");
    MSV_CHECK_MSG(a.report.retries > 0, "storm run must absorb retries");
    report.add_table("storm", table);
    std::printf("\ndeterminism self-check: two storm runs, identical clock "
                "(%" PRIu64 " cycles), latency sum,\navailability counters "
                "and injected-event counts\n",
                a.report.final_clock);
    add_fault_metrics(report, "storm", a);
    report.add_metric("storm_shed_recovery", a.shed_recovery);
    report.add_metric("determinism_final_clock_cycles", a.report.final_clock);
  }

  if (!opt.json_path.empty()) {
    if (!report.write(opt.json_path)) return 1;
  }
  return 0;
}
