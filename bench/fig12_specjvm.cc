// Figure 12 + Table 1 (§6.6): unpartitioned SPECjvm2008 micro-benchmarks
// in enclaves — native images vs JVM variants.
//
// For each of the six benchmarks (mpegaudio, fft, monte_carlo, sor, lu,
// sparse), four configurations: NoSGX+JVM, NoSGX-NI, SGX-NI, SCONE+JVM.
// Table 1 reports the latency gain of SGX-NI over SCONE+JVM; the paper's
// values are mpegaudio 2.12x, fft 2.66x, monte_carlo 0.25x (the serial-GC
// pathology), sor 1.42x, lu 1.46x, sparse 1.38x.
#include "apps/specjvm/harness.h"
#include "bench/bench_common.h"

int main() {
  using namespace msv;
  using namespace msv::apps::specjvm;
  bench::print_header("Figure 12",
                      "SPECjvm2008 micro-benchmarks in enclaves");

  const double paper_gains[] = {2.12, 2.66, 0.25, 1.42, 1.46, 1.38};

  Table fig({"benchmark", "NoSGX+JVM", "NoSGX-NI", "SGX-NI", "SCONE+JVM"});
  Table table1({"benchmark", "gain over SCONE+JVM", "paper"});
  int i = 0;
  for (const Benchmark b : kAllBenchmarks) {
    const SpecRow row = run_all_modes(b, WorkloadSpec::defaults(b));
    fig.add_row({benchmark_name(b), bench::fmt_s(row.nosgx_jvm),
                 bench::fmt_s(row.nosgx_ni), bench::fmt_s(row.sgx_ni),
                 bench::fmt_s(row.scone_jvm)});
    table1.add_row({benchmark_name(b), bench::fmt_x(row.table1_gain()),
                    bench::fmt_x(paper_gains[i++])});
  }
  fig.print();
  std::printf("\nTable 1 — ratio of SGX-NI vs SCONE+JVM:\n");
  table1.print();
  std::printf(
      "\nExpected shape: native images beat the in-enclave JVM on the\n"
      "compute-bound kernels, and lose on allocation-heavy monte_carlo\n"
      "(the native image's serial GC, §6.6 / [28]).\n");
  return 0;
}
