// stress_gc (DESIGN.md §17): allocation storms across isolates.
//
// Three storms drive the semispace collectors past the regimes fig05
// measures, in and out of the enclave simultaneously (one virtual clock,
// four isolates churning round-robin):
//
//   1. Survivor pyramid: the live window ramps from near-zero to half the
//      heap and back, so consecutive collections copy ever-growing then
//      ever-shrinking survivor sets. Armed = peak window; disarmed = the
//      same byte volume with a near-empty window.
//   2. Fragmentation storm: interleaved 8-byte and 512-byte boxes force
//      the allocator through alternating object sizes while the window
//      keeps a mixed-size survivor population.
//   3. Weakref churn: every round registers weak references to doomed
//      objects, collects, and compacts the cleared entries — the §5.5 GC
//      helper's data structure under adversarial churn.
//
// Shape gates: GC pause share must follow the live window (armed >>
// disarmed), and the fig05 ratio — in-enclave GC an order of magnitude
// slower than untrusted — must hold *under storm*, not just in the calm
// fig05 measurement.
#include <cinttypes>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "bench/stress_common.h"
#include "runtime/churn.h"
#include "runtime/isolate.h"
#include "sgx/enclave.h"
#include "sim/env.h"

namespace msv {
namespace {

struct StormResult {
  double pause_share = 0;        // gc cycles / total cycles, all isolates
  double enclave_gc_cycles = 0;  // summed over trusted isolates
  double untrusted_gc_cycles = 0;
  std::uint64_t collections = 0;
  std::uint64_t copied_bytes = 0;
};

// Four isolates (two enclave-backed, two untrusted) churn round-robin on
// one clock. `window_of(round, rounds)` shapes the live window per round.
template <typename WindowFn>
StormResult run_storm(std::uint64_t heap_bytes, std::uint64_t bytes_per_round,
                      int rounds, std::uint32_t payload_small,
                      std::uint32_t payload_large, WindowFn window_of) {
  Env env;
  sgx::Enclave enclave(env, "stress-gc", Sha256::hash("img"), 4096);
  enclave.init(Sha256::hash("img"));
  sgx::EnclaveDomain edomain(env, enclave);
  UntrustedDomain udomain(env);

  std::vector<std::unique_ptr<rt::Isolate>> isolates;
  for (int i = 0; i < 4; ++i) {
    const bool trusted = i < 2;
    isolates.push_back(std::make_unique<rt::Isolate>(
        env, trusted ? static_cast<MemoryDomain&>(edomain)
                     : static_cast<MemoryDomain&>(udomain),
        rt::Isolate::Config{(trusted ? "t" : "u") + std::to_string(i),
                            heap_bytes}));
  }

  const Cycles t0 = env.clock.now();
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t window = window_of(r, rounds);
    for (int i = 0; i < 4; ++i) {
      // Alternate payload sizes per isolate per round: the fragmentation
      // lever (equal sizes make it a plain survivor storm).
      const std::uint32_t payload =
          ((r + i) % 2 == 0) ? payload_small : payload_large;
      rt::alloc_churn(*isolates[i], bytes_per_round, window, payload);
    }
  }
  const Cycles total = env.clock.now() - t0;

  StormResult res;
  double gc_cycles = 0;
  for (int i = 0; i < 4; ++i) {
    const rt::HeapStats& h = isolates[i]->heap().stats();
    gc_cycles += static_cast<double>(h.gc_cycles_total);
    res.collections += h.gc_count;
    res.copied_bytes += h.copied_bytes_total;
    if (i < 2) {
      res.enclave_gc_cycles += static_cast<double>(h.gc_cycles_total);
    } else {
      res.untrusted_gc_cycles += static_cast<double>(h.gc_cycles_total);
    }
  }
  res.pause_share = total > 0 ? gc_cycles / static_cast<double>(total) : 0;
  return res;
}

// Weakref churn on one isolate: each round allocates `n` strings, keeps
// every 4th alive, registers a weak entry per allocation, collects, then
// compacts the cleared entries exactly like the §5.5 GC helper.
void weakref_churn(bench::JsonReport& report, int rounds, int n) {
  Env env;
  UntrustedDomain domain(env);
  rt::Isolate iso(env, domain, rt::Isolate::Config{"weak", 8ull << 20});
  rt::WeakRefTable& weak = iso.weak_refs();

  static const std::string payload(40, 'w');
  std::uint64_t cleared_total = 0;
  std::size_t max_table = 0;
  for (int r = 0; r < rounds; ++r) {
    std::vector<rt::GcRef> survivors;
    for (int i = 0; i < n; ++i) {
      const rt::ObjAddr addr = iso.heap().alloc_string(payload);
      if (i % 4 == 0) survivors.push_back(iso.make_ref(addr));
      weak.add(addr, static_cast<std::uint64_t>(r) * n + i);
    }
    max_table = std::max(max_table, weak.size());
    iso.heap().collect();
    const std::size_t cleared = weak.cleared_count();
    bench::stress::gate(cleared >= static_cast<std::size_t>(n - n / 4 - 1),
                        "collecting must clear the doomed weak entries");
    weak.remove_if([](const rt::WeakEntry& e) {
      return e.was_set && e.target == rt::kNullAddr;
    });
    cleared_total += cleared;
    bench::stress::gate(weak.size() <= static_cast<std::size_t>(n),
                        "the weak table must compact back to the survivors");
  }
  report.add_metric("weak_cleared_total", cleared_total);
  report.add_metric("weak_table_peak",
                    static_cast<std::uint64_t>(max_table));
  std::printf("\nWeakref churn: %d rounds x %d entries, %" PRIu64
              " cleared, table peak %zu.\n",
              rounds, n, cleared_total, max_table);
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);

  bench::print_header("stress_gc",
                      "allocation storms across enclave and untrusted "
                      "isolates");
  bench::JsonReport report("stress_gc");

  const std::uint64_t heap = 8ull << 20;
  const int rounds = opt.smoke ? 6 : 24;
  // Each round must overrun the semispace (heap/2) so collections fire
  // *inside* the churn call, while its live window is populated — a
  // round smaller than the semispace gets collected at the start of the
  // next round, when almost nothing is rooted.
  const std::uint64_t bytes_per_round = (opt.smoke ? 8ull : 16ull) << 20;
  report.add_metric("iterations", static_cast<std::uint64_t>(rounds));

  // Disarmed: same allocation volume, near-empty survivor window.
  const StormResult calm =
      run_storm(heap, bytes_per_round, rounds, 56, 56,
                [&](int, int) { return heap / 64; });
  // Armed: survivor pyramid — the window climbs to half the *semispace*
  // and back (a full semispace of survivors would leave no room to
  // allocate after the copy), so the copy cost per collection sweeps
  // through its whole range.
  const StormResult pyramid = run_storm(
      heap, bytes_per_round, rounds, 56, 56, [&](int r, int total) {
        const int peak = total / 2;
        const int dist = r < peak ? r : total - 1 - r;
        return (heap / 4) * static_cast<std::uint64_t>(dist + 1) /
               static_cast<std::uint64_t>(peak + 1);
      });
  // Armed: fragmentation — mixed 8B/512B boxes at a mid-size window.
  const StormResult frag =
      run_storm(heap, bytes_per_round, rounds, 8, 512,
                [&](int, int) { return heap / 8; });

  Table table({"storm", "GC pause share", "collections", "copied MB",
               "enclave/untrusted GC"});
  const auto add = [&](const char* name, const StormResult& r) {
    const double ratio =
        r.untrusted_gc_cycles > 0 ? r.enclave_gc_cycles / r.untrusted_gc_cycles
                                  : 0;
    table.add_row({name, format_fixed(100 * r.pause_share, 1) + "%",
                   std::to_string(r.collections),
                   std::to_string(r.copied_bytes >> 20),
                   bench::fmt_x(ratio)});
    const std::string key = name;
    report.add_metric(key + "_pause_share", r.pause_share);
    report.add_metric(key + "_collections", r.collections);
    report.add_metric(key + "_copied_bytes", r.copied_bytes);
    report.add_metric(key + "_enclave_gc_ratio", ratio);
    return ratio;
  };
  const double calm_ratio = add("disarmed", calm);
  const double pyramid_ratio = add("pyramid", pyramid);
  const double frag_ratio = add("fragmentation", frag);
  std::printf("Four isolates (2 enclave, 2 untrusted), %d rounds x %" PRIu64
              " MB each:\n",
              rounds, bytes_per_round >> 20);
  table.print();
  report.add_table("storms", table);

  // The pause share must follow the live window: survivors are what a
  // semispace collection copies.
  bench::stress::gate(pyramid.pause_share > 2.0 * calm.pause_share,
                      "the survivor pyramid must dominate the pause share");
  bench::stress::gate(frag.pause_share > calm.pause_share,
                      "mixed-size survivors must cost more than disarmed");
  // fig05 shape stability: in-enclave GC stays an order of magnitude
  // slower *under storm* (band kept generous — 4x to 40x — because the
  // storms shift the copy/scan mix, not the MEE factor).
  for (const double ratio : {calm_ratio, pyramid_ratio, frag_ratio}) {
    bench::stress::gate(ratio > 4.0 && ratio < 40.0,
                        "fig05 shape must survive the storm (enclave GC "
                        "ratio " + std::to_string(ratio) + ")");
  }

  weakref_churn(report, rounds, opt.smoke ? 2'000 : 8'000);

  std::printf(
      "\nThe pause share tracks the survivor window (the semispace copy), "
      "and the enclave/untrusted\nGC ratio — fig05's shape — holds at the "
      "storm's peak, not just in the calm measurement.\n");
  if (!opt.json_path.empty() && !report.write(opt.json_path)) return 1;
  return 0;
}
