// Ablation C (§2.1): the EPC paging cliff.
//
// "The Linux SGX kernel driver can swap pages between the EPC and regular
// DRAM. This paging mechanism lets enclave applications use more than the
// total EPC, but at a significant cost." An enclave sweeps a 64 MB working
// set ten times while the usable EPC varies: once the working set exceeds
// the EPC, the LRU page cache misses on every touch and the run falls off
// a cliff. This is the effect behind GraphChi's in-enclave slowdown
// (Figs. 9/11): its memory budget exceeds the 93.5 MB of usable EPC.
#include "bench/bench_common.h"
#include "sgx/enclave.h"
#include "sim/env.h"

namespace msv {
namespace {

double sweep_working_set(std::uint64_t epc_bytes,
                         std::uint64_t working_set_bytes, int passes) {
  CostModel cost;
  cost.epc_usable_bytes = epc_bytes;
  Env env(cost);
  sgx::Enclave enclave(env, "sweep", Sha256::hash("img"), 4096);
  enclave.init(Sha256::hash("img"));
  sgx::EnclaveDomain domain(env, enclave);

  const std::uint64_t region = domain.register_region("working-set");
  const std::uint64_t pages = working_set_bytes / cost.page_bytes;
  const Cycles t0 = env.clock.now();
  for (int p = 0; p < passes; ++p) {
    domain.touch_pages(region, 0, pages);
    domain.charge_traffic(working_set_bytes);
  }
  return static_cast<double>(env.clock.now() - t0) / cost.cpu_hz;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Ablation C",
                      "EPC capacity vs 64 MB working set (10 passes)");

  constexpr std::uint64_t kWorkingSet = 64ull << 20;
  const double plenty = sweep_working_set(256ull << 20, kWorkingSet, 10);
  Table table({"usable EPC", "sweep time", "slowdown vs ample EPC"});
  for (const std::uint64_t mb : {256, 128, 93, 72, 64, 56, 48, 32, 16}) {
    const double t = sweep_working_set(mb << 20, kWorkingSet, 10);
    table.add_row({std::to_string(mb) + " MB", bench::fmt_s(t),
                   bench::fmt_x(t / plenty)});
  }
  table.print();
  std::printf(
      "\nThe cliff sits where the EPC shrinks below the 64 MB working set: "
      "every touch becomes a\npage-in + eviction. The paper's platform has "
      "93.5 MB usable (§6.1).\n");
  return 0;
}
