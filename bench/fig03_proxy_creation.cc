// Figure 3 (§6.2): performance of proxy object creation vs. concrete
// object creation.
//
// Four scenarios, 10k-100k objects:
//   concrete-out   untrusted code creating untrusted objects
//   concrete-in    enclave code creating trusted objects
//   proxy-out→in   untrusted code creating proxies of trusted objects
//                  (each creation ecalls to instantiate the mirror)
//   proxy-in→out   enclave code creating proxies of untrusted objects
//                  (each creation ocalls out)
//
// Expected shape: proxy creation is orders of magnitude more expensive
// than concrete creation (~4 orders out→in vs concrete-out, ~3 orders
// in→out vs concrete-in), driven by the enclave transitions and isolate
// attaches of the mirror instantiation.
#include <cmath>

#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"

namespace msv {
namespace {

using core::PartitionedApp;
using rt::Value;

// Measures one scenario with a fresh application so registries and heaps
// start empty.
double run_scenario(const std::string& scenario, std::int64_t n) {
  PartitionedApp app(apps::synthetic::build_micro_app());
  auto& u = app.untrusted_context();
  Env& env = app.env();

  if (scenario == "concrete-out") {
    const Cycles t0 = env.clock.now();
    for (std::int64_t i = 0; i < n; ++i) u.construct("Sink", {});
    return static_cast<double>(env.clock.now() - t0) / env.cost.cpu_hz;
  }
  if (scenario == "proxy-out→in") {
    const Cycles t0 = env.clock.now();
    for (std::int64_t i = 0; i < n; ++i) u.construct("Worker", {});
    return static_cast<double>(env.clock.now() - t0) / env.cost.cpu_hz;
  }

  // In-enclave scenarios run inside one Driver call; subtract the cost of
  // entering the driver itself (measured with a zero-iteration call).
  const Value driver = u.construct("Driver", {});
  const std::string method =
      scenario == "concrete-in" ? "make_workers" : "make_sinks";
  const Cycles e0 = env.clock.now();
  u.invoke(driver.as_ref(), method, {Value(std::int64_t{0})});
  const Cycles entry_cost = env.clock.now() - e0;

  const Cycles t0 = env.clock.now();
  u.invoke(driver.as_ref(), method, {Value(n)});
  const Cycles cost = env.clock.now() - t0 - entry_cost;
  return static_cast<double>(cost) / env.cost.cpu_hz;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Figure 3", "proxy vs concrete object creation");

  const char* scenarios[] = {"concrete-out", "concrete-in", "proxy-out→in",
                             "proxy-in→out"};
  Table table({"# objects", "concrete-out", "concrete-in", "proxy-out→in",
               "proxy-in→out"});
  double last[4] = {0, 0, 0, 0};
  for (std::int64_t n = 10'000; n <= 100'000; n += 10'000) {
    std::vector<std::string> row{std::to_string(n / 1000) + "k"};
    for (int s = 0; s < 4; ++s) {
      last[s] = run_scenario(scenarios[s], n);
      row.push_back(bench::fmt_s(last[s]));
    }
    table.add_row(std::move(row));
  }
  table.print();

  const double out_orders = std::log10(last[2] / last[0]);
  const double in_orders = std::log10(last[3] / last[1]);
  std::printf(
      "\nAt 100k objects: proxy-out→in is 10^%.1f over concrete-out "
      "(paper: ~4 orders of magnitude)\n",
      out_orders);
  std::printf(
      "                 proxy-in→out is 10^%.1f over concrete-in "
      "(paper: ~3 orders of magnitude)\n",
      in_orders);
  return 0;
}
