// Ablation D: profile-guided switchless calls.
//
// sgx-perf's workflow: profile an enclave application, find the hot
// small-payload transitions, serve them switchlessly (§7). This ablation
// applies it to the RMI-heavy micro workload: profile a first run, apply
// the recommendations, and measure the re-run.
#include "apps/synthetic/generator.h"
#include "bench/bench_common.h"
#include "core/montsalvat.h"
#include "sgx/profiler.h"

namespace msv {
namespace {

using rt::Value;

double run_workload(core::PartitionedApp& app) {
  auto& u = app.untrusted_context();
  const Value w = u.construct("Worker", {});
  const Cycles t0 = app.env().clock.now();
  for (int i = 0; i < 20'000; ++i) {
    u.invoke(w.as_ref(), "set", {Value(std::int32_t{i})});
  }
  for (int i = 0; i < 200; ++i) {  // cold call: few, bigger payloads
    rt::ValueList items;
    for (int k = 0; k < 64; ++k) items.push_back(Value(std::string(16, 'x')));
    u.invoke(w.as_ref(), "set_list", {Value(std::move(items))});
  }
  return static_cast<double>(app.env().clock.now() - t0) /
         app.env().cost.cpu_hz;
}

}  // namespace
}  // namespace msv

int main() {
  using namespace msv;
  bench::print_header("Ablation D", "profile-guided switchless serving");

  // Pass 1: profile.
  core::PartitionedApp baseline(apps::synthetic::build_micro_app());
  const double before = run_workload(baseline);
  const auto profile = sgx::profile_transitions(baseline.bridge().stats(),
                                                baseline.env().cost,
                                                /*min_calls=*/5000);
  std::fputs(
      sgx::transition_report(profile, baseline.env().cost).c_str(), stdout);

  // Pass 2: apply the recommendations and re-run.
  core::PartitionedApp tuned(apps::synthetic::build_micro_app());
  for (const auto& e : profile.entries) {
    if (e.recommend_switchless) tuned.bridge().set_switchless(e.name, true);
  }
  const double after = run_workload(tuned);

  Table table({"configuration", "workload time"});
  table.add_row({"all transitions", bench::fmt_s(before)});
  table.add_row({"profile-guided switchless", bench::fmt_s(after)});
  table.print();
  std::printf("\nSpeedup from serving only the recommended calls "
              "switchlessly: %.2fx\n",
              before / after);
  return 0;
}
