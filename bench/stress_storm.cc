// stress_storm (DESIGN.md §17): fault storm under overload on a 4-shard
// fleet, with the health stack armed.
//
// fig_fleet measures the loss storm at 36% utilization, where the tail
// belongs to the recovery path and queues stay shallow. This stressor
// runs the same 4-shard fleet at ~2x that offered load *and* doubles the
// targeted enclave losses, so recovery ladders fire while admission
// queues are already backed up — the regime where the SLO monitor, the
// flight recorder and the recovery ladder all contend for the same
// simulated timeline.
//
// Gates:
//   * overload is real: the armed run sheds where the disarmed (calm
//     load, no faults) run sheds nothing;
//   * the SLO monitor flags every injured shard degraded no later than
//     the instant its recovery ladder first fires (degrade-before-
//     recover, the DESIGN.md §16 ordering), storm or no storm;
//   * every injected enclave loss yields a post-mortem bundle entry;
//   * two armed runs are byte-identical end to end: final clock, latency
//     cycle sum, every fleet counter, the health report, the post-mortem
//     bundle and the folded profiler stacks.
#include <cinttypes>
#include <memory>
#include <string>

#include "apps/illustrative/bank.h"
#include "bench/bench_common.h"
#include "bench/stress_common.h"
#include "faults/plan.h"
#include "fleet/load.h"
#include "fleet/router.h"
#include "sched/scheduler.h"
#include "telemetry/adapters.h"
#include "telemetry/export.h"
#include "telemetry/flight.h"
#include "telemetry/sampler.h"
#include "telemetry/slo.h"

namespace msv {
namespace {

constexpr std::uint32_t kTenants = 64;
constexpr std::uint32_t kShards = 4;

struct StormResult {
  fleet::FleetLoadReport rep;
  fleet::FleetStats stats;
  std::vector<fleet::ShardStats> shards;
  std::vector<Cycles> first_degraded;
  std::string health_report;
  std::string postmortem_bundle;
  std::string folded_stacks;
  std::uint64_t postmortems = 0;
  std::uint64_t losses_injected = 0;
};

StormResult run_storm(const fleet::FleetLoadSpec& spec,
                      std::uint32_t shard_losses, bool health) {
  const model::AppModel model = apps::build_bank_app();
  Env env;
  sched::Scheduler sched(env);

  fleet::FleetConfig fc;
  fc.shards = kShards;
  fc.tenants = kTenants;
  fc.shard.replication = false;  // the restart ladder is the slow path
  fc.shard.workers = 2;
  fc.shard.coalesce_max = 4;
  fc.shard.recovery.enabled = true;
  fc.shard.recovery.checkpoint_every = 2;
  fc.slo_enabled = health;
  fleet::FleetRouter router(env, sched, model, fc);

  std::unique_ptr<telemetry::FlightBus> flight;
  std::unique_ptr<telemetry::SampleProfiler> sampler;
  if (health) {
    flight = std::make_unique<telemetry::FlightBus>(env.telemetry);
    env.telemetry.set_flight(flight.get());
    sampler = std::make_unique<telemetry::SampleProfiler>(
        env.clock, env.telemetry.tracer(), /*interval_cycles=*/1'000'000);
    sched.set_sampler(sampler.get());
  }
  router.start();

  if (shard_losses > 0) {
    const Cycles run_start = env.clock.now();
    faults::FaultPlanConfig pc;
    pc.seed = 23;
    pc.horizon =
        static_cast<Cycles>(spec.requests) * spec.mean_interarrival_cycles;
    pc.fleet_shards = kShards;
    pc.shard_losses = shard_losses;
    const faults::FaultPlan generated = faults::FaultPlan::generate(pc);
    faults::FaultPlan plan;
    for (faults::FaultEvent e : generated.events()) {
      e.at += run_start;
      plan.add(e);
    }
    router.attach_fault_plan(plan);
  }

  fleet::FleetLoad load(router);
  StormResult r;
  r.rep = load.run(spec);
  r.stats = router.stats();
  for (std::uint32_t k = 0; k < router.shard_count(); ++k) {
    r.shards.push_back(router.shard(k).stats());
    if (const faults::FaultInjector* inj = router.injector_for(k)) {
      r.losses_injected += inj->stats().enclave_losses;
    }
  }
  if (health) {
    telemetry::SloMonitor& slo = *router.slo();
    r.health_report = slo.report(env.clock.hz());
    for (std::uint32_t k = 0; k < router.shard_count(); ++k) {
      r.first_degraded.push_back(
          slo.first_entered(k, telemetry::HealthState::kDegraded));
    }
    r.postmortem_bundle = flight->bundle_json(env.clock.hz());
    r.postmortems = flight->post_mortems().size();
    r.folded_stacks = sampler->folded();
  }
  router.stop();
  sched.set_sampler(nullptr);
  env.telemetry.set_flight(nullptr);
  return r;
}

}  // namespace
}  // namespace msv

int main(int argc, char** argv) {
  using namespace msv;
  const bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);

  bench::print_header("stress_storm",
                      "fault storm under overload, 4-shard fleet, health "
                      "stack armed");
  bench::JsonReport report("stress_storm");

  const std::uint64_t requests = opt.smoke ? 2'000 : 6'000;
  const std::uint32_t losses = opt.smoke ? 8 : 16;
  report.add_metric("requests", requests);

  // Disarmed: fig_fleet's calm operating point, no faults.
  fleet::FleetLoadSpec calm;
  calm.requests = requests;
  calm.mean_interarrival_cycles = 1'200'000;
  calm.zipf_s = 1.1;
  calm.seed = 42;
  // Armed: ~2x the offered load plus the doubled loss storm.
  fleet::FleetLoadSpec overload = calm;
  overload.mean_interarrival_cycles = 600'000;

  const StormResult base = run_storm(calm, 0, false);
  const StormResult a = run_storm(overload, losses, true);
  const StormResult b = run_storm(overload, losses, true);

  Table table({"run", "completed", "shed", "failed", "restarts",
               "recovery Mcycles", "p50", "p99"});
  const auto add_row = [&](const char* name, const StormResult& r) {
    table.add_row({name, std::to_string(r.stats.completed),
                   std::to_string(r.stats.shed),
                   std::to_string(r.stats.failed),
                   std::to_string(r.stats.restarts),
                   std::to_string(r.stats.recovery_cycles / 1'000'000),
                   format_fixed(r.rep.aggregate.p50_us, 1) + "us",
                   format_fixed(r.rep.aggregate.p99_us, 1) + "us"});
  };
  add_row("disarmed (calm, no faults)", base);
  add_row("armed (overload + storm)", a);
  table.print();
  report.add_table("storm", table);

  const auto add_metrics = [&](const std::string& key, const StormResult& r) {
    report.add_metric(key + "_completed", r.stats.completed);
    report.add_metric(key + "_shed", r.stats.shed);
    report.add_metric(key + "_failed", r.stats.failed);
    report.add_metric(key + "_restarts", r.stats.restarts);
    report.add_metric(key + "_recovery_cycles", r.stats.recovery_cycles);
    report.add_metric(key + "_p99_us", r.rep.aggregate.p99_us);
    report.add_metric(key + "_throughput_rps", r.rep.throughput_rps);
    report.add_metric(key + "_final_clock_cycles", r.rep.final_clock);
    report.add_metric(key + "_latency_cycle_sum", r.rep.latency_cycle_sum);
  };
  add_metrics("disarmed", base);
  add_metrics("armed", a);

  // Overload is real: the calm fleet sheds nothing, the stormed fleet
  // pays for the backlog while its shards restart.
  bench::stress::gate(base.stats.shed == 0 && base.stats.failed == 0,
                      "the disarmed run must be clean");
  bench::stress::gate(a.stats.restarts >= 1,
                      "the storm must force at least one restart ladder");
  bench::stress::gate(a.rep.aggregate.p99_us > base.rep.aggregate.p99_us,
                      "overload plus storm must show in the tail");

  // Degrade-before-recover, under overload: the monitor must flag every
  // injured shard no later than its recovery ladder fires even when the
  // burn-rate windows are full of shed and queueing noise.
  std::uint32_t injured = 0;
  for (std::uint32_t k = 0; k < a.shards.size(); ++k) {
    if (a.shards[k].first_recovery_started_cycles == 0) continue;
    ++injured;
    bench::stress::gate(a.first_degraded[k] != 0,
                        "shard " + std::to_string(k) +
                            " was injured but never flagged degraded");
    bench::stress::gate(
        a.first_degraded[k] <= a.shards[k].first_recovery_started_cycles,
        "shard " + std::to_string(k) +
            " recovered before the monitor degraded it");
  }
  bench::stress::gate(injured > 0, "the storm must injure at least a shard");
  bench::stress::gate(a.losses_injected > 0 &&
                          a.postmortems >= a.losses_injected,
                      "every enclave loss must yield a post-mortem");
  report.add_metric("injured_shards", static_cast<std::uint64_t>(injured));
  report.add_metric("postmortems", a.postmortems);

  // Two armed runs, byte-identical end to end.
  bench::stress::gate(a.rep.final_clock == b.rep.final_clock &&
                          a.rep.latency_cycle_sum == b.rep.latency_cycle_sum,
                      "two storms, different simulated timelines");
  bench::stress::gate(a.stats.completed == b.stats.completed &&
                          a.stats.shed == b.stats.shed &&
                          a.stats.failed == b.stats.failed &&
                          a.stats.restarts == b.stats.restarts &&
                          a.stats.recovery_cycles == b.stats.recovery_cycles,
                      "two storms, different fleet counters");
  bench::stress::gate(!a.health_report.empty() &&
                          a.health_report == b.health_report,
                      "two storms, different health reports");
  bench::stress::gate(!a.postmortem_bundle.empty() &&
                          a.postmortem_bundle == b.postmortem_bundle,
                      "two storms, different post-mortem bundles");
  bench::stress::gate(!a.folded_stacks.empty() &&
                          a.folded_stacks == b.folded_stacks,
                      "two storms, different folded stacks");
  report.add_metric("determinism_final_clock_cycles", a.rep.final_clock);

  if (!opt.health_path.empty() &&
      !bench::write_text_file(opt.health_path, a.health_report)) {
    return 1;
  }
  if (!opt.postmortem_path.empty() &&
      !bench::write_text_file(opt.postmortem_path, a.postmortem_bundle)) {
    return 1;
  }
  if (!opt.folded_path.empty() &&
      !bench::write_text_file(opt.folded_path, a.folded_stacks)) {
    return 1;
  }

  std::printf(
      "\nThe monitor degrades every injured shard before its ladder fires "
      "even with the burn-rate\nwindows full of overload noise, and the "
      "whole storm replays byte-identically.\n");
  if (!opt.json_path.empty() && !report.write(opt.json_path)) return 1;
  return 0;
}
